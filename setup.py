"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools/pip lack the ``wheel`` package
needed for PEP 517 editable installs (pip falls back to
``setup.py develop`` with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
