.PHONY: check check-slow bench

# Tier-1 tests + the implicit-count and sampled-optimize perf smokes
# (see scripts/ci.sh).
check:
	bash scripts/ci.sh

# Everything above plus the -m slow equivalence sweeps.
check-slow:
	CI_SLOW=1 bash scripts/ci.sh

# Regenerate the perf-trajectory files in place (--merge keeps cells a
# restricted run does not touch, e.g. the minutes-long materialized
# clique12 rows recorded with --full).
bench:
	PYTHONPATH=src python benchmarks/bench_exploration_scaling.py --merge
	PYTHONPATH=src python benchmarks/bench_planspace.py --merge
	PYTHONPATH=src python benchmarks/bench_sampledopt.py --merge
	PYTHONPATH=src python benchmarks/bench_optimize.py --merge
	PYTHONPATH=src python benchmarks/bench_robustness.py --merge
	PYTHONPATH=src python benchmarks/bench_observability.py --merge
	PYTHONPATH=src python benchmarks/bench_feedback.py --merge
	PYTHONPATH=src python benchmarks/bench_serving.py --merge
