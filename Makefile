.PHONY: check check-slow

# Tier-1 tests + the implicit-count perf smoke (see scripts/ci.sh).
check:
	bash scripts/ci.sh

# Everything above plus the -m slow equivalence sweeps.
check-slow:
	CI_SLOW=1 bash scripts/ci.sh
