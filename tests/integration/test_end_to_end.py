"""Integration tests: the full pipeline on realistic queries.

These are the paper's claims, executed end to end:

1. the memo compactly encodes an astronomically large space (Section 3.2);
2. every plan extracted from it is valid and result-equivalent (Section 4);
3. uniform samples characterize cost distributions (Section 5).
"""

import pytest

from repro.api import Session
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    Optimizer,
    OptimizerOptions,
)
from repro.planspace.space import PlanSpace
from repro.testing.diff import canonical_rows
from repro.testing.harness import PlanValidator
from repro.workloads.tpch_queries import tpch_query


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0, options=OptimizerOptions(allow_cross_products=False))


class TestSpaceMagnitudes:
    def test_q5_space_is_astronomical(self, q5_space):
        # Paper: 68,572,049 without cross products under SQL Server's rules;
        # our rule set yields more.  The point: far beyond exhaustive testing.
        assert q5_space.count() > 10**7

    def test_compact_encoding(self, q5_result, q5_space):
        # The memo stores thousands of operators, not trillions of plans —
        # the paper's footnote 2.
        operators = q5_result.memo.physical_expression_count()
        assert operators < 10_000
        assert q5_space.count() / operators > 10**6


class TestResultEquivalence:
    @pytest.mark.parametrize("name", ["Q3", "Q10"])
    def test_sampled_plans_equivalent(self, session, name):
        validator = PlanValidator(session.database, session.options)
        report = validator.validate_sql(
            tpch_query(name).sql, max_exhaustive=150, sample_size=60, seed=4
        )
        assert report.all_equal, report.render()

    def test_q5_sampled_plans_equivalent(self, session):
        validator = PlanValidator(session.database, session.options)
        report = validator.validate_sql(
            tpch_query("Q5").sql, max_exhaustive=0, sample_size=25, seed=9
        )
        assert report.all_equal, report.render()

    def test_cross_product_space_also_equivalent(self):
        session = Session.tpch(
            seed=0, options=OptimizerOptions(allow_cross_products=True)
        )
        validator = PlanValidator(session.database, session.options)
        report = validator.validate_sql(
            tpch_query("Q3").sql, max_exhaustive=0, sample_size=25, seed=2
        )
        assert report.all_equal, report.render()

    def test_q7_disjunctive_predicate_equivalent(self, session):
        """Q7's FRANCE/GERMANY disjunction spans two nation instances —
        the executor must evaluate the OR identically in every plan."""
        validator = PlanValidator(session.database, session.options)
        report = validator.validate_sql(
            tpch_query("Q7").sql, max_exhaustive=0, sample_size=20, seed=6
        )
        assert report.all_equal, report.render()

    def test_q8_eight_way_join_equivalent(self, session):
        validator = PlanValidator(session.database, session.options)
        report = validator.validate_sql(
            tpch_query("Q8").sql, max_exhaustive=0, sample_size=15, seed=8
        )
        assert report.all_equal, report.render()

    def test_q9_composite_edge_equivalent(self, session):
        validator = PlanValidator(session.database, session.options)
        report = validator.validate_sql(
            tpch_query("Q9").sql, max_exhaustive=0, sample_size=15, seed=10
        )
        assert report.all_equal, report.render()


class TestStrategiesProduceSameSpace:
    def test_enumeration_vs_transformation_q3(self, catalog):
        counts = {}
        for strategy in ExplorationStrategy:
            result = Optimizer(
                catalog,
                OptimizerOptions(
                    allow_cross_products=False, exploration=strategy
                ),
            ).optimize_sql(tpch_query("Q3").sql)
            counts[strategy] = PlanSpace.from_result(result).count()
        assert counts[ExplorationStrategy.ENUMERATION] == counts[
            ExplorationStrategy.TRANSFORMATION
        ]


class TestUseplanReproducibility:
    def test_same_rank_same_plan_across_runs(self, session):
        sql = tpch_query("Q3").sql
        space_a = session.plan_space(sql)
        space_b = session.plan_space(sql)
        rank = 12_345 % space_a.count()
        assert (
            space_a.unrank(rank).fingerprint()
            == space_b.unrank(rank).fingerprint()
        )

    def test_failing_rank_would_be_reproducible(self, session):
        # The Section 4 workflow: a rank identifies a plan exactly, so a
        # failure report can be replayed with OPTION (USEPLAN rank).
        sql = tpch_query("Q3").sql
        space = session.plan_space(sql)
        rank = 7 % space.count()
        plan = space.unrank(rank)
        via_option = session.execute_detailed(
            f"{sql} OPTION (USEPLAN {rank})"
        )
        direct = session.executor.execute(plan)
        assert canonical_rows(via_option.result.rows) == canonical_rows(
            direct.rows
        )
