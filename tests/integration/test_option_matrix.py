"""Integration matrix: every optimizer-option combination must yield a
well-formed, result-equivalent plan space.

The paper's technique has to survive whatever configuration the optimizer
runs under; this sweeps the cross product of {cross-products policy,
exploration strategy, index-join rule} over a 3-way join and validates
counting, the rank bijection, and result equivalence for each cell.
"""

import pytest

from repro.api import Session
from repro.optimizer.implementation import ImplementationConfig
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    Optimizer,
    OptimizerOptions,
)
from repro.planspace.space import PlanSpace
from repro.testing.diff import canonical_rows

SQL = (
    "SELECT n.n_name, r.r_name, s.s_name "
    "FROM nation n, region r, supplier s "
    "WHERE n.n_regionkey = r.r_regionkey AND s.s_nationkey = n.n_nationkey"
)

_MATRIX = [
    pytest.param(cross, strategy, index_joins, id=f"cross={cross}-{strategy.value}-inlj={index_joins}")
    for cross in (False, True)
    for strategy in ExplorationStrategy
    for index_joins in (False, True)
]


@pytest.fixture(scope="module")
def micro_db():
    from repro.storage.datagen import generate_tpch

    return generate_tpch(seed=0)


@pytest.mark.parametrize("cross,strategy,index_joins", _MATRIX)
def test_option_combination(micro_db, cross, strategy, index_joins):
    options = OptimizerOptions(
        allow_cross_products=cross,
        exploration=strategy,
        implementation=ImplementationConfig(enable_index_nl_join=index_joins),
    )
    result = Optimizer(micro_db.catalog, options).optimize_sql(SQL)
    space = PlanSpace.from_result(result)
    total = space.count()
    assert total > 0

    # Bijection spot-checks across the space.
    for rank in {0, total // 3, total - 1}:
        plan = space.unrank(rank)
        assert space.rank(plan) == rank

    # Result equivalence of a sample against the optimizer's plan.
    session = Session(micro_db, options)
    reference = canonical_rows(session.executor.execute(result.best_plan).rows)
    for plan in space.sample(10, seed=3):
        assert canonical_rows(session.executor.execute(plan).rows) == reference


def test_strategies_agree_in_every_configuration(micro_db):
    """Enumeration and transformation spaces coincide regardless of the
    implementation rule set or cross-product policy."""
    for cross in (False, True):
        for index_joins in (False, True):
            counts = set()
            for strategy in ExplorationStrategy:
                options = OptimizerOptions(
                    allow_cross_products=cross,
                    exploration=strategy,
                    implementation=ImplementationConfig(
                        enable_index_nl_join=index_joins
                    ),
                )
                result = Optimizer(micro_db.catalog, options).optimize_sql(SQL)
                counts.add(PlanSpace.from_result(result).count())
            assert len(counts) == 1, (cross, index_joins, counts)
