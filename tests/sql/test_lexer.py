"""Tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_uppercased(self):
        assert kinds("select FROM Where") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("lineitem L1") == [
            (TokenType.IDENT, "lineitem"),
            (TokenType.IDENT, "L1"),
        ]

    def test_eof_token_present(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("   ")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.INTEGER, "42")]

    def test_float(self):
        assert kinds("3.14") == [(TokenType.FLOAT, "3.14")]

    def test_scientific(self):
        assert kinds("1e6 2.5E-3") == [
            (TokenType.FLOAT, "1e6"),
            (TokenType.FLOAT, "2.5E-3"),
        ]

    def test_integer_then_dot_ident(self):
        # "1.x" should not swallow the dot into a float.
        assert kinds("l.x")[0] == (TokenType.IDENT, "l")


class TestStrings:
    def test_simple_string(self):
        assert kinds("'ASIA'") == [(TokenType.STRING, "ASIA")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")


class TestOperators:
    def test_comparison_operators(self):
        assert [v for _, v in kinds("= <> < <= > >=")] == [
            "=", "<>", "<", "<=", ">", ">=",
        ]

    def test_bang_equals_normalized(self):
        assert kinds("!=") == [(TokenType.OPERATOR, "<>")]

    def test_arithmetic_and_punct(self):
        assert [v for _, v in kinds("( a , b ) . *")] == [
            "(", "a", ",", "b", ")", ".", "*",
        ]

    def test_unknown_character(self):
        with pytest.raises(LexerError):
            tokenize("a ; b")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 1, 1)
        assert token.is_keyword("select")
        assert not token.is_keyword("from")
