"""Tests for the SQL parser."""

import pytest

from repro.algebra.expressions import (
    AggregateCall,
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryMinus,
)
from repro.errors import ParseError
from repro.sql.parser import Parser, parse


class TestStatementShape:
    def test_minimal_select(self):
        stmt = parse("SELECT a FROM t")
        assert len(stmt.select_items) == 1
        assert stmt.from_tables[0].table == "t"
        assert stmt.where is None

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select_items[0].star

    def test_aliases(self):
        stmt = parse("SELECT x AS y FROM lineitem AS l, orders o")
        assert stmt.select_items[0].alias == "y"
        assert stmt.from_tables[0].effective_alias() == "l"
        assert stmt.from_tables[1].effective_alias() == "o"

    def test_implicit_select_alias(self):
        stmt = parse("SELECT a b FROM t")
        assert stmt.select_items[0].alias == "b"

    def test_group_by(self):
        stmt = parse("SELECT n.n_name, COUNT(*) AS c FROM nation n GROUP BY n.n_name")
        assert stmt.group_by[0].alias == "n"
        assert stmt.group_by[0].column == "n_name"

    def test_order_by(self):
        stmt = parse("SELECT a FROM t ORDER BY a, t.b")
        assert len(stmt.order_by) == 2
        assert stmt.order_by[0].column.alias == ""

    def test_useplan_option(self):
        stmt = parse("SELECT a FROM t OPTION (USEPLAN 8)")
        assert stmt.options.useplan == 8

    def test_no_option_defaults_none(self):
        assert parse("SELECT a FROM t").options.useplan is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra ,")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a")

    def test_useplan_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t OPTION (USEPLAN x)")


class TestExpressions:
    def parse_expr(self, text):
        return Parser(text).parse_expr()

    def test_comparison(self):
        expr = self.parse_expr("a = 5")
        assert isinstance(expr, Comparison)
        assert expr.op is CompOp.EQ
        assert isinstance(expr.right, Literal)

    def test_and_or_precedence(self):
        expr = self.parse_expr("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BoolExpr) and expr.op is BoolOp.OR
        assert isinstance(expr.args[1], BoolExpr)
        assert expr.args[1].op is BoolOp.AND

    def test_not(self):
        expr = self.parse_expr("NOT a = 1")
        assert isinstance(expr, BoolExpr) and expr.op is BoolOp.NOT

    def test_arithmetic_precedence(self):
        expr = self.parse_expr("a + b * c")
        assert isinstance(expr, Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, Arithmetic) and expr.right.op == "*"

    def test_parenthesized(self):
        expr = self.parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, Arithmetic)

    def test_unary_minus(self):
        assert isinstance(self.parse_expr("-a"), UnaryMinus)

    def test_between_desugars(self):
        expr = self.parse_expr("a BETWEEN 1 AND 3")
        assert isinstance(expr, BoolExpr) and expr.op is BoolOp.AND
        assert expr.args[0].op is CompOp.GE
        assert expr.args[1].op is CompOp.LE

    def test_not_between(self):
        expr = self.parse_expr("a NOT BETWEEN 1 AND 3")
        assert isinstance(expr, BoolExpr) and expr.op is BoolOp.NOT

    def test_like(self):
        expr = self.parse_expr("p_name LIKE '%green%'")
        assert isinstance(expr, Like) and expr.pattern == "%green%"

    def test_not_like(self):
        assert self.parse_expr("a NOT LIKE 'x'").negated

    def test_in_list(self):
        expr = self.parse_expr("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and expr.values == (1, 2, 3)

    def test_in_list_strings(self):
        expr = self.parse_expr("mode IN ('AIR', 'RAIL')")
        assert expr.values == ("AIR", "RAIL")

    def test_is_null(self):
        expr = self.parse_expr("a IS NULL")
        assert isinstance(expr, IsNull) and not expr.negated

    def test_is_not_null(self):
        assert self.parse_expr("a IS NOT NULL").negated

    def test_qualified_column(self):
        expr = self.parse_expr("l.l_orderkey")
        assert isinstance(expr, ColumnRef)
        assert expr.column_id.alias == "l"

    def test_aggregates(self):
        expr = self.parse_expr("SUM(a * b)")
        assert isinstance(expr, AggregateCall)
        assert isinstance(expr.arg, Arithmetic)

    def test_count_star(self):
        expr = self.parse_expr("COUNT(*)")
        assert isinstance(expr, AggregateCall) and expr.arg is None

    def test_like_requires_string(self):
        with pytest.raises(ParseError):
            self.parse_expr("a LIKE 5")

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError):
            self.parse_expr("a NOT 5")


class TestRealQueries:
    def test_parses_all_tpch_queries(self):
        from repro.workloads.tpch_queries import TPCH_QUERIES

        for query in TPCH_QUERIES.values():
            stmt = parse(query.sql)
            assert len(stmt.from_tables) == query.relations
