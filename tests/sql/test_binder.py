"""Tests for the binder (name resolution, predicate placement)."""

import pytest

from repro.algebra.expressions import ColumnId
from repro.errors import BindError
from repro.sql.binder import bind
from repro.sql.parser import parse


def _bind(catalog, sql):
    return bind(parse(sql), catalog)


class TestFromBinding:
    def test_quantifiers(self, catalog):
        bound = _bind(catalog, "SELECT n_name FROM nation n")
        assert bound.quantifiers[0].alias == "n"
        assert bound.quantifiers[0].table == "nation"

    def test_default_alias_is_table_name(self, catalog):
        bound = _bind(catalog, "SELECT n_name FROM nation")
        assert bound.quantifiers[0].alias == "nation"

    def test_unknown_table(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT x FROM nowhere")

    def test_duplicate_alias(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT 1 AS one FROM nation n, region n")

    def test_same_table_twice_with_aliases(self, catalog):
        bound = _bind(
            catalog,
            "SELECT n1.n_name FROM nation n1, nation n2 "
            "WHERE n1.n_regionkey = n2.n_regionkey",
        )
        assert {q.alias for q in bound.quantifiers} == {"n1", "n2"}


class TestColumnResolution:
    def test_qualified(self, catalog):
        bound = _bind(catalog, "SELECT n.n_name FROM nation n")
        name, expr = bound.select_outputs[0]
        assert expr.column_id == ColumnId("n", "n_name")

    def test_unqualified_unique(self, catalog):
        bound = _bind(catalog, "SELECT n_name FROM nation n, region r")
        _, expr = bound.select_outputs[0]
        assert expr.column_id.alias == "n"

    def test_unqualified_unknown(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT no_such FROM nation")

    def test_wrong_alias(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT r.n_name FROM nation n, region r")

    def test_unknown_alias(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT zz.n_name FROM nation n")

    def test_case_insensitive(self, catalog):
        bound = _bind(catalog, "SELECT N.N_NAME FROM NATION N")
        _, expr = bound.select_outputs[0]
        assert expr.column_id == ColumnId("n", "n_name")


class TestPredicatePlacement:
    def test_single_table_filter_pushed(self, catalog):
        bound = _bind(
            catalog,
            "SELECT n_name FROM nation n, region r "
            "WHERE r.r_name = 'ASIA' AND n.n_regionkey = r.r_regionkey",
        )
        assert bound.pushed_filters["r"] is not None
        assert bound.pushed_filters["n"] is None
        assert len(bound.where_conjuncts) == 1

    def test_multiple_filters_conjoined(self, catalog):
        bound = _bind(
            catalog,
            "SELECT o_orderkey FROM orders o "
            "WHERE o.o_orderdate >= '1994-01-01' AND o.o_orderdate < '1995-01-01'",
        )
        predicate = bound.pushed_filters["o"]
        assert predicate is not None
        assert "AND" in predicate.render()

    def test_cross_table_or_stays_up(self, catalog):
        bound = _bind(
            catalog,
            "SELECT n1.n_name FROM nation n1, nation n2 "
            "WHERE n1.n_name = 'FRANCE' OR n2.n_name = 'GERMANY'",
        )
        assert bound.pushed_filters["n1"] is None
        assert len(bound.where_conjuncts) == 1

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT n_name FROM nation WHERE SUM(n_nationkey) > 3")


class TestSelectBinding:
    def test_star_expansion(self, catalog):
        bound = _bind(catalog, "SELECT * FROM region r")
        names = [name for name, _ in bound.select_outputs]
        assert names == ["r_regionkey", "r_name", "r_comment"]

    def test_star_multi_table(self, catalog):
        bound = _bind(catalog, "SELECT * FROM nation n, region r")
        assert len(bound.select_outputs) == 4 + 3

    def test_aggregate_query_detection(self, catalog):
        bound = _bind(
            catalog,
            "SELECT n_regionkey, COUNT(*) AS c FROM nation GROUP BY n_regionkey",
        )
        assert bound.is_aggregate_query
        assert bound.aggregates[0][0] == "c"

    def test_scalar_aggregate(self, catalog):
        bound = _bind(catalog, "SELECT COUNT(*) AS c FROM nation")
        assert bound.is_aggregate_query
        assert bound.group_by == ()

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(
                catalog,
                "SELECT n_name, COUNT(*) AS c FROM nation GROUP BY n_regionkey",
            )

    def test_group_by_without_aggregate_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT n_name FROM nation GROUP BY n_name")

    def test_arithmetic_over_aggregate_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT SUM(n_nationkey) + 1 AS x FROM nation")

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT SUM(COUNT(*)) AS x FROM nation")

    def test_duplicate_output_names_freshened(self, catalog):
        bound = _bind(catalog, "SELECT n_name, n_name FROM nation")
        names = [name for name, _ in bound.select_outputs]
        assert len(set(names)) == 2

    def test_star_with_group_by_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT * FROM nation GROUP BY n_name")


class TestOrderByBinding:
    def test_order_by_output_name(self, catalog):
        bound = _bind(
            catalog,
            "SELECT n_regionkey, COUNT(*) AS c FROM nation "
            "GROUP BY n_regionkey ORDER BY c",
        )
        assert bound.order_by == (ColumnId("", "c"),)

    def test_order_by_base_column_maps_to_output(self, catalog):
        bound = _bind(catalog, "SELECT n_name FROM nation n ORDER BY n.n_name")
        assert bound.order_by == (ColumnId("", "n_name"),)

    def test_order_by_column_not_in_output_rejected(self, catalog):
        with pytest.raises(BindError):
            _bind(catalog, "SELECT n_name FROM nation n ORDER BY n.n_regionkey")

    def test_options_carried(self, catalog):
        bound = _bind(catalog, "SELECT n_name FROM nation OPTION (USEPLAN 3)")
        assert bound.options.useplan == 3
