"""Kernel-backend parametrization of the exact optimization pipeline.

Every backend the selection rules can land on (``pure``, ``numpy``;
``native`` degrades to ``numpy`` where numba is absent) must produce the
identical best plan and cost — fused and unfused, pruned and unpruned.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.optimizer.optimizer import OptimizerOptions
from repro.workloads.synthetic import clique_query, star_query
from repro.workloads.tpch_queries import tpch_query

BACKENDS = ["pure", "numpy", "native"]


def _optimize(workload, monkeypatch, backend, **options):
    monkeypatch.setenv("REPRO_KERNEL", backend)
    return Session(
        workload.database, options=OptimizerOptions(**options)
    ).optimize(workload.sql)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "make", [lambda: star_query(6, rows=5, seed=0),
             lambda: clique_query(5, rows=5, seed=0)],
    ids=["star6", "clique5"],
)
def test_backends_agree_on_best_plan(backend, make, monkeypatch):
    workload = make()
    got = _optimize(workload, monkeypatch, backend)
    monkeypatch.delenv("REPRO_KERNEL")
    want = Session(workload.database).optimize(workload.sql)
    assert got.best_cost == want.best_cost
    assert got.best_plan.render() == want.best_plan.render()
    assert got.memo.render() == want.memo.render()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fused", [True, False])
def test_backend_times_fused_combinations(backend, fused, monkeypatch):
    workload = star_query(6, rows=5, seed=0)
    result = _optimize(workload, monkeypatch, backend, fused=fused)
    # The reported backend is what selection actually landed on, never
    # an unavailable choice.
    from repro.kernel import native_available

    expected = backend
    if backend == "native" and not native_available():
        expected = "numpy"
    assert result.kernel == expected
    assert result.timings["kernel"] == expected
    if fused:
        assert "fused" in result.timings
    assert "implement" in result.timings and "bestplan" in result.timings


@pytest.mark.parametrize("backend", ["pure", "numpy"])
def test_backends_agree_on_tpch(backend, monkeypatch):
    sql = tpch_query("Q3").sql
    monkeypatch.setenv("REPRO_KERNEL", backend)
    got = Session.tpch(seed=0).optimize(sql)
    monkeypatch.delenv("REPRO_KERNEL")
    want = Session.tpch(seed=0).optimize(sql)
    assert got.best_cost == want.best_cost
    assert got.best_plan.render() == want.best_plan.render()


@pytest.mark.parametrize("backend", ["pure", "numpy"])
def test_dp_stats_surface(backend, monkeypatch):
    workload = clique_query(5, rows=5, seed=0)
    result = _optimize(workload, monkeypatch, backend)
    if result.memo.columnar is not None and backend == "numpy":
        assert result.dp_stats is not None
        assert {"states", "pruned"} <= set(result.dp_stats)
        assert result.timings["pruned_states"] == result.dp_stats["pruned"]
