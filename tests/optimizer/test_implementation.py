"""Tests for implementation rules and enforcer insertion."""

from repro.algebra.expressions import ColumnId
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.optimizer.explorer import EnumerationExplorer
from repro.optimizer.implementation import (
    ImplementationConfig,
    extract_equi_keys,
    implement_memo,
)
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import bind
from repro.sql.parser import parse


def _implemented(catalog, sql, config=None, allow_cross=False, root_order=()):
    setup = build_initial_memo(bind(parse(sql), catalog), allow_cross)
    EnumerationExplorer().explore(setup.memo, setup.graph, allow_cross)
    implement_memo(setup.memo, catalog, config, root_order=root_order)
    return setup.memo


def _ops(memo, cls):
    return [
        e for g in memo.groups for e in g.physical_exprs() if isinstance(e.op, cls)
    ]


JOIN2 = (
    "SELECT n.n_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


class TestExtractEquiKeys:
    def test_simple_equality(self, catalog):
        bound = bind(parse(JOIN2), catalog)
        predicate = bound.where_conjuncts[0]
        left, right, residual = extract_equi_keys(
            predicate, frozenset(["n"]), frozenset(["r"])
        )
        assert left == (ColumnId("n", "n_regionkey"),)
        assert right == (ColumnId("r", "r_regionkey"),)
        assert residual is None

    def test_orientation_follows_sides(self, catalog):
        bound = bind(parse(JOIN2), catalog)
        predicate = bound.where_conjuncts[0]
        left, right, _ = extract_equi_keys(
            predicate, frozenset(["r"]), frozenset(["n"])
        )
        assert left == (ColumnId("r", "r_regionkey"),)

    def test_non_equi_is_residual(self, catalog):
        sql = (
            "SELECT n.n_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey AND n.n_nationkey < r.r_regionkey"
        )
        bound = bind(parse(sql), catalog)
        # The two conjuncts arrive as separate where_conjuncts; conjoin.
        from repro.algebra.expressions import make_conjunction

        predicate = make_conjunction(list(bound.where_conjuncts))
        left, right, residual = extract_equi_keys(
            predicate, frozenset(["n"]), frozenset(["r"])
        )
        assert len(left) == 1
        assert residual is not None

    def test_no_equi_keys(self, catalog):
        sql = (
            "SELECT n.n_name FROM nation n, region r "
            "WHERE n.n_regionkey < r.r_regionkey"
        )
        bound = bind(parse(sql), catalog)
        left, right, residual = extract_equi_keys(
            bound.where_conjuncts[0], frozenset(["n"]), frozenset(["r"])
        )
        assert left == () and right == ()
        assert residual is not None

    def test_composite_keys_sorted_canonically(self, catalog):
        sql = (
            "SELECT l.l_orderkey FROM lineitem l, partsupp ps "
            "WHERE ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey"
        )
        bound = bind(parse(sql), catalog)
        from repro.algebra.expressions import make_conjunction

        predicate = make_conjunction(list(bound.where_conjuncts))
        left, right, residual = extract_equi_keys(
            predicate, frozenset(["l"]), frozenset(["ps"])
        )
        assert left == (ColumnId("l", "l_partkey"), ColumnId("l", "l_suppkey"))
        assert right == (ColumnId("ps", "ps_partkey"), ColumnId("ps", "ps_suppkey"))
        assert residual is None


class TestScanImplementations:
    def test_table_scan_always_generated(self, catalog):
        memo = _implemented(catalog, JOIN2)
        assert len(_ops(memo, TableScan)) == 2

    def test_index_scans_per_index(self, catalog):
        memo = _implemented(catalog, JOIN2)
        nation_scans = [
            e for e in _ops(memo, IndexScan) if e.op.table == "nation"
        ]
        assert {e.op.index_name for e in nation_scans} == {
            "nation_pk",
            "nation_regionkey",
        }

    def test_index_scans_disabled(self, catalog):
        config = ImplementationConfig(enable_index_scans=False)
        memo = _implemented(catalog, JOIN2, config)
        assert not _ops(memo, IndexScan)

    def test_index_key_order_uses_alias(self, catalog):
        memo = _implemented(catalog, JOIN2)
        scan = next(
            e.op
            for e in _ops(memo, IndexScan)
            if e.op.index_name == "nation_regionkey"
        )
        assert scan.key_order == (ColumnId("n", "n_regionkey"),)


class TestJoinImplementations:
    def test_three_join_algorithms_for_equi_join(self, catalog):
        memo = _implemented(catalog, JOIN2)
        assert len(_ops(memo, HashJoin)) == 2  # both orientations
        assert len(_ops(memo, MergeJoin)) == 2
        assert len(_ops(memo, NestedLoopJoin)) == 2

    def test_cross_join_only_nested_loops(self, catalog):
        memo = _implemented(
            catalog, "SELECT n.n_name FROM nation n, region r", allow_cross=True
        )
        assert not _ops(memo, HashJoin)
        assert not _ops(memo, MergeJoin)
        assert len(_ops(memo, NestedLoopJoin)) == 2

    def test_join_algorithms_configurable(self, catalog):
        config = ImplementationConfig(
            enable_hash_join=False, enable_merge_join=False
        )
        memo = _implemented(catalog, JOIN2, config)
        assert not _ops(memo, HashJoin)
        assert not _ops(memo, MergeJoin)
        assert _ops(memo, NestedLoopJoin)


class TestAggregateImplementations:
    GROUPED = (
        "SELECT n_regionkey, COUNT(*) AS c FROM nation GROUP BY n_regionkey"
    )

    def test_grouped_aggregate_has_both(self, catalog):
        memo = _implemented(catalog, self.GROUPED)
        assert len(_ops(memo, HashAggregate)) == 1
        assert len(_ops(memo, StreamAggregate)) == 1

    def test_scalar_aggregate_stream_only(self, catalog):
        memo = _implemented(catalog, "SELECT COUNT(*) AS c FROM nation")
        assert not _ops(memo, HashAggregate)
        assert len(_ops(memo, StreamAggregate)) == 1

    def test_stream_aggregate_disabled(self, catalog):
        config = ImplementationConfig(enable_stream_aggregate=False)
        memo = _implemented(catalog, self.GROUPED, config)
        assert not _ops(memo, StreamAggregate)
        assert _ops(memo, HashAggregate)


class TestEnforcers:
    def test_merge_join_requirements_create_sorts(self, catalog):
        memo = _implemented(catalog, JOIN2)
        sorts = _ops(memo, Sort)
        # Sorts appear in both scan groups (each merge-join side needs one).
        assert len(sorts) >= 2
        sort_groups = {e.group_id for e in sorts}
        scan_groups = {e.group_id for e in _ops(memo, TableScan)}
        assert sort_groups <= scan_groups | sort_groups

    def test_sort_child_is_own_group(self, catalog):
        memo = _implemented(catalog, JOIN2)
        for sort in _ops(memo, Sort):
            assert sort.children == (sort.group_id,)

    def test_enforcers_disabled(self, catalog):
        config = ImplementationConfig(enable_sort_enforcers=False)
        memo = _implemented(catalog, JOIN2, config)
        assert not _ops(memo, Sort)

    def test_stream_aggregate_requirement_creates_sort(self, catalog):
        memo = _implemented(
            catalog,
            "SELECT n_regionkey, COUNT(*) AS c FROM nation GROUP BY n_regionkey",
        )
        sorts = _ops(memo, Sort)
        orders = {s.op.order for s in sorts}
        assert (ColumnId("nation", "n_regionkey"),) in orders

    def test_root_order_creates_root_sort(self, catalog):
        root_order = (ColumnId("", "n_name"),)
        memo = _implemented(
            catalog,
            "SELECT n_name FROM nation",
            root_order=root_order,
        )
        root_sorts = [
            e for e in _ops(memo, Sort) if e.group_id == memo.root_group_id
        ]
        assert len(root_sorts) == 1
        assert root_sorts[0].op.order == root_order

    def test_projection_implemented(self, catalog):
        memo = _implemented(catalog, "SELECT n_name FROM nation")
        assert len(_ops(memo, PhysicalProject)) == 1

    def test_idempotent(self, catalog):
        setup = build_initial_memo(bind(parse(JOIN2), catalog), False)
        EnumerationExplorer().explore(setup.memo, setup.graph, False)
        implement_memo(setup.memo, catalog)
        added = implement_memo(setup.memo, catalog)
        assert added == 0
