"""Tests for cost-bound pruning (ablation E11)."""

import pytest

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.optimizer.pruning import prune_memo
from repro.planspace.space import PlanSpace

JOIN2 = (
    "SELECT n.n_name FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey"
)


def _fresh_result(catalog, **kwargs):
    return Optimizer(catalog, OptimizerOptions(**kwargs)).optimize_sql(JOIN2)


class TestPruneMemo:
    def test_pruning_shrinks_space(self, catalog):
        result = _fresh_result(catalog, allow_cross_products=False)
        before = PlanSpace.from_result(result).count()
        removed = prune_memo(result.memo, result.cost_model, factor=2.0)
        after = PlanSpace.from_result(result).count()
        assert removed > 0
        assert after < before

    def test_optimum_survives(self, catalog):
        result = _fresh_result(catalog, allow_cross_products=False)
        prune_memo(result.memo, result.cost_model, factor=1.5)
        from repro.optimizer.bestplan import find_best_plan

        _, cost = find_best_plan(result.memo, result.cost_model)
        assert cost == pytest.approx(result.best_cost)

    def test_larger_factor_keeps_more(self, catalog):
        tight = _fresh_result(catalog, allow_cross_products=False)
        loose = _fresh_result(catalog, allow_cross_products=False)
        prune_memo(tight.memo, tight.cost_model, factor=1.0)
        prune_memo(loose.memo, loose.cost_model, factor=100.0)
        tight_count = PlanSpace.from_result(tight).count()
        loose_count = PlanSpace.from_result(loose).count()
        assert tight_count <= loose_count

    def test_factor_validation(self, catalog):
        result = _fresh_result(catalog, allow_cross_products=False)
        with pytest.raises(ValueError):
            prune_memo(result.memo, result.cost_model, factor=0.5)

    def test_reused_search_matches_fresh(self, catalog):
        """Passing the already-solved search (the serving path does)
        prunes the same expressions as a from-scratch search."""
        from repro.optimizer.bestplan import BestPlanSearch

        fresh = _fresh_result(catalog, allow_cross_products=False)
        reused = _fresh_result(catalog, allow_cross_products=False)
        search = BestPlanSearch(reused.memo, reused.cost_model)
        search.best(reused.memo.root_group_id, reused.root_order)
        removed_fresh = prune_memo(fresh.memo, fresh.cost_model, factor=2.0)
        removed_reused = prune_memo(
            reused.memo, reused.cost_model, factor=2.0, search=search
        )
        assert removed_fresh == removed_reused
        assert fresh.memo.render() == reused.memo.render()


class TestServingPathPruning:
    """``Session.optimize(sql, prune_factor=...)`` (satellite wiring)."""

    def test_session_prune_factor_shrinks_and_keeps_optimum(self):
        from repro.api import Session
        from repro.optimizer.bestplan import find_best_plan

        session = Session.tpch(seed=0)
        plain = session.optimize(JOIN2)
        pruned = session.optimize(JOIN2, prune_factor=1.5)
        assert pruned.best_cost == pytest.approx(plain.best_cost)
        assert (
            pruned.memo.physical_expression_count()
            < plain.memo.physical_expression_count()
        )
        # The optimum is still extractable from the pruned memo.
        _, cost = find_best_plan(pruned.memo, pruned.cost_model)
        assert cost == pytest.approx(plain.best_cost)

    def test_factor_one_keeps_ordered_suppliers(self):
        """At factor 1.0 the merge-join optimum survives with its
        order-delivering suppliers: survival is judged per qualifying
        (group, requirement) context, not against the order-free best
        alone — the configuration that used to leave an infeasible memo."""
        from repro.api import Session

        session = Session.tpch(seed=0)
        sql = (
            "SELECT o.o_orderkey FROM orders o, lineitem l "
            "WHERE o.o_orderkey = l.l_orderkey"
        )
        plain = session.optimize(sql)
        pruned = session.optimize(sql, prune_factor=1.0)
        assert pruned.best_cost == pytest.approx(plain.best_cost)

    def test_session_prune_factor_validates_before_optimizing(self):
        from repro.api import Session
        from repro.errors import PlanSpaceError

        session = Session.tpch(seed=0)
        with pytest.raises(PlanSpaceError):
            session.optimize(JOIN2, prune_factor=0.5)

    def test_pruning_detaches_stale_columnar_store(self):
        from repro.api import Session

        session = Session.tpch(seed=0)
        pruned = session.optimize(JOIN2, prune_factor=1.2)
        assert pruned.memo.columnar is None

    def test_session_prune_factor_rejects_sampled(self):
        from repro.api import Session
        from repro.errors import PlanSpaceError

        session = Session.tpch(seed=0)
        with pytest.raises(PlanSpaceError):
            session.optimize(JOIN2, method="sampled", prune_factor=2.0)

    def test_cli_prune_factor(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["optimize", "Q3", "--prune-factor", "1.5"], out=out)
        assert code == 0
        assert "pruned to" in out.getvalue()

    def test_cli_prune_factor_rejects_sampled(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["optimize", "Q3", "--sampled", "--prune-factor", "1.5"], out=out
        )
        assert code == 2

    def test_pruned_space_plans_still_valid(self, catalog, micro_db):
        from repro.executor.executor import PlanExecutor
        from repro.testing.diff import canonical_rows

        result = _fresh_result(catalog, allow_cross_products=False)
        prune_memo(result.memo, result.cost_model, factor=3.0)
        space = PlanSpace.from_result(result)
        executor = PlanExecutor(micro_db)
        reference = None
        for _, plan in space.enumerate(stop=min(30, space.count())):
            rows = canonical_rows(executor.execute(plan).rows)
            if reference is None:
                reference = rows
            assert rows == reference


class TestOptimizerIntegration:
    def test_pruning_option(self, catalog):
        unpruned = _fresh_result(catalog, allow_cross_products=False)
        pruned = _fresh_result(
            catalog, allow_cross_products=False, pruning_factor=2.0
        )
        assert (
            PlanSpace.from_result(pruned).count()
            < PlanSpace.from_result(unpruned).count()
        )
        assert pruned.best_cost == pytest.approx(unpruned.best_cost)
