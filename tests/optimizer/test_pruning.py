"""Tests for cost-bound pruning (ablation E11)."""

import pytest

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.optimizer.pruning import prune_memo
from repro.planspace.space import PlanSpace

JOIN2 = (
    "SELECT n.n_name FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey"
)


def _fresh_result(catalog, **kwargs):
    return Optimizer(catalog, OptimizerOptions(**kwargs)).optimize_sql(JOIN2)


class TestPruneMemo:
    def test_pruning_shrinks_space(self, catalog):
        result = _fresh_result(catalog, allow_cross_products=False)
        before = PlanSpace.from_result(result).count()
        removed = prune_memo(result.memo, result.cost_model, factor=2.0)
        after = PlanSpace.from_result(result).count()
        assert removed > 0
        assert after < before

    def test_optimum_survives(self, catalog):
        result = _fresh_result(catalog, allow_cross_products=False)
        prune_memo(result.memo, result.cost_model, factor=1.5)
        from repro.optimizer.bestplan import find_best_plan

        _, cost = find_best_plan(result.memo, result.cost_model)
        assert cost == pytest.approx(result.best_cost)

    def test_larger_factor_keeps_more(self, catalog):
        tight = _fresh_result(catalog, allow_cross_products=False)
        loose = _fresh_result(catalog, allow_cross_products=False)
        prune_memo(tight.memo, tight.cost_model, factor=1.0)
        prune_memo(loose.memo, loose.cost_model, factor=100.0)
        tight_count = PlanSpace.from_result(tight).count()
        loose_count = PlanSpace.from_result(loose).count()
        assert tight_count <= loose_count

    def test_factor_validation(self, catalog):
        result = _fresh_result(catalog, allow_cross_products=False)
        with pytest.raises(ValueError):
            prune_memo(result.memo, result.cost_model, factor=0.5)

    def test_pruned_space_plans_still_valid(self, catalog, micro_db):
        from repro.executor.executor import PlanExecutor
        from repro.testing.diff import canonical_rows

        result = _fresh_result(catalog, allow_cross_products=False)
        prune_memo(result.memo, result.cost_model, factor=3.0)
        space = PlanSpace.from_result(result)
        executor = PlanExecutor(micro_db)
        reference = None
        for _, plan in space.enumerate(stop=min(30, space.count())):
            rows = canonical_rows(executor.execute(plan).rows)
            if reference is None:
                reference = rows
            assert rows == reference


class TestOptimizerIntegration:
    def test_pruning_option(self, catalog):
        unpruned = _fresh_result(catalog, allow_cross_products=False)
        pruned = _fresh_result(
            catalog, allow_cross_products=False, pruning_factor=2.0
        )
        assert (
            PlanSpace.from_result(pruned).count()
            < PlanSpace.from_result(unpruned).count()
        )
        assert pruned.best_cost == pytest.approx(unpruned.best_cost)
