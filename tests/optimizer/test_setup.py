"""Tests for initial memo construction (Figure 1's copy-in)."""

import pytest

from repro.algebra.logical import (
    LogicalAggregate,
    LogicalGet,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
)
from repro.errors import OptimizerError
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import bind
from repro.sql.parser import parse


def _setup(catalog, sql, allow_cross=True):
    return build_initial_memo(bind(parse(sql), catalog), allow_cross)


class TestLeafGroups:
    def test_one_get_group_per_quantifier(self, catalog):
        setup = _setup(catalog, "SELECT n.n_name FROM nation n, region r")
        gets = [
            e.op
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalGet)
        ]
        assert {g.alias for g in gets} == {"n", "r"}

    def test_pushed_filter_lands_in_get(self, catalog):
        setup = _setup(
            catalog, "SELECT r_name FROM region r WHERE r.r_name = 'ASIA'"
        )
        get = next(
            e.op
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalGet)
        )
        assert get.predicate is not None


class TestInitialJoinTree:
    def test_left_deep_shape(self, catalog):
        setup = _setup(
            catalog,
            "SELECT n.n_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey",
        )
        joins = [
            e
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalJoin)
        ]
        assert len(joins) == 1
        join_root = setup.memo.group(setup.join_root_gid)
        assert join_root.relations == frozenset({"n", "r"})

    def test_join_count_for_n_tables(self, catalog):
        setup = _setup(
            catalog,
            "SELECT c.c_custkey FROM customer c, orders o, lineitem l "
            "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey",
        )
        joins = [
            e
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalJoin)
        ]
        assert len(joins) == 2

    def test_cross_avoiding_reorder(self, catalog):
        # FROM order has customer and lineitem non-adjacent; without cross
        # products the seed order must still find a connected sequence.
        setup = _setup(
            catalog,
            "SELECT c.c_custkey FROM customer c, lineitem l, orders o "
            "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey",
            allow_cross=False,
        )
        joins = [
            e.op
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalJoin)
        ]
        assert all(j.predicate is not None for j in joins)

    def test_disconnected_graph_rejected_without_cross(self, catalog):
        with pytest.raises(OptimizerError):
            _setup(
                catalog,
                "SELECT n.n_name FROM nation n, region r",
                allow_cross=False,
            )

    def test_disconnected_graph_allowed_with_cross(self, catalog):
        setup = _setup(catalog, "SELECT n.n_name FROM nation n, region r", True)
        joins = [
            e.op
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalJoin)
        ]
        assert joins[0].is_cross_product()


class TestRootChain:
    def test_project_always_on_top(self, catalog):
        setup = _setup(catalog, "SELECT n_name FROM nation")
        root = setup.memo.root_group()
        assert isinstance(root.exprs[0].op, LogicalProject)

    def test_aggregate_between_join_and_project(self, catalog):
        setup = _setup(
            catalog,
            "SELECT n_regionkey, COUNT(*) AS c FROM nation GROUP BY n_regionkey",
        )
        root = setup.memo.root_group()
        project = root.exprs[0]
        agg_group = setup.memo.group(project.children[0])
        assert isinstance(agg_group.exprs[0].op, LogicalAggregate)

    def test_constant_conjunct_becomes_select(self, catalog):
        setup = _setup(catalog, "SELECT n_name FROM nation WHERE 1 = 1")
        selects = [
            e
            for g in setup.memo.groups
            for e in g.exprs
            if isinstance(e.op, LogicalSelect)
        ]
        assert len(selects) == 1

    def test_root_is_set(self, catalog):
        setup = _setup(catalog, "SELECT n_name FROM nation")
        assert setup.memo.root_group_id is not None
