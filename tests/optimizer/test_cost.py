"""Tests for the cost model."""

import pytest

from repro.algebra.expressions import (
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Literal,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.optimizer.cost import CostModel, CostParameters, _constrains_leading_key
from repro.optimizer.plan import PlanNode

N_KEY = ColumnId("n", "n_nationkey")
R_KEY = ColumnId("r", "r_regionkey")


@pytest.fixture
def model(catalog):
    return CostModel(catalog)


class TestScanCosts:
    def test_table_scan_pays_full_table(self, model):
        cost = model.operator_cost(TableScan("lineitem", "l"), 1000.0, ())
        assert cost == pytest.approx(6_001_215.0)

    def test_index_scan_unconstrained_costs_more_than_seq(self, model):
        seq = model.operator_cost(TableScan("orders", "o"), 1e6, ())
        idx = model.operator_cost(
            IndexScan("orders", "o", "orders_pk", (ColumnId("o", "o_orderkey"),)),
            1e6,
            (),
        )
        assert idx > seq

    def test_index_scan_with_sargable_key_is_cheap(self, model):
        predicate = Comparison(
            CompOp.EQ, ColumnRef(ColumnId("o", "o_orderkey")), Literal(7)
        )
        cheap = model.operator_cost(
            IndexScan(
                "orders", "o", "orders_pk", (ColumnId("o", "o_orderkey"),), predicate
            ),
            1.0,
            (),
        )
        full = model.operator_cost(TableScan("orders", "o", predicate), 1.0, ())
        assert cheap < full / 1000

    def test_sargability_requires_leading_column(self):
        predicate = Comparison(
            CompOp.EQ, ColumnRef(ColumnId("l", "l_linenumber")), Literal(1)
        )
        assert not _constrains_leading_key(predicate, ColumnId("l", "l_orderkey"))
        assert _constrains_leading_key(predicate, ColumnId("l", "l_linenumber"))


class TestJoinCosts:
    def test_hash_join_linear(self, model):
        join = HashJoin((N_KEY,), (R_KEY,))
        cost = model.operator_cost(join, 100.0, (1000.0, 10.0))
        params = CostParameters()
        expected = (
            10.0 * params.hash_build_row
            + 1000.0 * params.hash_probe_row
            + 100.0 * params.join_output_row
        )
        assert cost == pytest.approx(expected)

    def test_nested_loop_quadratic(self, model):
        join = NestedLoopJoin(None)
        small = model.operator_cost(join, 10.0, (100.0, 100.0))
        big = model.operator_cost(join, 10.0, (1000.0, 1000.0))
        assert big > small * 50

    def test_merge_join_cheaper_than_nl_at_scale(self, model):
        rows = (1e6, 1e6)
        merge = model.operator_cost(MergeJoin((N_KEY,), (R_KEY,)), 1e6, rows)
        nested = model.operator_cost(NestedLoopJoin(None), 1e6, rows)
        assert merge < nested / 100


class TestOtherOperators:
    def test_sort_superlinear(self, model):
        small = model.operator_cost(Sort((N_KEY,)), 0, (1000.0,))
        big = model.operator_cost(Sort((N_KEY,)), 0, (1_000_000.0,))
        assert big > small * 1000

    def test_stream_agg_cheaper_than_hash_agg(self, model):
        stream = model.operator_cost(StreamAggregate((N_KEY,), ()), 10.0, (1e6,))
        hashed = model.operator_cost(HashAggregate((N_KEY,), ()), 10.0, (1e6,))
        assert stream < hashed

    def test_filter_and_project_linear(self, model):
        pred = Comparison(CompOp.EQ, ColumnRef(N_KEY), Literal(1))
        assert model.operator_cost(PhysicalFilter(pred), 10.0, (100.0,)) < 100
        project = PhysicalProject((("x", ColumnRef(N_KEY)),))
        assert model.operator_cost(project, 100.0, (100.0,)) < 100


class TestPlanCost:
    def test_plan_cost_sums_tree(self, model, catalog):
        scan_n = PlanNode(TableScan("nation", "n"), (), 0, 1, 25.0)
        scan_r = PlanNode(TableScan("region", "r"), (), 1, 1, 5.0)
        join = PlanNode(HashJoin((N_KEY,), (R_KEY,)), (scan_n, scan_r), 2, 1, 25.0)
        total = model.plan_cost(join)
        local = model.operator_cost(join.op, 25.0, (25.0, 5.0))
        assert total == pytest.approx(local + 25.0 + 5.0)

    def test_custom_parameters_respected(self, catalog):
        expensive_nl = CostModel(
            catalog, CostParameters(nlj_pair=100.0)
        ).operator_cost(NestedLoopJoin(None), 1.0, (10.0, 10.0))
        cheap_nl = CostModel(
            catalog, CostParameters(nlj_pair=0.001)
        ).operator_cost(NestedLoopJoin(None), 1.0, (10.0, 10.0))
        assert expensive_nl > cheap_nl * 100

    def test_plan_cost_survives_deep_plans(self, model):
        """plan_cost is iterative: a plan deeper than Python's recursion
        limit still prices (deep chain-query plans must not crash)."""
        depth = 3000
        node = PlanNode(TableScan("nation", "n"), (), 0, 1, 25.0)
        for local in range(2, depth + 2):
            node = PlanNode(Sort((N_KEY,)), (node,), 0, local, 25.0)
        total = model.plan_cost(node)
        scan = model.operator_cost(TableScan("nation", "n"), 25.0, ())
        sort = model.operator_cost(Sort((N_KEY,)), 25.0, (25.0,))
        assert total == pytest.approx(scan + depth * sort)

    def test_plan_costs_batches_match_singles(self, model):
        scan_n = PlanNode(TableScan("nation", "n"), (), 0, 1, 25.0)
        scan_r = PlanNode(TableScan("region", "r"), (), 1, 1, 5.0)
        join = PlanNode(HashJoin((N_KEY,), (R_KEY,)), (scan_n, scan_r), 2, 1, 25.0)
        plans = [scan_n, scan_r, join]
        assert model.plan_costs(plans) == [
            model.plan_cost(plan) for plan in plans
        ]
        assert model.plan_costs([]) == []
