"""Tests for cardinality annotation of memo groups."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.annotate import annotate_cardinalities
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.explorer import EnumerationExplorer
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import bind
from repro.sql.parser import parse


def _annotated(catalog, sql, allow_cross=False):
    bound = bind(parse(sql), catalog)
    setup = build_initial_memo(bound, allow_cross)
    EnumerationExplorer().explore(setup.memo, setup.graph, allow_cross)
    estimator = CardinalityEstimator(catalog, bound)
    annotate_cardinalities(setup.memo, setup.graph, estimator)
    return setup


class TestAnnotation:
    def test_every_group_annotated(self, catalog):
        setup = _annotated(
            catalog,
            "SELECT n.n_name, COUNT(*) AS c FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey GROUP BY n.n_name",
        )
        assert all(g.cardinality is not None for g in setup.memo.groups)

    def test_leaf_groups_match_filtered_base(self, catalog):
        setup = _annotated(
            catalog,
            "SELECT r.r_name FROM region r, nation n "
            "WHERE r.r_regionkey = n.n_regionkey AND r.r_name = 'ASIA'",
        )
        region_group = setup.memo.group_for_relations(frozenset(["r"]))
        assert region_group.cardinality == pytest.approx(1.0)
        nation_group = setup.memo.group_for_relations(frozenset(["n"]))
        assert nation_group.cardinality == pytest.approx(25.0)

    def test_join_group_consistent_for_all_orders(self, catalog):
        setup = _annotated(
            catalog,
            "SELECT c.c_custkey FROM customer c, orders o, lineitem l "
            "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey",
        )
        # Cardinality is a property of the relation set, independent of
        # how the set was assembled.
        full = setup.memo.group_for_relations(frozenset(["c", "o", "l"]))
        assert full.cardinality == pytest.approx(6_001_215, rel=0.05)

    def test_aggregate_group_capped(self, catalog):
        setup = _annotated(
            catalog,
            "SELECT n.n_name, COUNT(*) AS c FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey GROUP BY n.n_name",
        )
        agg_group = next(g for g in setup.memo.groups if g.key[0] == "agg")
        assert agg_group.cardinality == pytest.approx(25.0)

    def test_project_group_inherits(self, catalog):
        setup = _annotated(
            catalog,
            "SELECT n.n_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey",
        )
        project_group = setup.memo.root_group()
        join_group = setup.memo.group_for_relations(frozenset(["n", "r"]))
        assert project_group.cardinality == join_group.cardinality

    def test_select_group_scales_by_selectivity(self, catalog):
        setup = _annotated(
            catalog,
            "SELECT n.n_name FROM nation n WHERE 1 = 1",
            allow_cross=True,
        )
        select_group = next(g for g in setup.memo.groups if g.key[0] == "select")
        assert select_group.cardinality is not None

    def test_unary_without_logical_expr_raises(self, catalog):
        sql = (
            "SELECT n.n_name, COUNT(*) AS c FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey GROUP BY n.n_name"
        )
        setup = _annotated(catalog, sql)
        agg_group = next(g for g in setup.memo.groups if g.key[0] == "agg")
        saved = list(agg_group.exprs)
        agg_group.exprs.clear()
        try:
            estimator = CardinalityEstimator(catalog, bind(parse(sql), catalog))
            with pytest.raises(OptimizerError):
                annotate_cardinalities(setup.memo, setup.graph, estimator)
        finally:
            agg_group.exprs.extend(saved)
