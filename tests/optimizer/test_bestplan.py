"""Tests for best-plan extraction.

The crucial property: the DP optimum must equal the true minimum over the
*entire* enumerated plan space — checked here by brute force on spaces
small enough to enumerate.
"""

import pytest

from repro.algebra.expressions import ColumnId
from repro.algebra.physical import Sort
from repro.errors import OptimizerError
from repro.optimizer.bestplan import BestPlanSearch, find_best_plan
from repro.optimizer.cost import CostModel
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace


def _optimize(catalog, sql, **kwargs):
    return Optimizer(catalog, OptimizerOptions(**kwargs)).optimize_sql(sql)


JOIN2 = (
    "SELECT n.n_name FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey"
)


class TestAgainstBruteForce:
    def test_best_equals_global_minimum_join2(self, catalog):
        result = _optimize(catalog, JOIN2, allow_cross_products=False)
        space = PlanSpace.from_result(result)
        costs = [
            result.cost_model.plan_cost(plan) for _, plan in space.enumerate()
        ]
        assert result.best_cost == pytest.approx(min(costs))

    def test_best_equals_global_minimum_with_order_by(self, catalog):
        sql = JOIN2 + " ORDER BY n_name"
        result = _optimize(catalog, sql, allow_cross_products=False)
        space = PlanSpace.from_result(result)
        costs = [
            result.cost_model.plan_cost(plan) for _, plan in space.enumerate()
        ]
        assert result.best_cost == pytest.approx(min(costs))

    def test_best_plan_is_member_of_space(self, catalog):
        result = _optimize(catalog, JOIN2, allow_cross_products=False)
        space = PlanSpace.from_result(result)
        rank = space.rank(result.best_plan)
        assert 0 <= rank < space.count()

    def test_best_cost_matches_plan_cost(self, catalog):
        result = _optimize(catalog, JOIN2, allow_cross_products=False)
        assert result.cost_model.plan_cost(result.best_plan) == pytest.approx(
            result.best_cost
        )


class TestRequirements:
    def test_order_requirement_changes_root(self, catalog):
        unordered = _optimize(catalog, JOIN2, allow_cross_products=False)
        ordered = _optimize(
            catalog, JOIN2 + " ORDER BY n_name", allow_cross_products=False
        )
        assert ordered.best_cost >= unordered.best_cost
        assert isinstance(ordered.best_plan.op, Sort)

    def test_unsatisfiable_requirement_detected(self, catalog, q3_result):
        search = BestPlanSearch(q3_result.memo, q3_result.cost_model)
        bogus = (ColumnId("zz", "zz"),)
        assert search.best(q3_result.memo.root_group_id, bogus) is None

    def test_missing_cardinality_raises(self, catalog, q3_result):
        search = BestPlanSearch(q3_result.memo, q3_result.cost_model)
        saved = q3_result.memo.groups[0].cardinality
        q3_result.memo.groups[0].cardinality = None
        try:
            search._cache.clear()
            with pytest.raises(OptimizerError):
                search.best(0, ())
        finally:
            q3_result.memo.groups[0].cardinality = saved

    def test_find_best_plan_requires_root(self, catalog, q3_result):
        from repro.memo.memo import Memo

        with pytest.raises(OptimizerError):
            find_best_plan(Memo(), q3_result.cost_model)


class TestMemoization:
    def test_cache_reused(self, q3_result):
        search = BestPlanSearch(q3_result.memo, q3_result.cost_model)
        first = search.best(q3_result.memo.root_group_id, ())
        cache_size = len(search._cache)
        second = search.best(q3_result.memo.root_group_id, ())
        assert first is second
        assert len(search._cache) == cache_size
