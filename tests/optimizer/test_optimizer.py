"""Tests for the optimizer facade."""

import pytest

from repro.optimizer.explorer import RuleSet
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    Optimizer,
    OptimizerOptions,
)
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query

Q3 = tpch_query("Q3").sql


class TestPipeline:
    def test_timings_recorded(self, q3_result):
        for phase in ("setup", "explore", "implement", "annotate", "bestplan"):
            assert phase in q3_result.timings
            assert q3_result.timings[phase] >= 0

    def test_all_groups_annotated(self, q3_result):
        assert all(g.cardinality is not None for g in q3_result.memo.groups)

    def test_explain_mentions_cost(self, q3_result):
        text = q3_result.explain()
        assert "best cost" in text

    def test_best_plan_has_cardinalities(self, q3_result):
        assert all(n.cardinality > 0 for n in q3_result.best_plan.iter_nodes())


class TestOptions:
    def test_cross_products_inflate_space(self, catalog):
        no_cross = Optimizer(
            catalog, OptimizerOptions(allow_cross_products=False)
        ).optimize_sql(Q3)
        with_cross = Optimizer(
            catalog, OptimizerOptions(allow_cross_products=True)
        ).optimize_sql(Q3)
        assert (
            PlanSpace.from_result(with_cross).count()
            > PlanSpace.from_result(no_cross).count()
        )

    def test_exploration_strategies_agree_on_count(self, catalog):
        enum_result = Optimizer(
            catalog,
            OptimizerOptions(
                allow_cross_products=False,
                exploration=ExplorationStrategy.ENUMERATION,
            ),
        ).optimize_sql(Q3)
        rule_result = Optimizer(
            catalog,
            OptimizerOptions(
                allow_cross_products=False,
                exploration=ExplorationStrategy.TRANSFORMATION,
            ),
        ).optimize_sql(Q3)
        assert (
            PlanSpace.from_result(enum_result).count()
            == PlanSpace.from_result(rule_result).count()
        )
        assert enum_result.best_cost == pytest.approx(rule_result.best_cost)

    def test_restricted_rules_shrink_space(self, catalog):
        full = Optimizer(
            catalog,
            OptimizerOptions(
                allow_cross_products=False,
                exploration=ExplorationStrategy.TRANSFORMATION,
            ),
        ).optimize_sql(Q3)
        commute_only = Optimizer(
            catalog,
            OptimizerOptions(
                allow_cross_products=False,
                exploration=ExplorationStrategy.TRANSFORMATION,
                rules=RuleSet(True, False, False, False),
            ),
        ).optimize_sql(Q3)
        assert (
            PlanSpace.from_result(commute_only).count()
            <= PlanSpace.from_result(full).count()
        )

    def test_same_input_same_result(self, catalog):
        options = OptimizerOptions(allow_cross_products=False)
        a = Optimizer(catalog, options).optimize_sql(Q3)
        b = Optimizer(catalog, options).optimize_sql(Q3)
        assert a.best_cost == b.best_cost
        assert (
            PlanSpace.from_result(a).count() == PlanSpace.from_result(b).count()
        )

    def test_default_options(self, catalog):
        result = Optimizer(catalog).optimize_sql(Q3)
        assert result.options.allow_cross_products is False


class TestOrderBy:
    def test_root_order_propagated(self, catalog):
        result = Optimizer(
            catalog, OptimizerOptions(allow_cross_products=False)
        ).optimize_sql(Q3 + " ORDER BY revenue")
        assert result.root_order
        assert result.best_plan.op.name == "Sort"
