"""Tests for exploration: enumeration vs transformation rules."""

import pytest

from repro.algebra.logical import LogicalJoin
from repro.optimizer.explorer import (
    DEFAULT_RULES,
    EnumerationExplorer,
    RuleSet,
    TransformationExplorer,
)
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import bind
from repro.sql.parser import parse

CHAIN3 = (
    "SELECT c.c_custkey FROM customer c, orders o, lineitem l "
    "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey"
)

CHAIN4 = (
    "SELECT n.n_name FROM region r, nation n, supplier s, partsupp ps "
    "WHERE r.r_regionkey = n.n_regionkey AND n.n_nationkey = s.s_nationkey "
    "AND s.s_suppkey = ps.ps_suppkey"
)


def _explore(catalog, sql, explorer, allow_cross):
    setup = build_initial_memo(bind(parse(sql), catalog), allow_cross)
    explorer.explore(setup.memo, setup.graph, allow_cross)
    return setup.memo


def _join_fingerprints(memo):
    out = set()
    for group in memo.groups:
        for expr in group.exprs:
            if isinstance(expr.op, LogicalJoin):
                children_rels = tuple(
                    tuple(sorted(memo.group(c).relations)) for c in expr.children
                )
                out.add((children_rels, expr.op.key()))
    return out


class TestEnumeration:
    def test_three_table_chain_no_cross(self, catalog):
        memo = _explore(catalog, CHAIN3, EnumerationExplorer(), False)
        joins = _join_fingerprints(memo)
        # c-o-l chain: {co|l, c|ol} at top (x2 orders) + 2 base pairs (x2).
        assert len(joins) == 8

    def test_three_table_chain_with_cross(self, catalog):
        memo = _explore(catalog, CHAIN3, EnumerationExplorer(), True)
        joins = _join_fingerprints(memo)
        # Three pair subsets (2 ordered joins each) + the full set's 6
        # ordered partitions = 12 distinct join expressions.
        assert len(joins) == 12

    def test_groups_cover_connected_subsets(self, catalog):
        memo = _explore(catalog, CHAIN4, EnumerationExplorer(), False)
        rels_groups = [g for g in memo.groups if g.key[0] == "rels"]
        # Chain of 4 => 10 contiguous intervals.
        assert len(rels_groups) == 10

    def test_groups_cover_all_subsets_with_cross(self, catalog):
        memo = _explore(catalog, CHAIN4, EnumerationExplorer(), True)
        rels_groups = [g for g in memo.groups if g.key[0] == "rels"]
        assert len(rels_groups) == 15


class TestTransformation:
    def test_matches_enumeration_chain_no_cross(self, catalog):
        enum_memo = _explore(catalog, CHAIN4, EnumerationExplorer(), False)
        rule_memo = _explore(catalog, CHAIN4, TransformationExplorer(), False)
        assert _join_fingerprints(rule_memo) == _join_fingerprints(enum_memo)

    def test_matches_enumeration_chain_with_cross(self, catalog):
        enum_memo = _explore(catalog, CHAIN4, EnumerationExplorer(), True)
        rule_memo = _explore(catalog, CHAIN4, TransformationExplorer(), True)
        assert _join_fingerprints(rule_memo) == _join_fingerprints(enum_memo)

    def test_matches_enumeration_star_no_cross(self, catalog):
        star = (
            "SELECT n.n_name FROM nation n, supplier s, customer c "
            "WHERE n.n_nationkey = s.s_nationkey AND n.n_nationkey = c.c_nationkey"
        )
        enum_memo = _explore(catalog, star, EnumerationExplorer(), False)
        rule_memo = _explore(catalog, star, TransformationExplorer(), False)
        assert _join_fingerprints(rule_memo) == _join_fingerprints(enum_memo)

    def test_matches_enumeration_cycle_no_cross(self, catalog):
        """Cyclic join graphs are the hard case for rule completeness —
        Q5's customer/supplier nationkey edge closes a cycle."""
        cycle = (
            "SELECT n.n_name FROM nation n, supplier s, customer c "
            "WHERE n.n_nationkey = s.s_nationkey "
            "AND n.n_nationkey = c.c_nationkey "
            "AND c.c_nationkey = s.s_nationkey"
        )
        enum_memo = _explore(catalog, cycle, EnumerationExplorer(), False)
        rule_memo = _explore(catalog, cycle, TransformationExplorer(), False)
        assert _join_fingerprints(rule_memo) == _join_fingerprints(enum_memo)

    def test_matches_enumeration_clique4(self, catalog):
        from repro.workloads.synthetic import clique_query

        workload = clique_query(4, rows=5, seed=0)
        bound_sql = workload.sql
        setup_enum = build_initial_memo(
            bind(parse(bound_sql), workload.catalog), False
        )
        EnumerationExplorer().explore(setup_enum.memo, setup_enum.graph, False)
        setup_rule = build_initial_memo(
            bind(parse(bound_sql), workload.catalog), False
        )
        TransformationExplorer().explore(setup_rule.memo, setup_rule.graph, False)
        assert _join_fingerprints(setup_rule.memo) == _join_fingerprints(
            setup_enum.memo
        )

    def test_commutativity_alone_flips_sides_only(self, catalog):
        rules = RuleSet(
            commutativity=True,
            associativity_left=False,
            associativity_right=False,
            exchange=False,
        )
        memo = _explore(catalog, CHAIN3, TransformationExplorer(rules), False)
        joins = _join_fingerprints(memo)
        # Initial 2 joins + their mirrors.
        assert len(joins) == 4

    def test_no_rules_fixpoint_is_initial_tree(self, catalog):
        rules = RuleSet(False, False, False, False)
        memo = _explore(catalog, CHAIN3, TransformationExplorer(rules), False)
        assert len(_join_fingerprints(memo)) == 2

    def test_rule_set_describe(self):
        assert "commute" in DEFAULT_RULES.describe()
        assert RuleSet(False, False, False, False).describe() == "(none)"


class TestIdempotence:
    def test_second_exploration_adds_nothing(self, catalog):
        setup = build_initial_memo(bind(parse(CHAIN4), catalog), False)
        explorer = EnumerationExplorer()
        explorer.explore(setup.memo, setup.graph, False)
        added = explorer.explore(setup.memo, setup.graph, False)
        assert added == 0

    def test_transformation_idempotent(self, catalog):
        setup = build_initial_memo(bind(parse(CHAIN4), catalog), False)
        explorer = TransformationExplorer()
        explorer.explore(setup.memo, setup.graph, False)
        added = explorer.explore(setup.memo, setup.graph, False)
        assert added == 0
