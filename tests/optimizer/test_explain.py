"""Tests for EXPLAIN rendering."""

import pytest

from repro.optimizer.explain import explain_plan


class TestExplainPlan:
    def test_one_row_per_operator(self, q3_result):
        text = explain_plan(q3_result.best_plan, q3_result.cost_model)
        body = [
            line
            for line in text.splitlines()[2:-1]  # skip header/sep/total
        ]
        assert len(body) == q3_result.best_plan.size()

    def test_total_matches_plan_cost(self, q3_result):
        text = explain_plan(q3_result.best_plan, q3_result.cost_model)
        total_line = text.splitlines()[-1]
        total = float(total_line.split()[-1].replace(",", ""))
        assert total == pytest.approx(q3_result.best_cost, rel=0.01)

    def test_root_cumulative_equals_total(self, q3_result):
        text = explain_plan(q3_result.best_plan, q3_result.cost_model)
        root_line = text.splitlines()[2]
        root_total = float(root_line.split()[-1].replace(",", ""))
        assert root_total == pytest.approx(q3_result.best_cost, rel=0.01)

    def test_indentation_follows_depth(self, q3_result):
        text = explain_plan(q3_result.best_plan, q3_result.cost_model)
        lines = text.splitlines()[2:-1]
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ")

    def test_columns_present(self, q3_result):
        text = explain_plan(q3_result.best_plan, q3_result.cost_model)
        header = text.splitlines()[0]
        for column in ("operator", "est. rows", "cost", "total"):
            assert column in header
