"""Tests for the join hypergraph."""

import pytest

from repro.algebra.expressions import (
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Literal,
)
from repro.errors import OptimizerError
from repro.optimizer.joingraph import JoinGraph


def eq(a, b):
    left = ColumnRef(ColumnId(*a.split(".")))
    right = ColumnRef(ColumnId(*b.split(".")))
    return Comparison(CompOp.EQ, left, right)


def f(*names):
    return frozenset(names)


@pytest.fixture
def chain():
    """a - b - c - d."""
    return JoinGraph(
        f("a", "b", "c", "d"),
        [eq("a.x", "b.x"), eq("b.y", "c.y"), eq("c.z", "d.z")],
    )


@pytest.fixture
def star():
    """hub h connected to s1, s2, s3."""
    return JoinGraph(
        f("h", "s1", "s2", "s3"),
        [eq("h.a", "s1.x"), eq("h.b", "s2.x"), eq("h.c", "s3.x")],
    )


class TestConstruction:
    def test_unknown_alias_rejected(self):
        with pytest.raises(OptimizerError):
            JoinGraph(f("a"), [eq("a.x", "b.x")])

    def test_empty_aliases_rejected(self):
        with pytest.raises(OptimizerError):
            JoinGraph(frozenset(), [])

    def test_constant_conjuncts_separated(self):
        graph = JoinGraph(f("a"), [Comparison(CompOp.EQ, Literal(1), Literal(1))])
        assert len(graph.constant_conjuncts) == 1
        assert not graph.conjuncts


class TestPredicates:
    def test_applicable_at_meeting_point(self, chain):
        conjuncts = chain.applicable_conjuncts(f("a"), f("b"))
        assert len(conjuncts) == 1

    def test_not_applicable_below(self, chain):
        # a.x = b.x is evaluable inside {a, b}; joining {a,b} with {c}
        # must not re-apply it.
        conjuncts = chain.applicable_conjuncts(f("a", "b"), f("c"))
        assert [c.render() for c in conjuncts] == ["b.y = c.y"]

    def test_cross_product_has_no_predicate(self, chain):
        assert chain.join_predicate(f("a"), f("c")) is None

    def test_multiway_conjunct_waits_for_all_aliases(self):
        three_way = BoolExpr(
            BoolOp.OR, (eq("a.x", "b.x"), eq("b.x", "c.x"))
        )
        graph = JoinGraph(f("a", "b", "c"), [three_way])
        assert graph.applicable_conjuncts(f("a"), f("b")) == []
        assert len(graph.applicable_conjuncts(f("a", "b"), f("c"))) == 1

    def test_canonical_predicate_identity(self, chain):
        p1 = chain.join_predicate(f("a", "b"), f("c", "d"))
        p2 = chain.join_predicate(f("c", "d"), f("a", "b"))
        assert p1.fingerprint() == p2.fingerprint()

    def test_internal_conjuncts(self, chain):
        internal = chain.internal_conjuncts(f("a", "b", "c"))
        assert len(internal) == 2


class TestConnectivity:
    def test_single_alias_connected(self, chain):
        assert chain.is_connected(f("a"))

    def test_adjacent_connected(self, chain):
        assert chain.is_connected(f("a", "b"))

    def test_gap_disconnected(self, chain):
        assert not chain.is_connected(f("a", "c"))

    def test_full_chain_connected(self, chain):
        assert chain.is_connected(f("a", "b", "c", "d"))

    def test_star_satellites_disconnected(self, star):
        assert not star.is_connected(f("s1", "s2"))

    def test_components(self, chain):
        components = chain.components(f("a", "b", "d"))
        assert sorted(len(c) for c in components) == [1, 2]

    def test_empty_not_connected(self, chain):
        assert not chain.is_connected(frozenset())

    def test_neighbors(self, chain):
        assert chain.neighbors(f("b")) == f("a", "c")
        assert chain.neighbors(f("a", "b")) == f("c")


class TestPartitions:
    def test_counts_with_cross_products(self, chain):
        # 2^4 - 2 = 14 ordered partitions of a 4-set.
        assert len(chain.partitions(f("a", "b", "c", "d"), True)) == 14

    def test_counts_without_cross_products_chain(self, chain):
        # Chain a-b-c-d: unordered valid splits are {a|bcd, ab|cd, abc|d};
        # ordered doubles that.
        assert len(chain.partitions(f("a", "b", "c", "d"), False)) == 6

    def test_star_center_must_stay_connected(self, star):
        parts = star.partitions(f("h", "s1", "s2", "s3"), False)
        # Valid splits keep satellites with the hub: {s1|rest},{s2|rest},{s3|rest}.
        assert len(parts) == 6
        for left, right in parts:
            assert star.is_connected(left) and star.is_connected(right)

    def test_ordered_pairs_come_in_mirrors(self, chain):
        parts = chain.partitions(f("a", "b"), False)
        assert (f("a"), f("b")) in parts
        assert (f("b"), f("a")) in parts

    def test_single_alias_no_partitions(self, chain):
        assert chain.partitions(f("a"), True) == []


class TestSubsets:
    def test_all_subsets_count(self, chain):
        assert len(chain.all_subsets()) == 15

    def test_all_subsets_sorted_by_size(self, chain):
        sizes = [len(s) for s in chain.all_subsets()]
        assert sizes == sorted(sizes)

    def test_connected_subsets_chain(self, chain):
        # Chain of 4: connected subsets are the 10 contiguous intervals.
        assert len(chain.connected_subsets()) == 10

    def test_connected_subsets_star(self, star):
        # Star of 3 satellites: any subset containing h, plus singletons.
        assert len(star.connected_subsets()) == 8 + 3
