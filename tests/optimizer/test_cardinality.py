"""Tests for cardinality estimation."""

import pytest

from repro.algebra.expressions import (
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sql.binder import bind
from repro.sql.parser import parse


@pytest.fixture
def estimator(catalog):
    bound = bind(
        parse(
            "SELECT o.o_orderkey FROM orders o, lineitem l, nation n "
            "WHERE o.o_orderkey = l.l_orderkey AND n.n_name = 'FRANCE'"
        ),
        catalog,
    )
    return CardinalityEstimator(catalog, bound)


def col(alias, name):
    return ColumnRef(ColumnId(alias, name))


class TestSelectivity:
    def test_equality_col_const(self, estimator):
        sel = estimator.selectivity(
            Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        )
        assert sel == pytest.approx(1 / 25)

    def test_equality_col_col(self, estimator):
        sel = estimator.selectivity(
            Comparison(CompOp.EQ, col("o", "o_orderkey"), col("l", "l_orderkey"))
        )
        assert sel == pytest.approx(1 / 1_500_000)

    def test_inequality_complements_equality(self, estimator):
        eq = estimator.selectivity(
            Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        )
        ne = estimator.selectivity(
            Comparison(CompOp.NE, col("n", "n_name"), Literal("FRANCE"))
        )
        assert ne == pytest.approx(1 - eq)

    def test_numeric_range_interpolated(self, estimator):
        # l_discount in [0, 0.10]; < 0.05 is about half.
        sel = estimator.selectivity(
            Comparison(CompOp.LT, col("l", "l_discount"), Literal(0.05))
        )
        assert 0.4 < sel < 0.6

    def test_date_range_interpolated(self, estimator):
        sel = estimator.selectivity(
            Comparison(CompOp.GE, col("o", "o_orderdate"), Literal("1997-01-01"))
        )
        # About 1.6 of 6.6 years remain.
        assert 0.15 < sel < 0.35

    def test_range_flipped_operands(self, estimator):
        direct = estimator.selectivity(
            Comparison(CompOp.LT, col("l", "l_discount"), Literal(0.05))
        )
        flipped = estimator.selectivity(
            Comparison(CompOp.GT, Literal(0.05), col("l", "l_discount"))
        )
        assert direct == pytest.approx(flipped)

    def test_and_multiplies(self, estimator):
        c1 = Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        c2 = Comparison(CompOp.LT, col("l", "l_discount"), Literal(0.05))
        conj = BoolExpr(BoolOp.AND, (c1, c2))
        assert estimator.selectivity(conj) == pytest.approx(
            estimator.selectivity(c1) * estimator.selectivity(c2)
        )

    def test_or_inclusion_exclusion(self, estimator):
        c1 = Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        c2 = Comparison(CompOp.EQ, col("n", "n_name"), Literal("GERMANY"))
        disj = BoolExpr(BoolOp.OR, (c1, c2))
        s1 = estimator.selectivity(c1)
        assert estimator.selectivity(disj) == pytest.approx(1 - (1 - s1) ** 2)

    def test_not_complements(self, estimator):
        c = Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        negated = BoolExpr(BoolOp.NOT, (c,))
        assert estimator.selectivity(negated) == pytest.approx(
            1 - estimator.selectivity(c)
        )

    def test_like_default(self, estimator):
        assert estimator.selectivity(Like(col("n", "n_name"), "%a%")) == 0.1

    def test_in_list_scales_with_ndv(self, estimator):
        sel = estimator.selectivity(
            InList(col("n", "n_name"), ("FRANCE", "GERMANY"))
        )
        assert sel == pytest.approx(2 / 25)

    def test_is_null_uses_null_fraction(self, estimator):
        sel = estimator.selectivity(IsNull(col("n", "n_name")))
        assert sel == pytest.approx(1e-9)  # clamped: no nulls in TPC-H

    def test_selectivity_clamped_to_one(self, estimator):
        sel = estimator.selectivity(
            InList(col("n", "n_regionkey"), tuple(range(100)))
        )
        assert sel <= 1.0

    def test_cached(self, estimator):
        expr = Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        assert estimator.selectivity(expr) is estimator.selectivity(expr)


class TestCardinalities:
    def test_base_cardinality_applies_pushed_filter(self, catalog):
        bound = bind(
            parse("SELECT n.n_name FROM nation n WHERE n.n_name = 'FRANCE'"),
            catalog,
        )
        estimator = CardinalityEstimator(catalog, bound)
        assert estimator.base_cardinality("n") == pytest.approx(1.0)

    def test_base_cardinality_no_filter(self, estimator):
        assert estimator.base_cardinality("o") == 1_500_000

    def test_relation_set_with_join_conjunct(self, catalog):
        bound = bind(
            parse(
                "SELECT o.o_orderkey FROM orders o, lineitem l "
                "WHERE o.o_orderkey = l.l_orderkey"
            ),
            catalog,
        )
        estimator = CardinalityEstimator(catalog, bound)
        card = estimator.relation_set_cardinality(
            frozenset(["o", "l"]), list(bound.where_conjuncts)
        )
        # |O| x |L| / |O| = |L|.
        assert card == pytest.approx(6_001_215, rel=0.01)

    def test_aggregate_cardinality_caps_at_input(self, estimator):
        card = estimator.aggregate_cardinality(10.0, (ColumnId("o", "o_orderkey"),))
        assert card == 10.0

    def test_aggregate_cardinality_distinct_product(self, estimator):
        card = estimator.aggregate_cardinality(1e9, (ColumnId("n", "n_name"),))
        assert card == 25.0

    def test_scalar_aggregate_is_one(self, estimator):
        assert estimator.aggregate_cardinality(1e9, ()) == 1.0

    def test_select_cardinality(self, estimator):
        pred = Comparison(CompOp.EQ, col("n", "n_name"), Literal("FRANCE"))
        assert estimator.select_cardinality(2500.0, pred) == pytest.approx(100.0)

    def test_never_below_one(self, estimator):
        pred = Comparison(CompOp.EQ, col("o", "o_orderkey"), Literal(7))
        assert estimator.select_cardinality(2.0, pred) == 1.0
