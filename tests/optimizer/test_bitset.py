"""Tests for the alias bitset interner and bit-trick helpers."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.bitset import AliasUniverse, iter_bits, iter_subsets, lowest_bit


class TestHelpers:
    def test_lowest_bit(self):
        assert lowest_bit(0b10100) == 0b100
        assert lowest_bit(0) == 0
        assert lowest_bit(1) == 1

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b10110)) == [0b10, 0b100, 0b10000]
        assert list(iter_bits(0)) == []

    def test_iter_subsets_complete(self):
        subsets = set(iter_subsets(0b101))
        assert subsets == {0b101, 0b100, 0b001}

    def test_iter_subsets_count(self):
        # 2^k - 1 non-empty subsets of a k-bit mask.
        assert len(list(iter_subsets(0b1111))) == 15


class TestAliasUniverse:
    @pytest.fixture
    def universe(self):
        return AliasUniverse(["c", "a", "b"])

    def test_sorted_interning(self, universe):
        # Bit order is sorted name order: the lowest bit of any mask is
        # its lexicographically smallest alias.
        assert universe.order == ("a", "b", "c")
        assert universe.bit("a") == 1
        assert universe.bit("b") == 2
        assert universe.bit("c") == 4

    def test_roundtrip(self, universe):
        mask = universe.mask_of(["a", "c"])
        assert mask == 0b101
        assert universe.names(mask) == frozenset(["a", "c"])
        assert universe.sorted_names(mask) == ("a", "c")

    def test_full_mask(self, universe):
        assert universe.full_mask == 0b111
        assert universe.names(universe.full_mask) == frozenset(["a", "b", "c"])

    def test_names_memoized(self, universe):
        assert universe.names(0b011) is universe.names(0b011)

    def test_unknown_alias_rejected(self, universe):
        with pytest.raises(OptimizerError):
            universe.bit("zz")
        with pytest.raises(OptimizerError):
            universe.mask_of(["a", "zz"])

    def test_out_of_universe_mask_rejected(self, universe):
        with pytest.raises(OptimizerError):
            universe.names(0b1000)

    def test_empty_universe_rejected(self):
        with pytest.raises(OptimizerError):
            AliasUniverse([])

    def test_contains_and_len(self, universe):
        assert "a" in universe
        assert "zz" not in universe
        assert len(universe) == 3

    def test_duplicate_aliases_collapse(self):
        assert AliasUniverse(["a", "a", "b"]).size == 2
