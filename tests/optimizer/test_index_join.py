"""Tests for the IndexNestedLoopJoin extension.

The paper's plan space covers "multiple execution algorithms, index
utilization" — index-lookup joins are the utilization path beyond plain
index scans.  Off by default; these tests turn it on explicitly.
"""

import pytest

from repro.algebra.expressions import ColumnId
from repro.algebra.physical import IndexNestedLoopJoin
from repro.errors import AlgebraError
from repro.executor.executor import PlanExecutor
from repro.optimizer.implementation import ImplementationConfig
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.testing.diff import canonical_rows

JOIN2 = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)

COMPOSITE = (
    "SELECT l.l_orderkey FROM lineitem l, partsupp ps "
    "WHERE ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey"
)


def _optimize(catalog, sql, enable=True, **kwargs):
    options = OptimizerOptions(
        allow_cross_products=False,
        implementation=ImplementationConfig(enable_index_nl_join=enable),
        **kwargs,
    )
    return Optimizer(catalog, options).optimize_sql(sql)


def _inlj_exprs(memo):
    return [
        e
        for g in memo.groups
        for e in g.physical_exprs()
        if isinstance(e.op, IndexNestedLoopJoin)
    ]


class TestGeneration:
    def test_generated_for_indexed_inner(self, catalog):
        result = _optimize(catalog, JOIN2)
        joins = _inlj_exprs(result.memo)
        # Both orientations have an indexed inner: region_pk for r inner,
        # nation_regionkey (and nation_pk? only leading col counts) for n.
        assert joins
        inner_tables = {e.op.inner_table for e in joins}
        assert "region" in inner_tables

    def test_disabled_by_default(self, catalog):
        result = _optimize(catalog, JOIN2, enable=False)
        assert not _inlj_exprs(result.memo)

    def test_arity_one_child_is_outer(self, catalog):
        result = _optimize(catalog, JOIN2)
        for expr in _inlj_exprs(result.memo):
            assert len(expr.children) == 1
            outer_group = result.memo.group(expr.children[0])
            assert expr.op.inner_alias not in outer_group.relations

    def test_only_leading_prefix_matches(self, catalog):
        result = _optimize(catalog, COMPOSITE)
        by_index = {e.op.index_name: e.op for e in _inlj_exprs(result.memo)}
        # partsupp_pk(ps_partkey, ps_suppkey): both equi columns match.
        pk_join = by_index.get("partsupp_pk")
        assert pk_join is not None
        assert len(pk_join.outer_keys) == 2
        assert pk_join.residual is None
        # partsupp_suppkey(ps_suppkey): one key matches; the partkey
        # equality stays as residual.
        sk_join = by_index.get("partsupp_suppkey")
        assert sk_join is not None
        assert len(sk_join.outer_keys) == 1
        assert sk_join.residual is not None

    def test_inner_predicate_carried(self, catalog):
        sql = (
            "SELECT n.n_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA'"
        )
        result = _optimize(catalog, sql)
        region_joins = [
            e.op for e in _inlj_exprs(result.memo) if e.op.inner_table == "region"
        ]
        assert region_joins
        assert all(j.inner_predicate is not None for j in region_joins)

    def test_space_grows(self, catalog):
        without = PlanSpace.from_result(_optimize(catalog, JOIN2, enable=False))
        with_inlj = PlanSpace.from_result(_optimize(catalog, JOIN2, enable=True))
        assert with_inlj.count() > without.count()


class TestOperatorValidation:
    def test_key_lists_must_match(self):
        with pytest.raises(AlgebraError):
            IndexNestedLoopJoin(
                inner_table="t",
                inner_alias="t",
                index_name="i",
                outer_keys=(ColumnId("u", "a"),),
                inner_keys=(),
            )

    def test_render_mentions_index(self):
        join = IndexNestedLoopJoin(
            inner_table="region",
            inner_alias="r",
            index_name="region_pk",
            outer_keys=(ColumnId("n", "n_regionkey"),),
            inner_keys=(ColumnId("r", "r_regionkey"),),
        )
        assert "region_pk" in join.render()
        assert join.arity == 1


class TestExecution:
    def test_index_join_plans_result_equivalent(self, catalog, micro_db):
        result = _optimize(catalog, JOIN2)
        space = PlanSpace.from_result(result)
        executor = PlanExecutor(micro_db)
        reference = canonical_rows(executor.execute(result.best_plan).rows)
        checked_inlj = 0
        for _, plan in space.enumerate(stop=min(space.count(), 600)):
            rows = canonical_rows(executor.execute(plan).rows)
            assert rows == reference
            if any(
                isinstance(n.op, IndexNestedLoopJoin) for n in plan.iter_nodes()
            ):
                checked_inlj += 1
        assert checked_inlj > 0  # the sweep actually exercised index joins

    def test_composite_key_execution(self, catalog, micro_db):
        result = _optimize(catalog, COMPOSITE)
        space = PlanSpace.from_result(result)
        executor = PlanExecutor(micro_db)
        reference = canonical_rows(executor.execute(result.best_plan).rows)
        for plan in space.sample(40, seed=3):
            assert canonical_rows(executor.execute(plan).rows) == reference

    def test_validator_passes_with_index_joins(self, catalog, micro_db):
        from repro.testing.harness import PlanValidator

        options = OptimizerOptions(
            allow_cross_products=False,
            implementation=ImplementationConfig(enable_index_nl_join=True),
        )
        validator = PlanValidator(micro_db, options)
        report = validator.validate_sql(JOIN2, max_exhaustive=0, sample_size=80)
        assert report.all_equal, report.render()


class TestCosting:
    def test_cheap_for_small_outer(self, catalog):
        from repro.optimizer.cost import CostModel

        model = CostModel(catalog)
        join = IndexNestedLoopJoin(
            inner_table="lineitem",
            inner_alias="l",
            index_name="lineitem_pk",
            outer_keys=(ColumnId("o", "o_orderkey"),),
            inner_keys=(ColumnId("l", "l_orderkey"),),
        )
        from repro.algebra.physical import NestedLoopJoin

        seek_cost = model.operator_cost(join, 100.0, (25.0,))
        scan_cost = model.operator_cost(
            NestedLoopJoin(None), 100.0, (25.0, 6_001_215.0)
        )
        assert seek_cost < scan_cost / 1000

    def test_expensive_for_huge_outer(self, catalog):
        from repro.optimizer.cost import CostModel

        model = CostModel(catalog)
        join = IndexNestedLoopJoin(
            inner_table="region",
            inner_alias="r",
            index_name="region_pk",
            outer_keys=(ColumnId("n", "n_regionkey"),),
            inner_keys=(ColumnId("r", "r_regionkey"),),
        )
        small = model.operator_cost(join, 10.0, (10.0,))
        huge = model.operator_cost(join, 10.0, (10**7,))
        assert huge > small * 10**5
