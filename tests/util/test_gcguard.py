"""The ref-counted GC pause: nesting, concurrency, and restoration."""

import gc
import threading

import pytest

from repro.util.gcguard import pause_depth, paused_gc


@pytest.fixture(autouse=True)
def _gc_enabled():
    """Every test starts (and must end) with the collector enabled."""
    gc.enable()
    yield
    gc.enable()


class TestPausedGC:
    def test_pauses_and_restores(self):
        assert gc.isenabled()
        with paused_gc():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_nested_inner_exit_does_not_reenable(self):
        # The historical bug class: a nested optimization (feedback
        # baseline re-optimization, iterate_plans) re-enabling GC under
        # its still-running parent.
        with paused_gc():
            with paused_gc():
                assert not gc.isenabled()
                assert pause_depth() == 2
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_respects_caller_disabled_collector(self):
        gc.disable()
        with paused_gc():
            assert not gc.isenabled()
        # The guard must not enable a collector the caller had disabled.
        assert not gc.isenabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with paused_gc():
                raise RuntimeError("boom")
        assert gc.isenabled()

    def test_overlapping_threads_keep_pause_until_last_exit(self):
        # t1 enters, t2 enters, t1 exits: the collector must stay
        # paused until t2 — the last holder — exits.
        t1_in = threading.Event()
        t2_in = threading.Event()
        t1_out = threading.Event()
        observed = {}

        def first():
            with paused_gc():
                t1_in.set()
                t2_in.wait(5)
            observed["after_t1_exit"] = gc.isenabled()
            t1_out.set()

        def second():
            t1_in.wait(5)
            with paused_gc():
                t2_in.set()
                t1_out.wait(5)
                observed["while_t2_holds"] = gc.isenabled()

        threads = [threading.Thread(target=first), threading.Thread(target=second)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert observed == {"after_t1_exit": False, "while_t2_holds": False}
        assert gc.isenabled()
        assert pause_depth() == 0


class TestOptimizerIntegration:
    def test_concurrent_optimizations_restore_gc(self):
        from repro.optimizer.optimizer import Optimizer
        from repro.workloads.synthetic import chain_query

        workload = chain_query(4, rows=5, seed=0)
        errors = []
        barrier = threading.Barrier(2)

        def run():
            try:
                barrier.wait(5)
                Optimizer(workload.catalog).optimize_sql(workload.sql)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert gc.isenabled()
        assert pause_depth() == 0
