"""Tests for deterministic RNG helpers."""

import random

from repro.util.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_none_defaults_to_fixed_seed(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_passthrough_of_random_instance(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    def test_tuple_seed_accepted(self):
        a = make_rng((1, "x"))
        b = make_rng((1, "x"))
        assert a.random() == b.random()

    def test_tuple_seed_distinguishes_parts(self):
        assert make_rng((1, "x")).random() != make_rng((1, "y")).random()

    def test_string_seed(self):
        assert make_rng("lineitem").random() == make_rng("lineitem").random()


class TestSpawnRng:
    def test_streams_are_independent(self):
        root = make_rng(0)
        a = spawn_rng(root, "a")
        root2 = make_rng(0)
        root2.getrandbits(64)  # same consumption pattern
        b_values = [spawn_rng(make_rng(0), "b").random() for _ in range(1)]
        assert a.random() != b_values[0]

    def test_spawn_deterministic(self):
        a = spawn_rng(make_rng(3), "stream")
        b = spawn_rng(make_rng(3), "stream")
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]

    def test_spawn_advances_parent(self):
        root = make_rng(5)
        first = spawn_rng(root, "s")
        second = spawn_rng(root, "s")
        # Same stream name but parent state advanced: different children.
        assert first.random() != second.random()
