"""Tests for histogram binning and rendering."""

import pytest

from repro.util.histogram import AsciiHistogram, histogram_bins


class TestHistogramBins:
    def test_uniform_values_spread(self):
        counts, edges = histogram_bins([0.5, 1.5, 2.5, 3.5], bins=4, lo=0, hi=4)
        assert counts == [1, 1, 1, 1]
        assert edges[0] == 0 and edges[-1] == 4

    def test_total_preserved(self):
        values = [float(i) for i in range(100)]
        counts, _ = histogram_bins(values, bins=7)
        assert sum(counts) == 100

    def test_out_of_range_clamped(self):
        counts, _ = histogram_bins([-5.0, 50.0], bins=2, lo=0.0, hi=10.0)
        assert counts == [1, 1]

    def test_empty_values(self):
        counts, edges = histogram_bins([], bins=3)
        assert counts == [0, 0, 0]
        assert len(edges) == 4

    def test_degenerate_range(self):
        counts, edges = histogram_bins([2.0, 2.0], bins=2)
        assert sum(counts) == 2
        assert edges[-1] > edges[0]

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            histogram_bins([1.0], bins=0)

    def test_max_value_lands_in_last_bin(self):
        counts, _ = histogram_bins([0.0, 10.0], bins=5, lo=0.0, hi=10.0)
        assert counts[0] == 1 and counts[-1] == 1


class TestAsciiHistogram:
    def test_render_contains_bars_and_counts(self):
        hist = AsciiHistogram.from_values([1.0, 1.1, 1.2, 5.0], bins=4, title="t")
        text = hist.render()
        assert text.splitlines()[0] == "t"
        assert "#" in text

    def test_empty_histogram(self):
        hist = AsciiHistogram(counts=[0, 0], edges=[0.0, 1.0, 2.0])
        assert "(empty histogram)" in hist.render()

    def test_peak_bar_has_full_width(self):
        hist = AsciiHistogram.from_values(
            [1.0] * 50 + [2.0], bins=2, width=20, lo=0.5, hi=2.5
        )
        assert "#" * 20 in hist.render()
