"""Tests for the text-table renderer."""

import pytest

from repro.util.text import TextTable, format_count, format_float


class TestFormatting:
    def test_format_count_thousands(self):
        assert format_count(4432829940185) == "4,432,829,940,185"

    def test_format_count_zero(self):
        assert format_count(0) == "0"

    def test_format_float_plain(self):
        assert format_float(17098.4, 1) == "17,098.4"

    def test_format_float_scientific_large(self):
        assert "e" in format_float(3.2e12)

    def test_format_float_scientific_small(self):
        assert "e" in format_float(0.00001)

    def test_format_float_zero(self):
        assert format_float(0.0) == "0"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["Query", "#Plans"])
        table.add_row(["Q5", "68,572,049"])
        table.add_row(["Q8", "20,112,521,035"])
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("Query")
        assert "Q5" in lines[2]
        # Right-aligned numeric column: shorter number is padded left.
        assert lines[2].endswith("68,572,049")

    def test_row_length_validation(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_align_length_validation(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"], align=["<"])

    def test_separator_line(self):
        table = TextTable(["col"])
        table.add_row(["x"])
        assert set(table.render().splitlines()[1]) == {"-"}
