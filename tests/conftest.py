"""Shared fixtures.

Heavy objects (the SF=1 catalog, the micro TPC-H database, optimized
results for the benchmark queries) are session-scoped: they are immutable
from the tests' perspective and expensive enough to be worth sharing.
"""

from __future__ import annotations

import pytest

from repro.catalog.tpch import tpch_catalog
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.storage.datagen import generate_tpch
from repro.workloads.paper_example import build_paper_example
from repro.workloads.tpch_queries import tpch_query


@pytest.fixture(scope="session")
def catalog():
    """The TPC-H scale-factor-1 catalog (statistics only, no data)."""
    return tpch_catalog(scale_factor=1.0)


@pytest.fixture(scope="session")
def micro_db():
    """The deterministic micro TPC-H database with SF=1 statistics."""
    return generate_tpch(seed=0)


@pytest.fixture(scope="session")
def paper_example():
    """The reconstructed Figure 2/3 memo."""
    return build_paper_example()


@pytest.fixture(scope="session")
def q3_result(catalog):
    """TPC-H Q3 optimized without cross products (small, fast space)."""
    options = OptimizerOptions(allow_cross_products=False)
    return Optimizer(catalog, options).optimize_sql(tpch_query("Q3").sql)


@pytest.fixture(scope="session")
def q3_space(q3_result):
    return PlanSpace.from_result(q3_result)


@pytest.fixture(scope="session")
def q5_result(catalog):
    """TPC-H Q5 optimized without cross products."""
    options = OptimizerOptions(allow_cross_products=False)
    return Optimizer(catalog, options).optimize_sql(tpch_query("Q5").sql)


@pytest.fixture(scope="session")
def q5_space(q5_result):
    return PlanSpace.from_result(q5_result)
