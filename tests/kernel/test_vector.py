"""Unit tests for the shared vector-kernel primitives.

Each vectorized primitive is checked against a brute-force reference on
seeded random inputs — the same exactness argument the columnar memo and
the best-plan DP rely on: no hashing shortcuts survive unverified, and
every lexicographic trick must agree with plain Python byte comparison.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.kernel import active_numpy, selected_backend
from repro.kernel.vector import (
    byte_words,
    decode_bit_rows,
    first_occurrence_order,
    intern_rows,
    lex_rank_rows,
    lex_unique_rows,
    prefix_interval_ends,
    prefix_intervals,
    range_min_pairs,
    union_words_by_mask,
)


def _random_padded_rows(rng, n, width, alphabet=4):
    """0-padded rows: random prefix of 1..width bytes from a small
    alphabet (small so duplicates and shared prefixes are common)."""
    mat = np.zeros((n, width), np.uint8)
    lengths = rng.integers(1, width + 1, size=n)
    for i in range(n):
        mat[i, : lengths[i]] = rng.integers(1, 1 + alphabet, size=lengths[i])
    return mat, lengths.astype(np.int64)


class TestLexPrimitives:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_byte_words_order_equals_bytes_order(self, seed):
        rng = np.random.default_rng(seed)
        mat, _ = _random_padded_rows(rng, 200, 11)
        words = byte_words(np, mat)
        by_words = sorted(range(len(mat)), key=lambda i: tuple(words[i]))
        by_bytes = sorted(range(len(mat)), key=lambda i: mat[i].tobytes())
        assert [mat[i].tobytes() for i in by_words] == [
            mat[i].tobytes() for i in by_bytes
        ]

    @pytest.mark.parametrize("seed", [0, 3])
    def test_lex_rank_rows_matches_sorted_bytes(self, seed):
        rng = np.random.default_rng(seed)
        mat, _ = _random_padded_rows(rng, 300, 9)
        order, rank = lex_rank_rows(np, mat)
        rows = [mat[i].tobytes() for i in range(len(mat))]
        assert [rows[i] for i in order] == sorted(rows)
        assert (rank[order] == np.arange(len(mat))).all()

    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_lex_unique_rows_matches_intern_plus_rank(self, seed):
        """The single-lexsort dedup+rank is the fused form of interning
        to distinct rows and ranking those — same distinct set, same
        per-row rank."""
        rng = np.random.default_rng(seed)
        mat, _ = _random_padded_rows(rng, 400, 10)
        distinct, rank = lex_unique_rows(np, mat)

        ref_rows = sorted({mat[i].tobytes() for i in range(len(mat))})
        assert [r.tobytes() for r in distinct] == ref_rows
        for i in range(len(mat)):
            assert distinct[rank[i]].tobytes() == mat[i].tobytes()

        ids, rep = intern_rows(np, byte_words(np, mat))
        _order, iref_rank = lex_rank_rows(np, mat[rep])
        assert (iref_rank[ids] == rank).all()

    def test_lex_unique_rows_empty(self):
        mat = np.zeros((0, 4), np.uint8)
        distinct, rank = lex_unique_rows(np, mat)
        assert len(distinct) == 0 and len(rank) == 0

    def test_intern_rows_exact_on_duplicates(self):
        rng = np.random.default_rng(7)
        base, _ = _random_padded_rows(rng, 50, 8)
        mat = base[rng.integers(0, 50, size=500)]
        ids, rep = intern_rows(np, byte_words(np, mat))
        for i in range(len(mat)):
            assert (mat[rep[ids[i]]] == mat[i]).all()


def _ref_prefix_intervals(mat, lengths):
    """Brute force: hi_rank[k] = first rank whose row does not extend
    row k's prefix."""
    K = len(mat)
    rows = [mat[i].tobytes() for i in range(K)]
    out = []
    for k in range(K):
        prefix = rows[k][: lengths[k]]
        hi = K
        for j in range(k + 1, K):
            if not rows[j].startswith(prefix):
                hi = j
                break
        out.append(hi)
    return np.asarray(out, np.int64)


class TestPrefixIntervals:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("width", [3, 8, 13])
    def test_full_sweep_matches_reference(self, seed, width):
        rng = np.random.default_rng(seed)
        mat, lengths = _random_padded_rows(rng, 150, width, alphabet=3)
        order, _ = lex_rank_rows(np, mat)
        smat, slen = mat[order], lengths[order]
        got = prefix_intervals(np, smat, slen, width)
        assert (got == _ref_prefix_intervals(smat, slen)).all()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("width", [3, 8, 13])
    def test_selective_ends_match_full_sweep(self, seed, width):
        """prefix_interval_ends(ranks) must equal
        prefix_intervals()[ranks] for any rank multiset — the DP's
        density-cutover dispatch assumes the two are interchangeable."""
        rng = np.random.default_rng(seed)
        mat, lengths = _random_padded_rows(rng, 200, width, alphabet=3)
        order, _ = lex_rank_rows(np, mat)
        smat, slen = mat[order], lengths[order]
        full = prefix_intervals(np, smat, slen, width)
        ranks = rng.integers(0, len(smat), size=70).astype(np.int64)
        got = prefix_interval_ends(np, smat, slen, width, ranks)
        assert (got == full[ranks]).all()

    def test_selective_ends_empty_ranks(self):
        mat = np.zeros((5, 4), np.uint8)
        mat[:, 0] = np.arange(1, 6)
        got = prefix_interval_ends(
            np, mat, np.ones(5, np.int64), 4, np.zeros(0, np.int64)
        )
        assert len(got) == 0


class TestDecodeBitRows:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("nbits", [1, 7, 24])
    def test_matches_bit_walk(self, seed, nbits):
        rng = np.random.default_rng(seed)
        n = 300
        masks = rng.integers(0, 1 << nbits, size=n, dtype=np.uint64)
        masks[rng.integers(0, n, size=5)] = 0  # include empty rows
        bit_rows = masks.reshape(-1, 1)
        left_lut = rng.integers(1, 200, size=nbits).astype(np.uint8)
        right_lut = rng.integers(1, 200, size=nbits).astype(np.uint8)
        lefts, rights, _maxlens = decode_bit_rows(
            np, bit_rows, nbits, left_lut, right_lut, chunk_size=64
        )
        li = 0
        for chunk_l, chunk_r in zip(lefts, rights):
            for row_l, row_r in zip(chunk_l, chunk_r):
                mask = int(masks[li])
                want_l = bytes(
                    int(left_lut[p]) for p in range(nbits) if mask >> p & 1
                )
                want_r = bytes(
                    int(right_lut[p]) for p in range(nbits) if mask >> p & 1
                )
                assert row_l.tobytes().rstrip(b"\x00") == want_l
                assert row_r.tobytes().rstrip(b"\x00") == want_r
                li += 1
        assert li == n

    def test_on_chunk_called_per_chunk(self):
        calls = []
        bit_rows = np.ones((10, 1), np.uint64)
        lut = np.ones(1, np.uint8)
        decode_bit_rows(
            np, bit_rows, 1, lut, lut, chunk_size=3,
            on_chunk=lambda: calls.append(1),
        )
        assert len(calls) == 4


class TestSegmentedPrimitives:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_range_min_pairs_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(500)
        lo = rng.integers(0, 500, size=80).astype(np.int64)
        span = rng.integers(0, 30, size=80)
        hi = np.minimum(lo + span, 500).astype(np.int64)
        got = range_min_pairs(np, values, lo, hi)
        for k in range(80):
            want = (
                values[lo[k] : hi[k]].min() if lo[k] < hi[k] else float("inf")
            )
            assert got[k] == want

    def test_range_min_pairs_all_empty(self):
        got = range_min_pairs(
            np,
            np.array([1.0, 2.0]),
            np.array([1, 2], np.int64),
            np.array([1, 2], np.int64),
        )
        assert np.isinf(got).all()

    def test_first_occurrence_order(self):
        codes = np.array([5, 3, 5, 9, 3, 1], np.int64)
        uniq, first = first_occurrence_order(np, codes)
        assert uniq.tolist() == [5, 3, 9, 1]
        assert first.tolist() == [0, 1, 3, 5]

    @pytest.mark.parametrize("seed", [0, 2])
    def test_union_words_by_mask_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        nbits, W = 10, 2
        bit_words = rng.integers(
            0, 1 << 63, size=(nbits, W), dtype=np.uint64
        )
        masks = rng.integers(0, 1 << nbits, size=40, dtype=np.int64)
        got = union_words_by_mask(np, bit_words, masks, nbits)
        for i, mask in enumerate(masks):
            want = np.zeros(W, np.uint64)
            for b in range(nbits):
                if int(mask) >> b & 1:
                    want |= bit_words[b]
            assert (got[i] == want).all()


class TestBackendSelection:
    def test_default_is_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)
        assert selected_backend() == "numpy"
        assert active_numpy() is np

    def test_kill_switch_wins_over_kernel_choice(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert selected_backend() == "pure"
        assert active_numpy() is None

    def test_pure_choice(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        assert selected_backend() == "pure"

    def test_native_degrades_when_unavailable(self, monkeypatch):
        from repro.kernel import native_available

        monkeypatch.setenv("REPRO_KERNEL", "native")
        if native_available():  # pragma: no cover - numba not in image
            assert selected_backend() == "native"
        else:
            assert selected_backend() == "numpy"

    def test_unknown_value_treated_as_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo-mode")
        assert selected_backend() == "numpy"
