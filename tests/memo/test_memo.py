"""Tests for the MEMO structure."""

import pytest

from repro.algebra.expressions import ColumnId, ColumnRef, Comparison, CompOp
from repro.algebra.logical import LogicalGet, LogicalJoin
from repro.algebra.physical import TableScan
from repro.errors import MemoError
from repro.memo.group import GroupExpr
from repro.memo.memo import Memo

PRED = Comparison(
    CompOp.EQ, ColumnRef(ColumnId("a", "x")), ColumnRef(ColumnId("b", "x"))
)


def _seed():
    memo = Memo()
    ga = memo.get_or_create_group(("rels", frozenset(["a"])), frozenset(["a"]))
    gb = memo.get_or_create_group(("rels", frozenset(["b"])), frozenset(["b"]))
    memo.insert(LogicalGet("t", "a"), (), ga)
    memo.insert(LogicalGet("t", "b"), (), gb)
    return memo, ga, gb


class TestGroups:
    def test_group_reuse_by_key(self):
        memo, ga, _ = _seed()
        again = memo.get_or_create_group(("rels", frozenset(["a"])), frozenset(["a"]))
        assert again is ga

    def test_key_collision_with_different_relations(self):
        memo, _, _ = _seed()
        with pytest.raises(MemoError):
            memo.get_or_create_group(("rels", frozenset(["a"])), frozenset(["zz"]))

    def test_group_for_relations(self):
        memo, ga, _ = _seed()
        assert memo.group_for_relations(frozenset(["a"])) is ga
        assert memo.group_for_relations(frozenset(["zz"])) is None

    def test_unknown_group_raises(self):
        memo, _, _ = _seed()
        with pytest.raises(MemoError):
            memo.group(99)

    def test_root_group(self):
        memo, ga, _ = _seed()
        memo.set_root(ga.gid)
        assert memo.root_group() is ga

    def test_root_unset_raises(self):
        memo, _, _ = _seed()
        with pytest.raises(MemoError):
            memo.root_group()


class TestInsert:
    def test_duplicate_detection(self):
        memo, ga, _ = _seed()
        assert memo.insert(LogicalGet("t", "a"), (), ga) is None

    def test_local_ids_sequential(self):
        memo, ga, _ = _seed()
        expr = memo.insert(TableScan("t", "a"), (), ga)
        assert expr.local_id == 2
        assert expr.id_str == f"{ga.gid}.2"

    def test_duplicate_across_groups_rejected(self):
        memo, ga, gb = _seed()
        rels = frozenset(["a", "b"])
        gj = memo.get_or_create_group(("rels", rels), rels)
        memo.insert(LogicalJoin(PRED), (ga.gid, gb.gid), gj)
        other = memo.get_or_create_group(("other",), rels)
        with pytest.raises(MemoError):
            memo.insert(LogicalJoin(PRED), (ga.gid, gb.gid), other)

    def test_unknown_child_rejected(self):
        memo, ga, gb = _seed()
        rels = frozenset(["a", "b"])
        gj = memo.get_or_create_group(("rels", rels), rels)
        with pytest.raises(MemoError):
            memo.insert(LogicalJoin(PRED), (ga.gid, 42), gj)

    def test_arity_mismatch_rejected(self):
        memo, ga, _ = _seed()
        with pytest.raises(MemoError):
            memo.insert(LogicalJoin(PRED), (ga.gid,), ga)


class TestInspection:
    def test_expression_counts(self):
        memo, ga, gb = _seed()
        memo.insert(TableScan("t", "a"), (), ga)
        assert memo.expression_count() == 3
        assert memo.logical_expression_count() == 2
        assert memo.physical_expression_count() == 1

    def test_group_partition_of_exprs(self):
        memo, ga, _ = _seed()
        memo.insert(TableScan("t", "a"), (), ga)
        assert len(ga.logical_exprs()) == 1
        assert len(ga.physical_exprs()) == 1

    def test_expr_lookup(self):
        memo, ga, _ = _seed()
        assert memo.expr(ga.gid, 1).op.name == "LogicalGet"
        with pytest.raises(MemoError):
            ga.expr(99)

    def test_render_mentions_groups(self):
        memo, ga, _ = _seed()
        memo.set_root(ga.gid)
        text = memo.render()
        assert "Group 0" in text and "(root)" in text


class TestGroupExpr:
    def test_fingerprint_stability(self):
        memo, ga, _ = _seed()
        expr = memo.insert(TableScan("t", "a"), (), ga)
        assert expr.fingerprint() == (TableScan("t", "a").key(), ())

    def test_is_physical(self):
        memo, ga, _ = _seed()
        expr = memo.insert(TableScan("t", "a"), (), ga)
        assert expr.is_physical and not expr.is_enforcer

    def test_bad_arity_in_constructor(self):
        with pytest.raises(MemoError):
            GroupExpr(op=TableScan("t", "a"), children=(1,), group_id=0, local_id=1)
