"""Kernel-backend equivalence of the columnar physical store.

The pure and numpy emission paths may intern kids in different orders
(the vectorized build preloads a lex-sorted kid universe; the scalar
build interns first-occurrence), so raw kid ids are *not* comparable
across backends.  What must agree is everything observable: the row
structure (tag/gid/children), the kid *byte strings* each row's payload
denotes, the requirement stream under the same mapping — and, through
the facade, the full memo render.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.memo.columnar import TAG_HASH, TAG_INLJ, TAG_MERGE, TAG_NLJ
from repro.optimizer.optimizer import OptimizerOptions
from repro.workloads.synthetic import clique_query, cycle_query, star_query

BACKENDS = ["pure", "numpy"]

WORKLOADS = {
    "star6": lambda: star_query(6, rows=5, seed=0),
    "clique5": lambda: clique_query(5, rows=5, seed=0),
    "cycle6": lambda: cycle_query(6, rows=5, seed=0),
}

_JOIN_TAGS = (TAG_NLJ, TAG_HASH, TAG_MERGE)


def _store_fingerprint(result):
    """Backend-independent view of a columnar store: kid payloads are
    resolved to their byte strings."""
    store = result.memo.columnar
    assert store is not None
    kid_bytes = store._keys.kid_bytes
    rows = []
    for row in range(store.row_count):
        tag = store.tag[row]
        a, b = store.a[row], store.b[row]
        if tag in _JOIN_TAGS:
            # a/b are the merge-key kids of the cut (-1 on cross joins).
            a = kid_bytes[a] if a >= 0 else None
            b = kid_bytes[b] if b >= 0 else None
        elif tag != TAG_INLJ and b >= 0:
            # scans/unaries: b is the delivered-order kid (-1 if none);
            # INLJ's b is an ordinal, comparable raw.
            b = kid_bytes[b]
        rows.append(
            (tag, store.gid[row], store.c0[row], store.c1[row], a, b)
        )
    reqs = [(gid, kid_bytes[kid]) for gid, kid in store.requirements]
    return {
        "rows": rows,
        "reqs": reqs,
        "group_start": list(store.group_start),
        "logical_counts": list(store.logical_counts),
    }


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", request.param)
    return request.param


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_store_identical_across_backends(name, monkeypatch):
    workload = WORKLOADS[name]()
    prints = {}
    results = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_KERNEL", backend)
        result = Session(
            workload.database, options=OptimizerOptions(columnar=True)
        ).optimize(workload.sql)
        assert result.kernel == backend
        prints[backend] = _store_fingerprint(result)
        results[backend] = result
    assert prints["pure"] == prints["numpy"]
    assert results["pure"].best_cost == results["numpy"].best_cost
    assert (
        results["pure"].memo.render() == results["numpy"].memo.render()
    )


def test_backend_reported_on_result(backend):
    workload = WORKLOADS["star6"]()
    result = Session(
        workload.database, options=OptimizerOptions(columnar=True)
    ).optimize(workload.sql)
    assert result.kernel == backend
    assert result.timings["kernel"] == backend
