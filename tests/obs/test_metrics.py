"""The metrics registry: checkpoint-fed counters, session lifecycle,
clean resets, Prometheus rendering, and the metrics/fault-site lockstep."""

import pytest

from repro.api import Session
from repro.obs import Metrics
from repro.optimizer.optimizer import OptimizerOptions
from repro.resilience.budget import BudgetScope
from repro.resilience.faults import FAULT_SITES
from repro.workloads.tpch_queries import tpch_query

Q3 = tpch_query("Q3").sql


class TestRegistry:
    def test_counters_gauges_histograms(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 2)
        m.set_gauge("g", 7)
        m.observe("h", 3)
        m.observe("h", 1)
        assert m.counter("a") == 3
        assert m.gauge("g") == 7
        assert m.histogram("h") == {"count": 2, "sum": 4, "min": 1, "max": 3}
        assert m.counter("missing") == 0
        assert m.gauge("missing") is None
        assert m.histogram("missing") is None

    def test_bool_and_reset(self):
        m = Metrics()
        assert not m
        m.inc("a")
        assert m
        m.reset()
        assert not m
        assert m.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_render_mentions_every_series(self):
        m = Metrics()
        assert m.render() == "(no metrics recorded)"
        m.inc("polls", 2)
        m.set_gauge("size", 5)
        m.observe("batch", 10)
        text = m.render()
        assert "polls = 2" in text
        assert "size = 5" in text
        assert "batch: count=1" in text

    def test_render_prometheus_exposition(self):
        m = Metrics()
        assert m.render_prometheus() == ""
        m.inc("explore.batch.polls", 3)
        m.set_gauge("memo.groups", 12)
        m.observe("batch.size", 64)
        m.observe("batch.size", 16)
        text = m.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_explore_batch_polls_total counter" in text
        assert "repro_explore_batch_polls_total 3" in text
        assert "# TYPE repro_memo_groups gauge" in text
        assert "repro_memo_groups 12" in text
        assert "# TYPE repro_batch_size summary" in text
        assert "repro_batch_size_count 2" in text
        assert "repro_batch_size_sum 80" in text
        assert "repro_batch_size_min 16" in text
        assert "repro_batch_size_max 64" in text
        # Every non-comment line is "<name> <value>" — parseable exposition.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.split(" ")
            assert name.startswith("repro_")
            float(value)

    def test_render_prometheus_custom_prefix(self):
        m = Metrics()
        m.inc("a.b", 1)
        assert "opt_a_b_total 1" in m.render_prometheus(prefix="opt")


class TestCheckpointObserver:
    def test_scope_feeds_observer_before_budget_checks(self):
        m = Metrics()
        scope = BudgetScope(observer=m)
        scope.checkpoint("explore.batch", units=4)
        scope.checkpoint("explore.batch")
        assert m.counter("checkpoint.polls") == 2
        assert m.counter("explore.batch.polls") == 2
        assert m.counter("explore.batch.units") == 4

    def test_traced_optimize_counts_hot_loop_sites(self):
        session = Session.tpch(seed=0)
        session.optimize(Q3, trace=True)
        m = session.metrics
        assert m.counter("checkpoint.polls") > 0
        # The exact pipeline's loops all report through their sites.
        assert m.counter("explore.batch.polls") > 0
        assert m.counter("implement.columnar.polls") > 0
        assert m.counter("bestplan.layer.polls") > 0
        # Units add up to the memo the run actually built.
        assert m.gauge("memo.groups") > 0
        assert m.gauge("memo.logical_exprs") > 0
        assert m.gauge("memo.physical_exprs") > 0

    def test_sampled_optimize_records_draws(self):
        session = Session.tpch(seed=0)
        result = session.optimize(Q3, method="sampled", trace=True, samples=64)
        assert session.metrics.counter("sampler.draws") == result.samples
        assert session.metrics.counter("implicit.count.polls") > 0


class TestFaultSiteLockstep:
    def test_every_fault_site_reports_metrics(self):
        """The metrics counter-name site set equals ``FAULT_SITES``.

        Both registries ride the same ``BudgetScope.checkpoint`` /
        ``fault_point`` instrumentation, so a hot loop visible to fault
        injection must be visible to metrics and vice versa.  A sweep
        covering every engine — exact columnar, exact object, sampled,
        implicit counting, instrumented execution — must poll exactly
        the sites the fault registry names; a mismatch means one layer
        gained an instrumentation point the other lost.
        """
        observed: set[str] = set()

        def harvest(metrics: Metrics) -> None:
            for name, value in metrics.snapshot()["counters"].items():
                if name.endswith(".polls") and value > 0:
                    site = name[: -len(".polls")]
                    if site != "checkpoint":
                        observed.add(site)

        # Exact, columnar engine (explore.batch / implement.columnar /
        # bestplan.layer) plus instrumented execution (execute.operator).
        session = Session.tpch(seed=0)
        session.optimize(Q3, trace=True)
        session.execute_detailed(Q3, analyze=True)
        harvest(session.metrics)

        # Exact, object engine (explore.object / implement.object /
        # bestplan.object).
        object_session = Session.tpch(
            seed=0,
            options=OptimizerOptions(
                columnar=False, batched_exploration=False
            ),
        )
        object_session.optimize(Q3, trace=True)
        harvest(object_session.metrics)

        # Sampled engine (implicit.count / sampled.batch).
        sampled_session = Session.tpch(seed=0)
        sampled_session.optimize(Q3, method="sampled", trace=True, samples=64)
        harvest(sampled_session.metrics)

        assert observed == set(FAULT_SITES)


class TestSessionLifecycle:
    def test_registry_fresh_per_session(self):
        first = Session.tpch(seed=0)
        first.optimize(Q3, trace=True)
        assert first.metrics
        second = Session.tpch(seed=0)
        assert not second.metrics

    def test_reset_between_calls(self):
        session = Session.tpch(seed=0)
        session.optimize(Q3, trace=True)
        before = session.metrics.counter("checkpoint.polls")
        assert before > 0
        session.metrics.reset()
        assert not session.metrics
        session.optimize(Q3, trace=True)
        assert session.metrics.counter("checkpoint.polls") == before

    def test_resilient_records_degradation_trigger(self):
        session = Session.tpch(seed=0)
        with pytest.raises(Exception):
            # An impossible expression ceiling forces the ladder to fire
            # on the exact tier; on_budget="raise" then propagates.
            session.optimize(
                Q3, max_expressions=1, on_budget="raise", trace=True
            )
        session2 = Session.tpch(seed=0)
        result = session2.optimize(Q3, max_expressions=1, trace=True)
        assert result.resilience.degraded
        assert session2.metrics.counter("degrade.triggers") >= 1
