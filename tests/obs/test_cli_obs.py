"""CLI surface of the observability layer: ``repro trace``,
``repro explain --analyze``, ``repro optimize -v``, and the feedback
commands (``accuracy``, ``metrics``, ``optimize --feedback``)."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTraceCommand:
    def test_exact(self):
        code, text = run_cli("trace", "Q3")
        assert code == 0
        assert text.startswith("optimize:")
        for phase in ("parse", "bind", "explore", "implement", "bestplan"):
            assert phase in text
        assert "checkpoint.polls" in text
        assert "memo.groups" in text

    def test_sampled(self):
        code, text = run_cli("trace", "Q3", "--sampled")
        assert code == 0
        for phase in ("space", "sample", "recombine", "assemble"):
            assert phase in text

    def test_deadline_traces_tiers(self):
        code, text = run_cli("trace", "Q3", "--deadline-s", "30")
        assert code == 0
        assert "tier.exact" in text
        assert "served from the" in text

    def test_json_round_trips(self):
        code, text = run_cli("trace", "Q3", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["trace"]["name"] == "optimize"
        names = [c["name"] for c in payload["trace"]["children"]]
        assert "fused" in names
        fused = next(
            c for c in payload["trace"]["children"] if c["name"] == "fused"
        )
        assert "bestplan" in [c["name"] for c in fused["children"]]
        assert payload["metrics"]["counters"]["checkpoint.polls"] > 0

    def test_sampled_rejects_deadline(self):
        code, _ = run_cli("trace", "Q3", "--sampled", "--deadline-s", "1")
        assert code == 2

    def test_chrome_trace_export(self, tmp_path):
        out = tmp_path / "trace.json"
        code, text = run_cli("trace", "Q3", "--chrome-trace", str(out))
        assert code == 0
        assert "wrote" in text and str(out) in text
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert events[0]["name"] == "optimize"
        assert events[0]["ph"] == "X"
        assert {"parse", "bind", "explore", "bestplan"} <= {
            e["name"] for e in events
        }


class TestFeedbackCommands:
    def test_execute_feedback_out_then_optimize_feedback(self, tmp_path):
        path = tmp_path / "ledger.json"
        code, text = run_cli("execute", "Q3", "--feedback-out", str(path))
        assert code == 0
        assert "ledger:" in text and str(path) in text
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["spaces"][0]["entries"]

        code, text = run_cli("optimize", "Q3", "--feedback", str(path), "-v")
        assert code == 0
        assert "feedback:" in text
        assert "plan_changed=" in text and "improvement=" in text

    def test_feedback_out_folds_into_existing(self, tmp_path):
        path = tmp_path / "ledger.json"
        run_cli("execute", "Q3", "--feedback-out", str(path))
        first = json.loads(path.read_text())
        run_cli("execute", "Q3", "--feedback-out", str(path))
        second = json.loads(path.read_text())
        hits = lambda p: p["spaces"][0]["entries"][0]["hits"]
        assert hits(second) == hits(first) + 1

    def test_optimize_feedback_foreign_ledger_reports_no_observations(
        self, tmp_path
    ):
        path = tmp_path / "ledger.json"
        run_cli("execute", "Q3", "--feedback-out", str(path))
        code, text = run_cli("optimize", "Q5", "--feedback", str(path))
        assert code == 0
        assert "no observations" in text

    def test_optimize_feedback_missing_ledger_errors(self, tmp_path):
        code, _ = run_cli(
            "optimize", "Q3", "--feedback", str(tmp_path / "absent.json")
        )
        assert code == 2

    def test_sampled_rejects_feedback(self, tmp_path):
        path = tmp_path / "ledger.json"
        run_cli("execute", "Q3", "--feedback-out", str(path))
        code, _ = run_cli(
            "optimize", "Q3", "--sampled", "--feedback", str(path)
        )
        assert code == 2


class TestAccuracyCommand:
    def test_from_queries(self):
        code, text = run_cli("accuracy", "--queries", "Q3")
        assert code == 0
        assert "observations:" in text
        assert "q-error:" in text

    def test_from_ledger_json(self, tmp_path):
        path = tmp_path / "ledger.json"
        run_cli("execute", "Q3", "--feedback-out", str(path))
        code, text = run_cli(
            "accuracy", "--ledger", str(path), "--worst", "2", "--json"
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["subplans"] > 0
        assert len(payload["worst"]) <= 2
        assert set(payload["summary"]) == {"count", "median", "p90", "max"}


class TestMetricsCommand:
    def test_prometheus_text(self):
        code, text = run_cli("metrics", "Q3")
        assert code == 0
        assert "# TYPE repro_checkpoint_polls_total counter" in text
        assert "repro_memo_groups" in text

    def test_execute_adds_operator_series(self):
        code, text = run_cli("metrics", "Q3", "--execute")
        assert code == 0
        assert "repro_execute_operator_polls_total" in text

    def test_json_snapshot(self):
        code, text = run_cli("metrics", "Q3", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["counters"]["checkpoint.polls"] > 0
        assert payload["gauges"]["memo.groups"] > 0


class TestExplainAnalyze:
    def test_table(self):
        code, text = run_cli("explain", "Q3", "--analyze")
        assert code == 0
        assert "best cost" in text
        assert "actual" in text and "q-err" in text and "TOTAL" in text

    def test_json(self):
        code, text = run_cli("explain", "Q3", "--analyze", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["best_cost"] > 0
        root = payload["stats"]["root"]
        assert root["actual_rows"] >= 0
        assert root["est_rows"] > 0
        assert payload["stats"]["operators"] >= 1

    def test_json_requires_analyze(self):
        code, _ = run_cli("explain", "Q3", "--json")
        assert code == 2

    def test_analyze_excludes_verbose(self):
        code, _ = run_cli("explain", "Q3", "--analyze", "--verbose")
        assert code == 2


class TestOptimizeVerbose:
    def test_exact_verbose(self):
        code, text = run_cli("optimize", "Q3", "-v")
        assert code == 0
        assert "engine: columnar" in text
        assert "kernel: " in text
        assert "pruned_states=" in text
        assert "timings:" in text and "bestplan" in text

    def test_resilient_verbose_lists_attempts(self):
        code, text = run_cli(
            "optimize", "Q3", "-v", "--deadline-s", "30"
        )
        assert code == 0
        assert "resilience: tier=" in text
        assert "exact: served" in text

    def test_sampled_verbose(self):
        code, text = run_cli("optimize", "Q3", "--sampled", "-v")
        assert code == 0
        assert "timings:" in text
