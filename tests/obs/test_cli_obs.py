"""CLI surface of the observability layer: ``repro trace``,
``repro explain --analyze`` and ``repro optimize -v``."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTraceCommand:
    def test_exact(self):
        code, text = run_cli("trace", "Q3")
        assert code == 0
        assert text.startswith("optimize:")
        for phase in ("parse", "bind", "explore", "implement", "bestplan"):
            assert phase in text
        assert "checkpoint.polls" in text
        assert "memo.groups" in text

    def test_sampled(self):
        code, text = run_cli("trace", "Q3", "--sampled")
        assert code == 0
        for phase in ("space", "sample", "recombine", "assemble"):
            assert phase in text

    def test_deadline_traces_tiers(self):
        code, text = run_cli("trace", "Q3", "--deadline-s", "30")
        assert code == 0
        assert "tier.exact" in text
        assert "served from the" in text

    def test_json_round_trips(self):
        code, text = run_cli("trace", "Q3", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["trace"]["name"] == "optimize"
        names = [c["name"] for c in payload["trace"]["children"]]
        assert "bestplan" in names
        assert payload["metrics"]["counters"]["checkpoint.polls"] > 0

    def test_sampled_rejects_deadline(self):
        code, _ = run_cli("trace", "Q3", "--sampled", "--deadline-s", "1")
        assert code == 2


class TestExplainAnalyze:
    def test_table(self):
        code, text = run_cli("explain", "Q3", "--analyze")
        assert code == 0
        assert "best cost" in text
        assert "actual" in text and "q-err" in text and "TOTAL" in text

    def test_json(self):
        code, text = run_cli("explain", "Q3", "--analyze", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["best_cost"] > 0
        root = payload["stats"]["root"]
        assert root["actual_rows"] >= 0
        assert root["est_rows"] > 0
        assert payload["stats"]["operators"] >= 1

    def test_json_requires_analyze(self):
        code, _ = run_cli("explain", "Q3", "--json")
        assert code == 2

    def test_analyze_excludes_verbose(self):
        code, _ = run_cli("explain", "Q3", "--analyze", "--verbose")
        assert code == 2


class TestOptimizeVerbose:
    def test_exact_verbose(self):
        code, text = run_cli("optimize", "Q3", "-v")
        assert code == 0
        assert "engine: columnar" in text
        assert "timings:" in text and "bestplan" in text

    def test_resilient_verbose_lists_attempts(self):
        code, text = run_cli(
            "optimize", "Q3", "-v", "--deadline-s", "30"
        )
        assert code == 0
        assert "resilience: tier=" in text
        assert "exact: served" in text

    def test_sampled_verbose(self):
        code, text = run_cli("optimize", "Q3", "--sampled", "-v")
        assert code == 0
        assert "timings:" in text
