"""The cardinality ledger: feeding, persistence, accuracy reporting,
and feedback-driven re-costing — plus the byte-identical default path."""

import json

import pytest

from repro.api import Session
from repro.errors import PlanSpaceError, ReproError
from repro.obs import (
    CardinalityLedger,
    accuracy_report,
    plan_cost_under_ledger,
    true_cardinality_ledger,
)
from repro.obs.feedback import Q_ERROR_HISTORY, LedgerEntry
from repro.workloads.misestimated import misestimated_tpch
from repro.workloads.tpch_queries import tpch_query

Q3 = tpch_query("Q3").sql
TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)
UNIVERSE = ("a", "b", "c")


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0)


class TestLedgerMechanics:
    def test_observe_creates_then_folds_ewma(self):
        ledger = CardinalityLedger()
        entry = ledger.observe(UNIVERSE, 0b011, actual_rows=100.0, est_rows=400.0)
        assert entry.relations == ("a", "b")
        assert entry.ewma_rows == 100.0  # first observation seeds the EWMA
        assert entry.hits == 1
        assert entry.last_q_error == 4.0
        entry = ledger.observe(UNIVERSE, 0b011, actual_rows=200.0, est_rows=100.0)
        assert entry.hits == 2
        assert entry.ewma_rows == pytest.approx(150.0)  # 0.5 * 200 + 0.5 * 100
        assert entry.observed_rows == 200.0

    def test_q_error_none_when_either_side_zero(self):
        ledger = CardinalityLedger()
        entry = ledger.observe(UNIVERSE, 0b001, actual_rows=0.0, est_rows=50.0)
        assert entry.last_q_error is None
        assert entry.q_errors == []
        entry = ledger.observe(UNIVERSE, 0b001, actual_rows=10.0, est_rows=0.0)
        assert entry.q_errors == []

    def test_q_error_history_capped(self):
        ledger = CardinalityLedger()
        for i in range(Q_ERROR_HISTORY + 10):
            ledger.observe(UNIVERSE, 0b001, actual_rows=1.0, est_rows=2.0 + i)
        (entry,) = [e for _, e in ledger.entries()]
        assert len(entry.q_errors) == Q_ERROR_HISTORY
        assert entry.q_errors[-1] == pytest.approx(2.0 + Q_ERROR_HISTORY + 9)

    def test_binding_lookup_and_floor(self):
        ledger = CardinalityLedger()
        ledger.observe(UNIVERSE, 0b011, actual_rows=0.0, est_rows=10.0)
        binding = ledger.binding(UNIVERSE)
        assert binding.rows_for_mask(0b011) == 1.0  # floored at one row
        assert binding.rows_for_mask(0b111) is None
        assert binding.rows_for(("a", "b")) == 1.0
        # An alias outside the universe can never have been observed.
        assert binding.rows_for(("a", "z")) is None

    def test_universes_isolated(self):
        ledger = CardinalityLedger()
        ledger.observe(("a", "b"), 0b11, actual_rows=5.0, est_rows=5.0)
        ledger.observe(("x", "y"), 0b11, actual_rows=9.0, est_rows=9.0)
        assert len(ledger) == 2
        assert ledger.binding(("a", "b")).rows_for_mask(0b11) == 5.0
        assert ledger.binding(("x", "y")).rows_for_mask(0b11) == 9.0
        assert ledger.universes() == [("a", "b"), ("x", "y")]

    def test_bool_and_render(self):
        ledger = CardinalityLedger()
        assert not ledger
        assert ledger.render() == "(empty ledger)"
        ledger.observe(UNIVERSE, 0b011, actual_rows=3.0, est_rows=30.0)
        assert ledger
        assert "{a, b}" in ledger.render()


class TestPersistence:
    def test_round_trip(self, tmp_path):
        ledger = CardinalityLedger()
        ledger.observe(UNIVERSE, 0b011, actual_rows=100.0, est_rows=400.0)
        ledger.observe(UNIVERSE, 0b011, actual_rows=120.0, est_rows=90.0)
        ledger.observe(("x", "y"), 0b11, actual_rows=7.0, est_rows=7.0)
        path = tmp_path / "ledger.json"
        ledger.save(path)
        restored = CardinalityLedger.load(path)
        assert restored.to_dict() == ledger.to_dict()
        assert restored.binding(UNIVERSE).rows_for_mask(0b011) == pytest.approx(
            ledger.binding(UNIVERSE).rows_for_mask(0b011)
        )

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ReproError, match="version"):
            CardinalityLedger.load(path)

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ReproError, match="no cardinality ledger"):
            CardinalityLedger.load(tmp_path / "absent.json")
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            CardinalityLedger.load(path)


class TestRecordExecution:
    def test_records_rels_groups_only(self, session):
        executed = session.execute_detailed(Q3, analyze=True, feedback=False)
        ledger = CardinalityLedger()
        memo = executed.optimization.memo
        universe = executed.optimization.graph.universe.order
        recorded = ledger.record_execution(
            executed.result.stats, memo, universe
        )
        assert recorded == len(ledger) > 0
        rels_masks = {
            memo.group(n.group_id).key[1]
            for n in executed.result.stats.root.iter_nodes()
            if memo.group(n.group_id).key[0] == "rels"
        }
        assert {e.mask for _, e in ledger.entries()} == rels_masks

    def test_session_autofeeds_on_analyze(self):
        session = Session.tpch(seed=0)
        assert not session.ledger
        session.execute_detailed(TWO_TABLE, analyze=True)
        assert len(session.ledger) == 3  # n, r, and the join

    def test_feedback_false_analyzes_without_feeding(self):
        session = Session.tpch(seed=0)
        executed = session.execute_detailed(
            TWO_TABLE, analyze=True, feedback=False
        )
        assert executed.result.stats is not None
        assert not session.ledger

    def test_execute_feedback_flag(self):
        session = Session.tpch(seed=0)
        session.execute(TWO_TABLE, feedback=True)
        assert len(session.ledger) == 3
        # Plain execute stays bare: no stats, no feeding.
        before = session.ledger.to_dict()
        assert session.execute(TWO_TABLE).stats is None
        assert session.ledger.to_dict() == before


class TestAccuracyReport:
    def test_summary_and_worst(self):
        ledger = CardinalityLedger()
        ledger.observe(UNIVERSE, 0b001, actual_rows=10.0, est_rows=100.0)  # 10x
        ledger.observe(UNIVERSE, 0b010, actual_rows=10.0, est_rows=20.0)  # 2x
        ledger.observe(UNIVERSE, 0b100, actual_rows=0.0, est_rows=5.0)  # None
        report = accuracy_report(ledger, worst_limit=1)
        assert report.subplans == 3
        assert report.observations == 3
        assert report.summary["count"] == 2  # the zero-actual entry is skipped
        assert report.summary["max"] == 10.0
        assert len(report.worst) == 1
        assert report.worst[0]["relations"] == ["a"]
        text = report.render()
        assert "q-error" in text and "10.00x" in text

    def test_empty_ledger(self):
        report = accuracy_report(CardinalityLedger())
        assert report.summary == {
            "count": 0,
            "median": None,
            "p90": None,
            "max": None,
        }
        assert "no measurable estimates" in report.render()
        assert report.to_dict()["worst"] == []

    def test_session_surface(self):
        session = Session.tpch(seed=0)
        session.execute(TWO_TABLE, feedback=True)
        report = session.estimation_report()
        assert report.subplans == 3
        assert report.summary["count"] >= 1


class TestFeedbackRecosting:
    def test_default_path_identical_and_unreported(self):
        session = Session.tpch(seed=0)
        plain = session.optimize(Q3)
        assert plain.feedback is None
        assert plain.estimator.feedback_hits == 0
        again = session.optimize(Q3, feedback=None)
        assert again.best_plan.fingerprint() == plain.best_plan.fingerprint()
        assert again.best_cost == plain.best_cost
        # An empty session ledger resolves to no feedback at all.
        with_empty = session.optimize(Q3, feedback=True)
        assert with_empty.feedback is None
        assert with_empty.best_plan.fingerprint() == plain.best_plan.fingerprint()

    def test_feedback_changes_mispicked_plan(self):
        database = misestimated_tpch(seed=0)
        session = Session(database)
        plain = session.optimize(Q3)
        session.execute(Q3, feedback=True)
        result = session.optimize(Q3, feedback=True)
        report = result.feedback
        assert report is not None
        assert report.substituted > 0
        assert report.plan_changed == (
            result.best_plan.fingerprint() != plain.best_plan.fingerprint()
        )
        # Exact search under the observed assignment can never lose to
        # the estimate-chosen plan under that same assignment.
        assert report.feedback_cost <= report.baseline_cost_feedback + 1e-9
        assert report.improvement_factor >= 1.0 - 1e-12
        assert "feedback:" in report.describe()

    def test_feedback_accepts_ledger_and_path(self, tmp_path):
        session = Session.tpch(seed=0)
        session.execute(Q3, feedback=True)
        from_instance = session.optimize(Q3, feedback=session.ledger)
        assert from_instance.feedback is not None
        path = tmp_path / "ledger.json"
        session.ledger.save(path)
        fresh = Session.tpch(seed=0)
        from_path = fresh.optimize(Q3, feedback=str(path))
        assert from_path.feedback is not None
        assert (
            from_path.best_plan.fingerprint()
            == from_instance.best_plan.fingerprint()
        )

    def test_sampled_method_rejects_feedback(self):
        session = Session.tpch(seed=0)
        session.execute(Q3, feedback=True)
        with pytest.raises(PlanSpaceError, match="feedback"):
            session.optimize(Q3, method="sampled", feedback=True)

    def test_resilient_exact_tier_carries_feedback(self):
        session = Session.tpch(seed=0)
        session.execute(Q3, feedback=True)
        result = session.optimize(Q3, deadline_s=60.0, feedback=True)
        assert result.resilience.tier == "exact"
        assert result.feedback is not None

    def test_degraded_tier_skips_feedback_report(self):
        session = Session.tpch(seed=0)
        session.execute(Q3, feedback=True)
        result = session.optimize(Q3, max_expressions=1, feedback=True)
        assert result.resilience.degraded
        assert result.feedback is None


class TestPlanCostUnderLedger:
    def test_empty_binding_matches_static_plan_cost(self, session):
        result = session.optimize(Q3)
        binding = CardinalityLedger().binding(result.graph.universe.order)
        assert plan_cost_under_ledger(
            result.best_plan, result.memo, binding, result.cost_model
        ) == pytest.approx(result.cost_model.plan_cost(result.best_plan))

    def test_true_cardinality_ledger_covers_every_rels_group(self, session):
        result = session.optimize(TWO_TABLE)
        oracle = true_cardinality_ledger(result, session.database)
        rels = [g for g in result.memo.groups if g.key[0] == "rels"]
        assert len(oracle) == len(rels)
        # Single-table groups observe the table's actual micro-database
        # row count.
        binding = oracle.binding(result.graph.universe.order)
        n_rows = len(session.database.table("nation").rows)
        (n_group,) = [
            g for g in rels if g.relations == frozenset(("n",))
        ]
        assert binding.rows_for_mask(n_group.mask) == float(n_rows)


class TestLedgerEntrySerialization:
    def test_entry_round_trip(self):
        entry = LedgerEntry(
            mask=5,
            relations=("a", "c"),
            observed_rows=10.0,
            ewma_rows=12.5,
            hits=3,
            last_est_rows=40.0,
            q_errors=[4.0, 3.2],
        )
        assert LedgerEntry.from_dict(entry.to_dict()) == entry
