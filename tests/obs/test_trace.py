"""The span-tree contract: shape determinism, JSON round-trips, and the
disabled-by-default fast path."""

import json

import pytest

from repro.api import Session
from repro.obs import PhaseTimer, Span, Tracer, active_tracer, phase, tracing
from repro.workloads.tpch_queries import tpch_query

Q3 = tpch_query("Q3").sql


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0)


class TestSpanPrimitives:
    def test_live_span_nesting(self):
        tracer = Tracer()
        with tracing(tracer):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    inner.add("widgets", 3)
                outer.add("calls")
        root = tracer.root
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.counters == {"calls": 1}
        assert root.children[0].counters == {"widgets": 3}
        assert root.elapsed_s >= root.children[0].elapsed_s

    def test_record_attaches_posthoc(self):
        tracer = Tracer()
        with tracing(tracer):
            with tracer.span("outer"):
                tracer.record("batched", 0.25, counters={"batches": 4})
        child = tracer.root.children[0]
        assert child.name == "batched"
        assert child.elapsed_s == 0.25
        assert child.counters == {"batches": 4}

    def test_find_and_phase_seconds(self):
        root = Span("optimize")
        child = Span("explore")
        child.elapsed_s = 0.5
        root.children.append(child)
        assert root.find("explore") is child
        assert root.find("missing") is None
        assert root.phase_seconds() == {"explore": 0.5}

    def test_nested_tracing_rejected(self):
        with tracing(Tracer()):
            with pytest.raises(RuntimeError):
                with tracing(Tracer()):
                    pass  # pragma: no cover
        assert active_tracer() is None

    def test_tracer_cleared_after_exception(self):
        with pytest.raises(ValueError):
            with tracing(Tracer()):
                raise ValueError("boom")
        assert active_tracer() is None

    def test_phase_without_tracer_is_a_timer(self):
        timer = phase("explore")
        assert isinstance(timer, PhaseTimer)
        with timer as t:
            t.add("ignored", 10)
        assert t.elapsed_s >= 0.0


class TestTraceShapeDeterminism:
    """For a fixed query the span tree is identical across runs except
    for wall times — the contract tooling diffs against."""

    def _trace(self, sql, **kwargs):
        result = Session.tpch(seed=0).optimize(sql, trace=True, **kwargs)
        return result.trace

    def test_exact_shape_stable(self):
        assert self._trace(Q3).shape() == self._trace(Q3).shape()

    def test_exact_phase_names(self, session):
        result = session.optimize(Q3, trace=True)
        names = [c.name for c in result.trace.children]
        assert names == [
            "parse",
            "bind",
            "setup",
            "explore",
            "annotate",
            "fused",
        ]
        fused = result.trace.children[-1]
        assert [c.name for c in fused.children] == ["implement", "bestplan"]

    def test_unfused_phase_names(self):
        from repro.optimizer.optimizer import OptimizerOptions

        unfused = Session.tpch(seed=0, options=OptimizerOptions(fused=False))
        result = unfused.optimize(Q3, trace=True)
        names = [c.name for c in result.trace.children]
        assert names == [
            "parse",
            "bind",
            "setup",
            "explore",
            "implement",
            "annotate",
            "bestplan",
        ]

    def test_sampled_shape_stable(self):
        first = self._trace(Q3, method="sampled", samples=64, seed=7)
        second = self._trace(Q3, method="sampled", samples=64, seed=7)
        assert first.shape() == second.shape()
        names = [c.name for c in first.children]
        assert names == [
            "parse",
            "bind",
            "space",
            "sample",
            "recombine",
            "assemble",
        ]
        assert [c.name for c in first.find("space").children] == [
            "implicit.layout",
            "implicit.count",
        ]

    def test_resilient_trace_has_tier_spans(self, session):
        result = session.optimize(Q3, deadline_s=30.0, trace=True)
        tier = result.trace.find("tier.exact")
        assert tier is not None
        assert tier.find("bestplan") is not None

    def test_counters_match_memo(self, session):
        result = session.optimize(Q3, trace=True)
        explore = result.trace.find("explore")
        implement = result.trace.find("implement")
        assert explore.counters["groups"] == len(result.memo.groups)
        assert (
            explore.counters["logical_exprs"]
            == result.memo.logical_expression_count()
        )
        assert (
            implement.counters["physical_exprs"]
            == result.memo.physical_expression_count()
        )

    def test_trace_durations_match_timings(self, session):
        """Spans and the optimizer's timings dict are the same
        measurement, not two clocks that drift."""
        result = session.optimize(Q3, trace=True)
        for name, elapsed in result.timings.items():
            if not isinstance(elapsed, float):
                continue  # annotations like the kernel backend name
            span = result.trace.find(name)
            assert span is not None, name
            assert span.elapsed_s == elapsed


class TestJsonRoundTrip:
    def test_span_round_trip(self, session):
        result = session.optimize(Q3, trace=True)
        root = result.trace
        restored = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert restored.shape() == root.shape()
        assert restored.elapsed_s == root.elapsed_s
        assert restored.find("bestplan").elapsed_s == (
            root.find("bestplan").elapsed_s
        )

    def test_render_has_one_line_per_span(self, session):
        result = session.optimize(Q3, trace=True)
        lines = result.trace.render().splitlines()
        count = sum(1 for _ in _iter(result.trace))
        assert len(lines) == count


def _iter(span):
    yield span
    for child in span.children:
        yield from _iter(child)


class TestChromeTrace:
    def _tree(self):
        root = Span("optimize")
        root.elapsed_s = 0.010
        first = Span("parse")
        first.elapsed_s = 0.002
        second = Span("explore")
        second.elapsed_s = 0.006
        second.add("groups", 7)
        root.children = [first, second]
        return root

    def test_events_one_per_span(self):
        events = self._tree().to_chrome_trace()
        assert [e["name"] for e in events] == ["optimize", "parse", "explore"]
        for e in events:
            assert e["ph"] == "X"
            assert e["pid"] == 1 and e["tid"] == 1
            assert e["dur"] >= 0

    def test_synthesized_timeline_nests(self):
        events = {e["name"]: e for e in self._tree().to_chrome_trace()}
        root, parse, explore = (
            events["optimize"],
            events["parse"],
            events["explore"],
        )
        assert root["ts"] == 0.0
        assert parse["ts"] == 0.0
        # The second child starts where the first ended...
        assert explore["ts"] == pytest.approx(parse["dur"])
        # ...and every child fits inside the root's extent.
        for child in (parse, explore):
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_counters_become_args(self):
        events = self._tree().to_chrome_trace()
        explore = next(e for e in events if e["name"] == "explore")
        assert explore["args"] == {"groups": 7}
        assert "args" not in next(e for e in events if e["name"] == "parse")

    def test_json_serializable_from_real_trace(self, session):
        result = session.optimize(Q3, trace=True)
        events = result.trace.to_chrome_trace(pid=7, tid=3)
        payload = json.loads(json.dumps({"traceEvents": events}))
        assert len(payload["traceEvents"]) == sum(
            1 for _ in _iter_spans(result.trace)
        )
        assert all(e["pid"] == 7 for e in payload["traceEvents"])


def _iter_spans(span):
    yield span
    for child in span.children:
        yield from _iter_spans(child)


class TestDisabledPath:
    def test_untraced_result_has_no_trace(self, session):
        result = session.optimize(Q3)
        assert result.trace is None

    def test_untraced_call_leaves_metrics_empty(self):
        fresh = Session.tpch(seed=0)
        fresh.optimize(Q3)
        assert not fresh.metrics
        assert fresh.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_no_ambient_tracer_outside_traced_call(self, session):
        session.optimize(Q3, trace=True)
        assert active_tracer() is None


class TestThreadIsolation:
    """The ambient tracer is a contextvar: concurrent traced calls on
    different threads build disjoint span trees (the module-global
    version made one thread's spans land in the other's tree, or raised
    "a tracer is already active")."""

    def test_two_threads_trace_concurrently_and_disjointly(self):
        import threading

        barrier = threading.Barrier(2)
        trees = {}
        errors = []

        def traced(name):
            tracer = Tracer()
            try:
                with tracing(tracer):
                    barrier.wait(5)
                    with tracer.span(name):
                        with phase(f"{name}.child") as span:
                            span.add("work", 1)
                trees[name] = tracer.root
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=traced, args=(name,))
            for name in ("left", "right")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        for name in ("left", "right"):
            root = trees[name]
            assert root.name == name
            # Exactly this thread's child — nothing leaked across.
            assert [c.name for c in root.children] == [f"{name}.child"]
        assert active_tracer() is None

    def test_two_sessions_optimize_traced_in_parallel(self, session):
        import threading

        reference = session.optimize(Q3, trace=True)
        expected = sorted(s.name for s in _iter_spans(reference.trace))

        barrier = threading.Barrier(2)
        traces = {}
        errors = []

        def run(i):
            worker = Session(session.database)
            try:
                barrier.wait(5)
                traces[i] = worker.optimize(Q3, trace=True).trace
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        left, right = traces[0], traces[1]
        assert left is not right
        # Each tree is complete and uncontaminated: the same span names
        # as a serial traced run, no more, no fewer.
        assert sorted(s.name for s in _iter_spans(left)) == expected
        assert sorted(s.name for s in _iter_spans(right)) == expected
