"""EXPLAIN ANALYZE: per-operator actuals match plain execution, stats
round-trip, and the untraced executor path stays bare."""

import json

import pytest

from repro.api import Session
from repro.obs import ExecutionStats, OperatorStats, render_analyze
from repro.workloads.tpch_queries import tpch_query

Q3 = tpch_query("Q3").sql
TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0)


class TestCollectedStats:
    def test_row_counts_match_plain_execute(self, session):
        plain = session.execute(TWO_TABLE)
        executed = session.execute_detailed(TWO_TABLE, analyze=True)
        assert executed.result.rows == plain.rows
        stats = executed.result.stats
        assert stats is not None
        assert stats.root.actual_rows == len(plain.rows)

    def test_tree_mirrors_plan(self, session):
        executed = session.execute_detailed(TWO_TABLE, analyze=True)
        plan = executed.optimization.best_plan
        stats = executed.result.stats

        def shape(node):
            return (node.op.name, tuple(shape(c) for c in node.children))

        def stats_shape(node):
            return (node.op, tuple(stats_shape(c) for c in node.children))

        assert stats_shape(stats.root) == shape(plan)
        # Estimated rows come straight off the plan's cardinalities.
        assert stats.root.est_rows == plan.cardinality

    def test_wall_time_nests(self, session):
        executed = session.execute_detailed(Q3, analyze=True)
        for node in executed.result.stats.root.iter_nodes():
            assert node.wall_s >= sum(c.wall_s for c in node.children)
            assert node.self_s >= 0.0

    def _node(self, est, actual):
        return OperatorStats(
            op="Scan", detail="Scan(t)", group_id=0,
            est_rows=est, actual_rows=actual,
        )

    def test_q_error(self):
        assert self._node(100, 25).q_error == 4.0
        assert self._node(25, 100).q_error == 4.0
        assert self._node(100, 0).q_error is None

    def test_stats_round_trip(self, session):
        executed = session.execute_detailed(Q3, analyze=True)
        stats = executed.result.stats
        restored = ExecutionStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert [n.op for n in restored.root.iter_nodes()] == [
            n.op for n in stats.root.iter_nodes()
        ]
        assert [n.actual_rows for n in restored.root.iter_nodes()] == [
            n.actual_rows for n in stats.root.iter_nodes()
        ]
        assert restored.wall_s == stats.wall_s
        assert restored.operators == stats.operators

    def test_render_lists_each_operator(self, session):
        executed = session.execute_detailed(TWO_TABLE, analyze=True)
        text = render_analyze(executed.result.stats)
        assert "est. rows" in text and "actual" in text
        for node in executed.result.stats.root.iter_nodes():
            assert node.detail in text
        assert "TOTAL" in text


class TestEdgeCases:
    EMPTY = (
        "SELECT n.n_name, r.r_name FROM nation n, region r "
        "WHERE n.n_regionkey = r.r_regionkey AND n.n_nationkey < 0"
    )

    def test_zero_actual_rows_q_error_none(self, session):
        """Operators that produce nothing have no measurable q-error:
        ``max(est/actual, actual/est)`` would be infinite, so the
        contract is ``None`` — never ``inf`` — all the way up."""
        executed = session.execute_detailed(self.EMPTY, analyze=True)
        stats = executed.result.stats
        assert executed.result.rows == []
        assert stats.root.actual_rows == 0
        assert stats.root.q_error is None
        for node in stats.root.iter_nodes():
            q = node.q_error
            assert q is None or q > 0
            assert q != float("inf")

    def test_empty_result_renders_and_round_trips(self, session):
        executed = session.execute_detailed(self.EMPTY, analyze=True)
        stats = executed.result.stats
        text = render_analyze(stats)
        assert "TOTAL" in text
        restored = ExecutionStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert restored.root.actual_rows == 0
        assert restored.operators == stats.operators

    def test_zero_actual_rows_feed_ledger_without_q_error(self, session):
        """Zero-row observations still enter the ledger (the *observed
        cardinality* is real information) but contribute no q-error."""
        from repro.obs import CardinalityLedger

        executed = session.execute_detailed(
            self.EMPTY, analyze=True, feedback=False
        )
        opt = executed.optimization
        ledger = CardinalityLedger()
        recorded = ledger.record_execution(
            executed.result.stats, opt.memo, opt.graph.universe.order
        )
        assert recorded > 0
        entries = {e.relations: e for _, e in ledger.entries()}
        join = entries[("n", "r")]
        assert join.observed_rows == 0.0
        assert join.last_q_error is None
        # Substitution floors at one row: a zero estimate would zero
        # out every dependent cost.
        assert ledger.binding(opt.graph.universe.order).rows_for_mask(
            join.mask
        ) == 1.0

    def test_ledger_round_trip_on_pruned_memo(self, tmp_path):
        """Plans from a cost-pruned memo still feed the ledger: pruning
        drops physical alternatives, not groups, so every stats node's
        ``group_id`` resolves and the masks match the unpruned run."""
        from repro.obs import CardinalityLedger

        session = Session.tpch(seed=0)
        result = session.optimize(Q3, prune_factor=1.0)
        executed_result = session.executor.execute(
            result.best_plan, collect_stats=True
        )
        ledger = CardinalityLedger()
        recorded = ledger.record_execution(
            executed_result.stats, result.memo, result.graph.universe.order
        )
        assert recorded == len(ledger) > 0
        path = tmp_path / "pruned.json"
        ledger.save(path)
        restored = CardinalityLedger.load(path)
        assert restored.to_dict() == ledger.to_dict()
        # The pruned-memo masks are the same logical keys an unpruned
        # optimization uses — feedback from a pruned run re-costs it.
        followup = session.optimize(Q3, feedback=restored)
        assert followup.feedback is not None
        assert followup.feedback.substituted > 0


class TestDisabledPath:
    def test_plain_execute_collects_nothing(self, session):
        result = session.execute(TWO_TABLE)
        assert result.stats is None

    def test_explain_analyze_session_surface(self, session):
        text = session.explain(TWO_TABLE, analyze=True)
        assert "best cost" in text
        assert "actual" in text

    def test_useplan_respected_under_analyze(self, session):
        executed = session.execute_detailed(
            TWO_TABLE + " OPTION (USEPLAN 1)", analyze=True
        )
        assert executed.used_rank == 1
        assert executed.result.stats is not None
