"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main

TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCount:
    def test_named_query(self):
        code, text = run_cli("count", "Q3")
        assert code == 0
        assert "plans:" in text

    def test_raw_sql(self):
        code, text = run_cli("count", TWO_TABLE)
        assert code == 0
        assert "groups:" in text

    def test_cross_products_flag(self):
        _, no_cross = run_cli("count", "Q3")
        _, with_cross = run_cli("--cross-products", "count", "Q3")
        plans_no = int(no_cross.split("plans: ")[1].replace(",", ""))
        plans_with = int(with_cross.split("plans: ")[1].replace(",", ""))
        assert plans_with > plans_no

    def test_unknown_query_name(self):
        code, _ = run_cli("count", "Q99")
        assert code == 2


class TestExplainAndUnrank:
    def test_explain(self):
        code, text = run_cli("explain", "Q3")
        assert code == 0
        assert "best cost" in text

    def test_explain_verbose(self):
        code, text = run_cli("explain", "Q3", "--verbose")
        assert code == 0
        assert "est. rows" in text and "TOTAL" in text

    def test_unrank(self):
        code, text = run_cli("unrank", "Q3", "13")
        assert code == 0
        assert "[" in text  # memo ids rendered

    def test_unrank_with_trace(self):
        code, text = run_cli("unrank", "Q3", "13", "--trace")
        assert code == 0
        assert "unranked rank 13" in text


class TestSampleAndExecute:
    def test_sample(self):
        code, text = run_cli("sample", "Q3", "-n", "5", "--seed", "1")
        assert code == 0
        assert text.count("#") >= 5

    def test_sample_analyze(self):
        code, text = run_cli("sample", "Q3", "-n", "5", "--analyze")
        assert code == 0
        assert "join-tree shapes" in text

    def test_execute(self):
        code, text = run_cli("execute", TWO_TABLE, "--limit", "3")
        assert code == 0
        assert "n_name" in text

    def test_execute_with_useplan(self):
        code, text = run_cli(
            "execute", TWO_TABLE + " OPTION (USEPLAN 3)", "--limit", "3"
        )
        assert code == 0


class TestOptimize:
    def test_exhaustive_default(self):
        code, text = run_cli("optimize", "Q3")
        assert code == 0
        assert "best cost" in text
        assert "sampled" not in text

    def test_sampled(self):
        code, text = run_cli(
            "optimize", "Q3", "--sampled", "--samples", "40", "--seed", "1"
        )
        assert code == 0
        assert "sampled optimization: 40 samples" in text
        assert "best cost" in text
        assert "recombined" in text

    def test_sampled_seed_determinism(self):
        import re

        def strip_timings(text: str) -> str:
            # The report embeds wall-clock seconds ("; 0.06s"), which are
            # genuinely nondeterministic — everything else must match.
            return re.sub(r"\d+\.\d+s", "_s", text)

        _, first = run_cli(
            "optimize", "Q3", "--sampled", "--samples", "30", "--seed", "5"
        )
        _, second = run_cli(
            "optimize", "Q3", "--sampled", "--samples", "30", "--seed", "5"
        )
        assert strip_timings(first) == strip_timings(second)

    def test_sampled_budget_flag(self):
        # A deadline that has already passed when the first batch's
        # post-batch check runs: one batch completes, then the run stops.
        code, text = run_cli(
            "optimize", "Q3", "--sampled", "--budget-s", "1e-9"
        )
        assert code == 0
        assert "stopped: budget" in text

    def test_sampled_rule_quantile(self):
        code, text = run_cli(
            "optimize",
            "Q3",
            "--sampled",
            "--rule",
            "quantile",
            "--quantile",
            "0.05",
            "--confidence",
            "0.9",
        )
        assert code == 0
        assert "quantile-target" in text

    def test_sampled_uniform_flag(self):
        code, text = run_cli(
            "optimize", "Q3", "--sampled", "--samples", "20", "--uniform"
        )
        assert code == 0
        assert "sampled optimization: 20 samples" in text

    def test_sampling_flags_require_sampled(self):
        for flags in (
            ["--samples", "10"],
            ["--seed", "5"],
            ["--budget-s", "1"],
            ["--rule", "plateau"],
            ["--quantile", "0.01"],
            ["--confidence", "0.9"],
            ["--uniform"],
        ):
            code, _ = run_cli("optimize", "Q3", *flags)
            assert code == 2, flags

    def test_fixed_rule_requires_samples(self):
        code, _ = run_cli("optimize", "Q3", "--sampled", "--rule", "fixed")
        assert code == 2

    def test_quantile_flags_require_quantile_rule(self):
        code, _ = run_cli(
            "optimize", "Q3", "--sampled", "--samples", "10",
            "--quantile", "0.01",
        )
        assert code == 2


class TestDistribution:
    def test_memo_free_default(self):
        code, text = run_cli("distribution", "Q3", "--samples", "80")
        assert code == 0
        assert "best known plan" in text
        assert "quantiles:" in text
        assert "within factor:" in text

    def test_materialized_scales_to_optimum(self):
        code, text = run_cli(
            "distribution", "Q3", "--samples", "80", "--materialized"
        )
        assert code == 0
        assert "scaled to the optimum" in text

    def test_stratified(self):
        code, text = run_cli(
            "distribution", "Q3", "--samples", "80", "--stratified"
        )
        assert code == 0
        assert "N = " in text

    def test_stratified_conflicts_with_materialized(self):
        code, _ = run_cli(
            "distribution", "Q3", "--materialized", "--stratified"
        )
        assert code == 2

    def test_seed_determinism(self):
        _, first = run_cli("distribution", "Q3", "--samples", "60", "--seed", "2")
        _, second = run_cli("distribution", "Q3", "--samples", "60", "--seed", "2")
        assert first == second


class TestValidate:
    def test_validate_passes(self):
        code, text = run_cli("validate", TWO_TABLE, "--sample", "20")
        assert code == 0
        assert "identical results" in text


class TestParticipationAndDiff:
    def test_participation(self):
        code, text = run_cli("participation", TWO_TABLE)
        assert code == 0
        assert "participation" in text
        assert "%" in text

    def test_diff_identical(self):
        code, text = run_cli("diff", "Q3")
        assert code == 0
        assert "identical" in text

    def test_diff_variant(self):
        code, text = run_cli("diff", "Q3", "--no-merge-join")
        assert code == 0
        assert "removed" in text

    def test_diff_index_joins(self):
        code, text = run_cli("diff", "Q3", "--index-joins")
        assert code == 0
        assert "added" in text


class TestCorpusCommands:
    def test_build_and_verify(self, tmp_path):
        path = str(tmp_path / "corpus.json")
        code, text = run_cli(
            "corpus-build", path, "--queries", "Q3", "--plans", "8"
        )
        assert code == 0
        assert "recorded 8 golden plans" in text
        code, text = run_cli("corpus-verify", path)
        assert code == 0
        assert "all digests match" in text

    def test_verify_fails_on_different_data(self, tmp_path):
        path = str(tmp_path / "corpus.json")
        run_cli(
            "corpus-build",
            path,
            "--queries",
            "SELECT c.c_name, n.n_name FROM customer c, nation n "
            "WHERE c.c_nationkey = n.n_nationkey",
            "--plans",
            "5",
        )
        code, text = run_cli("--data-seed", "77", "corpus-verify", path)
        assert code == 1
        assert "FAIL" in text


class TestExperimentCommands:
    def test_table1_single_query(self):
        code, text = run_cli("table1", "--samples", "50", "--queries", "Q3")
        assert code == 0
        assert "no-cross" in text and "+cross" in text

    def test_figure4(self):
        code, text = run_cli("figure4", "Q3", "--samples", "200")
        assert code == 0
        assert "#" in text
        assert "gamma shape" in text
