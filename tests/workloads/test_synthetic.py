"""Tests for synthetic workload generators."""

import pytest

from repro.errors import ReproError
from repro.optimizer.joingraph import JoinGraph
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    random_query,
    star_query,
)


class TestShapes:
    def test_chain_edges(self):
        workload = chain_query(4)
        bound = bind(parse(workload.sql), workload.catalog)
        graph = JoinGraph(bound.aliases(), list(bound.where_conjuncts))
        assert len(graph.conjuncts) == 3
        assert not graph.is_connected(frozenset(["t0", "t2"]))

    def test_star_edges(self):
        workload = star_query(4)
        bound = bind(parse(workload.sql), workload.catalog)
        graph = JoinGraph(bound.aliases(), list(bound.where_conjuncts))
        assert len(graph.conjuncts) == 3
        assert graph.neighbors(frozenset(["t0"])) == frozenset(["t1", "t2", "t3"])

    def test_clique_edges(self):
        workload = clique_query(4)
        bound = bind(parse(workload.sql), workload.catalog)
        graph = JoinGraph(bound.aliases(), list(bound.where_conjuncts))
        assert len(graph.conjuncts) == 6
        assert graph.is_connected(frozenset(["t1", "t2"]))

    def test_single_table(self):
        workload = chain_query(1)
        bound = bind(parse(workload.sql), workload.catalog)
        assert len(bound.quantifiers) == 1

    def test_known_edge_list(self):
        workload = star_query(4)
        assert workload.edges == ((0, 1), (0, 2), (0, 3))


class TestRandom:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("density", [0.0, 0.4, 1.0])
    def test_connected(self, seed, density):
        workload = random_query(6, edge_density=density, seed=seed)
        bound = bind(parse(workload.sql), workload.catalog)
        graph = JoinGraph(bound.aliases(), list(bound.where_conjuncts))
        assert graph.is_connected(bound.aliases())
        assert len(graph.conjuncts) == len(workload.edges)

    def test_density_bounds(self):
        n = 6
        tree = random_query(n, edge_density=0.0, seed=3)
        assert len(tree.edges) == n - 1
        clique = random_query(n, edge_density=1.0, seed=3)
        assert len(clique.edges) == n * (n - 1) // 2

    def test_deterministic_edges(self):
        a = random_query(7, edge_density=0.5, seed=11)
        b = random_query(7, edge_density=0.5, seed=11)
        assert a.edges == b.edges
        assert a.sql == b.sql
        assert a.database.table("t1").rows == b.database.table("t1").rows

    def test_seeds_diverge(self):
        topologies = {
            random_query(7, edge_density=0.3, seed=s).edges for s in range(6)
        }
        assert len(topologies) > 1

    def test_edges_normalized_and_unique(self):
        workload = random_query(8, edge_density=0.5, seed=2)
        assert all(a < b for a, b in workload.edges)
        assert len(set(workload.edges)) == len(workload.edges)

    def test_invalid_density_rejected(self):
        with pytest.raises(ReproError):
            random_query(4, edge_density=1.5)


class TestData:
    def test_fk_integrity(self):
        workload = chain_query(3, rows=10, seed=5)
        t0_ids = {r[0] for r in workload.database.table("t0").rows}
        for row in workload.database.table("t1").rows:
            assert row[2] in t0_ids

    def test_deterministic(self):
        a = chain_query(3, seed=9)
        b = chain_query(3, seed=9)
        assert a.database.table("t1").rows == b.database.table("t1").rows

    def test_indexes_optional(self):
        with_idx = chain_query(3, with_indexes=True)
        without = chain_query(3, with_indexes=False)
        assert with_idx.catalog.indexes("t1")
        assert not without.catalog.indexes("t1")


class TestEndToEnd:
    @pytest.mark.parametrize("maker", [chain_query, star_query, clique_query])
    def test_optimize_and_execute(self, maker):
        from repro.optimizer.optimizer import Optimizer, OptimizerOptions
        from repro.planspace.space import PlanSpace
        from repro.executor.executor import PlanExecutor
        from repro.testing.diff import canonical_rows

        workload = maker(3, rows=8, seed=1)
        result = Optimizer(
            workload.catalog, OptimizerOptions(allow_cross_products=False)
        ).optimize_sql(workload.sql)
        space = PlanSpace.from_result(result)
        assert space.count() > 1
        executor = PlanExecutor(workload.database)
        reference = canonical_rows(executor.execute(result.best_plan).rows)
        for plan in space.sample(15, seed=2):
            assert canonical_rows(executor.execute(plan).rows) == reference

    def test_aggregate_flag(self):
        plain = chain_query(2, aggregate=False)
        assert plain.sql.startswith("SELECT t0.id")
        agg = chain_query(2, aggregate=True)
        assert "COUNT(*)" in agg.sql
