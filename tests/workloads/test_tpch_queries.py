"""Tests for the TPC-H workload definitions."""

import pytest

from repro.errors import ReproError
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.workloads.tpch_queries import TPCH_QUERIES, tpch_query


class TestLookup:
    def test_known_queries(self):
        assert tpch_query("Q5").relations == 6
        assert tpch_query("q8").relations == 8  # case-insensitive

    def test_unknown_query(self):
        with pytest.raises(ReproError):
            tpch_query("Q99")

    def test_table1_queries_flagged(self):
        flagged = {q.name for q in TPCH_QUERIES.values() if q.in_paper_table1}
        assert flagged == {"Q5", "Q7", "Q8", "Q9"}


class TestBindability:
    def test_all_queries_bind(self, catalog):
        for query in TPCH_QUERIES.values():
            bound = bind(parse(query.sql), catalog)
            assert len(bound.quantifiers) == query.relations, query.name

    def test_q7_has_two_nation_instances(self, catalog):
        bound = bind(parse(tpch_query("Q7").sql), catalog)
        nations = [q for q in bound.quantifiers if q.table == "nation"]
        assert len(nations) == 2

    def test_q7_disjunction_is_join_conjunct(self, catalog):
        bound = bind(parse(tpch_query("Q7").sql), catalog)
        # The FRANCE/GERMANY disjunction references both nation aliases and
        # must not be pushed into either scan.
        multi = [
            c
            for c in bound.where_conjuncts
            if {col.alias for col in c.references()} == {"n1", "n2"}
        ]
        assert len(multi) == 1

    def test_q9_like_filter_pushed_to_part(self, catalog):
        bound = bind(parse(tpch_query("Q9").sql), catalog)
        assert bound.pushed_filters["p"] is not None
        assert "LIKE" in bound.pushed_filters["p"].render()

    def test_join_graphs_connected(self, catalog):
        from repro.optimizer.joingraph import JoinGraph

        for query in TPCH_QUERIES.values():
            if query.relations < 2:
                continue
            bound = bind(parse(query.sql), catalog)
            graph = JoinGraph(bound.aliases(), list(bound.where_conjuncts))
            assert graph.is_connected(graph.aliases), query.name


class TestExecutability:
    def test_q5_returns_rows_on_micro_data(self, micro_db):
        from repro.api import Session

        session = Session(micro_db)
        result = session.execute(tpch_query("Q5").sql)
        assert result.columns[0] == "n_name"
        # Rows may legitimately be few at micro scale, but the machinery
        # must produce a well-formed (possibly empty) result.
        assert isinstance(result.rows, list)

    def test_q6_scalar_result(self, micro_db):
        from repro.api import Session

        session = Session(micro_db)
        result = session.execute(tpch_query("Q6").sql)
        assert len(result.rows) == 1
