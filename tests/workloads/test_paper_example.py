"""Tests for the reconstructed paper example itself."""

import pytest

from repro.workloads.paper_example import (
    EXPECTED_COUNTS,
    EXPECTED_TOTAL,
    build_paper_example,
)


class TestStructure:
    def test_groups(self, paper_example):
        # Scan A, Scan B, A join B, Scan C, root.
        assert len(paper_example.memo.groups) == 5

    def test_paper_ids_complete(self, paper_example):
        assert set(paper_example.paper_ids) == set(EXPECTED_COUNTS)

    def test_sort_only_in_group_a(self, paper_example):
        sorts = [
            e
            for g in paper_example.memo.groups
            for e in g.exprs
            if e.is_enforcer
        ]
        assert len(sorts) == 1
        group = paper_example.memo.group(sorts[0].group_id)
        assert group.relations == frozenset(["a"])

    def test_root_group_set(self, paper_example):
        root = paper_example.memo.root_group()
        assert root.relations == frozenset(["a", "b", "c"])

    def test_expected_total_consistent(self):
        assert EXPECTED_TOTAL == (
            EXPECTED_COUNTS["7.7"] + EXPECTED_COUNTS["7.8"]
        )


class TestData:
    def test_tables_loaded(self, paper_example):
        for name in ("a", "b", "c"):
            assert len(paper_example.database.table(name)) == 8

    def test_deterministic(self):
        a = build_paper_example(rows=5, seed=3)
        b = build_paper_example(rows=5, seed=3)
        assert a.database.table("a").rows == b.database.table("a").rows

    def test_row_count_parameter(self):
        example = build_paper_example(rows=3)
        assert len(example.database.table("b")) == 3

    def test_cardinalities_filled(self, paper_example):
        assert all(
            g.cardinality is not None for g in paper_example.memo.groups
        )

    def test_joins_produce_rows(self, paper_example):
        from repro.executor import execute_plan
        from repro.planspace import PlanSpace

        space = PlanSpace.from_memo(paper_example.memo)
        result = execute_plan(space.unrank(0), paper_example.database)
        assert len(result.rows) > 0
