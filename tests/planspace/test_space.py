"""Tests for the PlanSpace facade."""

import pytest

from repro.planspace.space import PlanSpace


class TestConstruction:
    def test_from_memo(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        assert space.count() == 44

    def test_from_result_honours_order_by(self, catalog):
        from repro.optimizer.optimizer import Optimizer, OptimizerOptions
        from repro.workloads.tpch_queries import tpch_query

        result = Optimizer(
            catalog, OptimizerOptions(allow_cross_products=False)
        ).optimize_sql(tpch_query("Q3").sql + " ORDER BY revenue")
        space = PlanSpace.from_result(result)
        # Every plan's root must deliver the ORDER BY.
        for _, plan in space.enumerate(stop=25):
            assert plan.op.delivered_order()[: len(result.root_order)] == (
                result.root_order
            )

    def test_redundant_sorts_flag_shrinks_space(self, paper_example):
        paper_semantics = PlanSpace.from_memo(
            paper_example.memo, include_redundant_sorts=True
        )
        restricted = PlanSpace.from_memo(
            paper_example.memo, include_redundant_sorts=False
        )
        assert restricted.count() < paper_semantics.count()


class TestFacadeMethods:
    def test_len_matches_count(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        assert len(space) == space.count() == 44

    def test_operator_counts_exposed(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        counts = space.operator_counts()
        assert counts[paper_example.paper_ids["7.7"]] == 22

    def test_describe(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        text = space.describe()
        assert "N = 44" in text

    def test_all_plans_limit(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        assert len(space.all_plans(limit=10)) == 10
        assert len(space.all_plans()) == 44

    def test_sampler_shared_unranker(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        sampler = space.sampler(seed=0)
        assert sampler.total == 44

    def test_unrank_with_trace(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        plan, trace = space.unrank_with_trace(13)
        assert trace.rank == 13
        assert trace.operator_ids()[0] == plan.expr_id

    def test_sample_deterministic(self, paper_example):
        space = PlanSpace.from_memo(paper_example.memo)
        a = [p.fingerprint() for p in space.sample(10, seed=4)]
        b = [p.fingerprint() for p in space.sample(10, seed=4)]
        assert a == b
