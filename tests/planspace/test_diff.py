"""Tests for plan-space diffing."""

import pytest

from repro.optimizer.implementation import ImplementationConfig
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.diff import diff_spaces
from repro.planspace.links import materialize_links

SQL = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


def _space(catalog, **impl_kwargs):
    options = OptimizerOptions(
        allow_cross_products=False,
        implementation=ImplementationConfig(**impl_kwargs),
    )
    result = Optimizer(catalog, options).optimize_sql(SQL)
    return materialize_links(result.memo, root_required=result.root_order)


class TestIdenticalSpaces:
    def test_same_configuration_identical(self, catalog):
        diff = diff_spaces(_space(catalog), _space(catalog))
        assert diff.identical
        assert "identical" in diff.render()


class TestConfigurationChanges:
    def test_removed_implementation_detected(self, catalog):
        baseline = _space(catalog)
        candidate = _space(catalog, enable_merge_join=False)
        diff = diff_spaces(baseline, candidate)
        assert not diff.identical
        assert diff.candidate_total < diff.baseline_total
        assert any("MergeJoin" in op for op in diff.removed_operators)

    def test_added_implementation_detected(self, catalog):
        baseline = _space(catalog)
        candidate = _space(catalog, enable_index_nl_join=True)
        diff = diff_spaces(baseline, candidate)
        assert any("IndexNLJoin" in op for op in diff.added_operators)
        assert diff.candidate_total > diff.baseline_total

    def test_count_changes_reported(self, catalog):
        baseline = _space(catalog)
        candidate = _space(catalog, enable_index_scans=False)
        diff = diff_spaces(baseline, candidate)
        # Scans disappear; surviving joins root fewer plans.
        assert diff.removed_operators
        assert diff.count_changes

    def test_render_is_informative(self, catalog):
        baseline = _space(catalog)
        candidate = _space(catalog, enable_merge_join=False)
        text = diff_spaces(baseline, candidate).render()
        assert "->" in text
        assert "removed" in text

    def test_symmetric(self, catalog):
        a = _space(catalog)
        b = _space(catalog, enable_merge_join=False)
        forward = diff_spaces(a, b)
        backward = diff_spaces(b, a)
        assert len(forward.removed_operators) == len(backward.added_operators)
