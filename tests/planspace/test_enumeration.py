"""Tests for exhaustive enumeration."""

import itertools

import pytest

from repro.errors import RankOutOfRangeError
from repro.planspace.enumeration import enumerate_plans
from repro.planspace.links import materialize_links


@pytest.fixture
def small_space(paper_example):
    return materialize_links(paper_example.memo)


class TestEnumeratePlans:
    def test_full_enumeration_yields_all(self, small_space):
        plans = list(enumerate_plans(small_space))
        assert len(plans) == 44
        assert [rank for rank, _ in plans] == list(range(44))

    def test_all_plans_distinct(self, small_space):
        fingerprints = {
            plan.fingerprint() for _, plan in enumerate_plans(small_space)
        }
        assert len(fingerprints) == 44

    def test_range_slicing(self, small_space):
        plans = list(enumerate_plans(small_space, start=10, stop=20))
        assert [rank for rank, _ in plans] == list(range(10, 20))

    def test_stride(self, small_space):
        plans = list(enumerate_plans(small_space, step=7))
        assert [rank for rank, _ in plans] == list(range(0, 44, 7))

    def test_lazy_on_huge_space(self, q5_space):
        first_three = list(
            itertools.islice(enumerate_plans(q5_space.linked), 3)
        )
        assert [rank for rank, _ in first_three] == [0, 1, 2]

    def test_stop_validated(self, small_space):
        with pytest.raises(RankOutOfRangeError):
            list(enumerate_plans(small_space, stop=45))

    def test_negative_start_rejected(self, small_space):
        with pytest.raises(RankOutOfRangeError):
            list(enumerate_plans(small_space, start=-1))

    def test_bad_step_rejected(self, small_space):
        with pytest.raises(ValueError):
            list(enumerate_plans(small_space, step=0))
