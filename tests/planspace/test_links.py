"""Tests for link materialization (paper Section 3.1)."""

import pytest

from repro.algebra.physical import MergeJoin, Sort
from repro.errors import PlanSpaceError
from repro.memo.memo import Memo
from repro.planspace.links import materialize_links


class TestPaperExampleLinks:
    def test_all_physical_operators_linked(self, paper_example):
        space = materialize_links(paper_example.memo)
        assert len(space.operators) == 11  # 10 scans/joins + 1 sort

    def test_hash_join_links_to_all_group_members(self, paper_example):
        space = materialize_links(paper_example.memo)
        gid, lid = map(int, paper_example.paper_ids["3.3"].split("."))
        node = space.operator(gid, lid)
        # Child 1 (group A): TableScan, IdxScan, Sort -> 3 alternatives.
        assert len(node.alternatives[0]) == 3
        # Child 2 (group B): both scans.
        assert len(node.alternatives[1]) == 2

    def test_merge_join_filters_by_order(self, paper_example):
        space = materialize_links(paper_example.memo)
        gid, lid = map(int, paper_example.paper_ids["3.4"].split("."))
        node = space.operator(gid, lid)
        assert isinstance(node.expr.op, MergeJoin)
        # Child 1 (group B): only the sorted index scan.
        assert len(node.alternatives[0]) == 1
        # Child 2 (group A): index scan + Sort enforcer.
        assert len(node.alternatives[1]) == 2

    def test_sort_links_to_non_enforcers_only(self, paper_example):
        space = materialize_links(paper_example.memo)
        gid, lid = map(int, paper_example.paper_ids["1.4"].split("."))
        sort_node = space.operator(gid, lid)
        assert isinstance(sort_node.expr.op, Sort)
        alternatives = sort_node.alternatives[0]
        assert len(alternatives) == 2  # both scans, including the sorted one
        assert all(not a.expr.is_enforcer for a in alternatives)

    def test_redundant_sorts_can_be_excluded(self, paper_example):
        space = materialize_links(
            paper_example.memo, include_redundant_sorts=False
        )
        gid, lid = map(int, paper_example.paper_ids["1.4"].split("."))
        sort_node = space.operator(gid, lid)
        # Only the unsorted TableScan remains a child alternative.
        assert len(sort_node.alternatives[0]) == 1

    def test_roots_are_root_group_operators(self, paper_example):
        space = materialize_links(paper_example.memo)
        root_gid = paper_example.memo.root_group_id
        assert all(n.expr.group_id == root_gid for n in space.roots)
        assert len(space.roots) == 2


class TestRootRequirements:
    def test_root_requirement_filters_roots(self, q3_result, catalog):
        from repro.optimizer.optimizer import Optimizer, OptimizerOptions
        from repro.workloads.tpch_queries import tpch_query

        ordered = Optimizer(
            catalog, OptimizerOptions(allow_cross_products=False)
        ).optimize_sql(tpch_query("Q3").sql + " ORDER BY revenue")
        space = materialize_links(ordered.memo, root_required=ordered.root_order)
        assert all(
            n.expr.op.delivered_order()[: len(ordered.root_order)]
            == ordered.root_order
            for n in space.roots
        )

    def test_unsatisfiable_root_requirement(self, paper_example):
        from repro.algebra.expressions import ColumnId

        with pytest.raises(PlanSpaceError):
            materialize_links(
                paper_example.memo, root_required=(ColumnId("zz", "zz"),)
            )

    def test_memo_without_root_rejected(self):
        with pytest.raises(PlanSpaceError):
            materialize_links(Memo())


class TestLinkedSpaceApi:
    def test_operator_lookup_error(self, paper_example):
        space = materialize_links(paper_example.memo)
        with pytest.raises(PlanSpaceError):
            space.operator(99, 99)

    def test_group_operators(self, paper_example):
        space = materialize_links(paper_example.memo)
        root_gid = paper_example.memo.root_group_id
        ops = space.group_operators(root_gid)
        assert len(ops) == 2

    def test_render_mentions_children(self, paper_example):
        space = materialize_links(paper_example.memo)
        gid, lid = map(int, paper_example.paper_ids["3.3"].split("."))
        text = space.operator(gid, lid).render()
        assert "child 1" in text and "child 2" in text
