"""Tests for exact operator-participation counts."""

from collections import Counter

import pytest

from repro.planspace.counting import annotate_counts
from repro.planspace.links import materialize_links
from repro.planspace.participation import (
    participation_counts,
    participation_report,
)
from repro.planspace.space import PlanSpace


@pytest.fixture
def example_space(paper_example):
    space = materialize_links(paper_example.memo)
    annotate_counts(space)
    return space


def brute_force_participation(space) -> Counter:
    """Count containment by enumerating every plan."""
    from repro.planspace.enumeration import enumerate_plans

    counts: Counter = Counter()
    for _, plan in enumerate_plans(space):
        for node in plan.iter_nodes():
            counts[node.expr_id] += 1
    return counts


class TestPaperExample:
    def test_matches_brute_force(self, example_space):
        exact = participation_counts(example_space)
        brute = brute_force_participation(example_space)
        for op_id, count in exact.items():
            assert count == brute.get(op_id, 0), op_id

    def test_known_values(self, example_space, paper_example):
        exact = participation_counts(example_space)
        # Every plan passes through exactly one root (22 each).
        assert exact[paper_example.paper_ids["7.7"]] == 22
        assert exact[paper_example.paper_ids["7.8"]] == 22
        # The merge join 3.4 roots 3 sub-plans; each root pairs it with 2
        # scans of C: 2 roots x 2 x 3 = 12 plans.
        assert exact[paper_example.paper_ids["3.4"]] == 12
        # The Sort enforcer: 24 of the 44 plans (see module docstring math).
        assert exact[paper_example.paper_ids["1.4"]] == 24

    def test_participation_bounded_by_total(self, example_space):
        exact = participation_counts(example_space)
        assert all(0 <= count <= 44 for count in exact.values())

    def test_report_renders(self, example_space):
        text = participation_report(example_space)
        assert "44" in text
        assert "HashJoin" in text


class TestOnRealQuery:
    def test_matches_brute_force_q3_subspace(self, catalog):
        """Brute-force cross-check on a small real optimizer memo."""
        from repro.optimizer.implementation import ImplementationConfig
        from repro.optimizer.optimizer import Optimizer, OptimizerOptions

        options = OptimizerOptions(
            allow_cross_products=False,
            implementation=ImplementationConfig(
                enable_index_scans=False, enable_merge_join=False
            ),
        )
        result = Optimizer(catalog, options).optimize_sql(
            "SELECT n.n_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey"
        )
        space = materialize_links(result.memo)
        annotate_counts(space)
        exact = participation_counts(space)
        brute = brute_force_participation(space)
        for op_id, count in exact.items():
            assert count == brute.get(op_id, 0), op_id

    def test_sampled_frequencies_converge(self, q3_space):
        """Uniform sampling must agree with the exact participation — a
        cross-validation of the sampler's uniformity on a real query."""
        exact = participation_counts(q3_space.linked)
        total = q3_space.count()
        sample_size = 3_000
        plans = q3_space.sample(sample_size, seed=11)
        sampled: Counter = Counter()
        for plan in plans:
            for node in plan.iter_nodes():
                sampled[node.expr_id] += 1
        # Check the most common operators: sampled fraction within a few
        # standard errors of the exact fraction.
        for op_id, count in sorted(
            exact.items(), key=lambda kv: kv[1], reverse=True
        )[:10]:
            expected = count / total
            observed = sampled.get(op_id, 0) / sample_size
            stderr = (expected * (1 - expected) / sample_size) ** 0.5
            assert abs(observed - expected) < max(5 * stderr, 0.01), op_id

    def test_every_operator_reachable_or_zero(self, q5_space):
        exact = participation_counts(q5_space.linked)
        # In a fully implemented memo every operator should be live.
        dead = [op_id for op_id, count in exact.items() if count == 0]
        assert not dead, f"dead operators: {dead[:5]}"

    def test_linear_runtime_on_large_space(self, q5_space):
        import time

        started = time.perf_counter()
        participation_counts(q5_space.linked)
        assert time.perf_counter() - started < 1.0
