"""Tests for unranking/ranking (paper Section 3.3 + appendix).

The bijection property — every rank yields a distinct valid plan and
ranking inverts unranking — is the paper's central claim.
"""

import pytest

from repro.errors import PlanSpaceError, RankOutOfRangeError
from repro.planspace.links import materialize_links
from repro.planspace.unranking import Unranker


@pytest.fixture
def unranker(paper_example):
    return Unranker(materialize_links(paper_example.memo))


class TestCardinalityAnnotations:
    def test_unranked_plans_carry_real_estimates(self, unranker):
        for node in unranker.unrank(13).iter_nodes():
            assert node.cardinality > 0.0

    def test_unannotated_memo_fails_loudly(self, paper_example):
        """No silent cardinality=0.0 fallback: a memo that reaches
        unranking without annotations is a pipeline bug."""
        memo = paper_example.memo
        saved = [group.cardinality for group in memo.groups]
        try:
            memo.groups[0].cardinality = None
            stripped = Unranker(materialize_links(memo))
            with pytest.raises(PlanSpaceError, match="cardinality"):
                stripped.unrank(13)
        finally:
            for group, cardinality in zip(memo.groups, saved):
                group.cardinality = cardinality


class TestPaperAppendix:
    """Unranking rank 13 from the root group, as in the paper's appendix."""

    def test_root_choice_and_local_rank(self, unranker, paper_example):
        plan, trace = None, None
        plan = unranker.unrank(13)
        _, trace = unranker.unrank_with_trace(13)
        root_step = trace.steps[0]
        # k = 1: the first root operator (7.7) covers rank 13; r_l = 13.
        assert root_step.operator_id == paper_example.paper_ids["7.7"]
        assert root_step.local_rank == 13

    def test_appendix_recurrence_values(self, unranker):
        _, trace = unranker.unrank_with_trace(13)
        root_step = trace.steps[0]
        # R(2) = 13, R(1) = 13 mod B(1) = 1; s(2) = floor(13/2) = 6, s(1) = 1.
        assert root_step.remainders == (1, 13)
        assert root_step.sub_ranks == (1, 6)

    def test_appendix_child_choices(self, unranker, paper_example):
        plan, trace = unranker.unrank_with_trace(13)
        ids = trace.operator_ids()
        # Child 1 unranks (1, group C): second scan 4.3.
        assert paper_example.paper_ids["4.3"] in ids
        # Child 2 unranks (6, group AB): falls within 3.3's 8 plans.
        assert paper_example.paper_ids["3.3"] in ids

    def test_plan_operators_preorder(self, unranker, paper_example):
        plan = unranker.unrank(13)
        ids = plan.operator_ids()
        assert ids[0] == paper_example.paper_ids["7.7"]
        assert len(ids) == plan.size()


class TestBijection:
    def test_all_ranks_distinct_and_valid(self, unranker):
        seen = set()
        for rank in range(unranker.total):
            plan = unranker.unrank(rank)
            fingerprint = plan.fingerprint()
            assert fingerprint not in seen
            seen.add(fingerprint)
        assert len(seen) == 44

    def test_rank_inverts_unrank(self, unranker):
        for rank in range(unranker.total):
            assert unranker.rank(unranker.unrank(rank)) == rank

    def test_out_of_range_rejected(self, unranker):
        with pytest.raises(RankOutOfRangeError):
            unranker.unrank(44)
        with pytest.raises(RankOutOfRangeError):
            unranker.unrank(-1)

    def test_foreign_plan_rejected(self, unranker, q3_space):
        foreign = q3_space.unrank(0)
        with pytest.raises(PlanSpaceError):
            unranker.rank(foreign)


class TestBijectionOnRealQuery:
    def test_random_ranks_roundtrip_q3(self, q3_space):
        import random

        rng = random.Random(7)
        total = q3_space.count()
        for _ in range(200):
            rank = rng.randrange(total)
            plan = q3_space.unrank(rank)
            assert q3_space.rank(plan) == rank

    def test_random_ranks_roundtrip_q5(self, q5_space):
        import random

        rng = random.Random(11)
        total = q5_space.count()
        for _ in range(50):
            rank = rng.randrange(total)
            plan = q5_space.unrank(rank)
            assert q5_space.rank(plan) == rank

    def test_boundary_ranks(self, q5_space):
        total = q5_space.count()
        for rank in (0, 1, total // 2, total - 2, total - 1):
            assert q5_space.rank(q5_space.unrank(rank)) == rank

    def test_plans_are_rooted_in_root_group(self, q3_space):
        root_gid = q3_space.linked.memo.root_group_id
        for rank in (0, 1, 2, 100, 1000):
            assert q3_space.unrank(rank).group_id == root_gid


class TestMergeJoinPlansRespectProperties:
    def test_merge_join_children_sorted(self, q3_space):
        """Every merge join in every sampled plan must sit on children
        that deliver the required key order — the Section 3.1 guarantee."""
        from repro.algebra.physical import MergeJoin
        from repro.algebra.properties import order_satisfies

        for plan in q3_space.sample(300, seed=5):
            for node in plan.iter_nodes():
                if isinstance(node.op, MergeJoin):
                    for pos, child in enumerate(node.children):
                        required = node.op.required_child_order(pos)
                        assert order_satisfies(
                            child.op.delivered_order(), required
                        )
