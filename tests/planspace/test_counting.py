"""Tests for plan counting (paper Section 3.2).

The headline check: our counts equal the numbers printed in the paper's
Figure 3 for its worked example, and equal brute-force enumeration
everywhere else.
"""

from repro.planspace.counting import annotate_counts, operator_count
from repro.planspace.links import materialize_links
from repro.workloads.paper_example import EXPECTED_COUNTS, EXPECTED_TOTAL


class TestPaperFigure3:
    def test_every_annotated_count_matches(self, paper_example):
        space = materialize_links(paper_example.memo)
        annotate_counts(space)
        for paper_id, expected in EXPECTED_COUNTS.items():
            gid, lid = map(int, paper_example.paper_ids[paper_id].split("."))
            node = space.operator(gid, lid)
            assert node.count == expected, f"operator {paper_id}"

    def test_total_is_sum_over_root_group(self, paper_example):
        space = materialize_links(paper_example.memo)
        total = annotate_counts(space)
        assert total == EXPECTED_TOTAL

    def test_prefix_products_match_definition(self, paper_example):
        space = materialize_links(paper_example.memo)
        annotate_counts(space)
        gid, lid = map(int, paper_example.paper_ids["7.7"].split("."))
        node = space.operator(gid, lid)
        # b(1) = 2 (scan C), b(2) = 11 (group AB); B = (1, 2, 22).
        assert node.child_sums == (2, 11)
        assert node.prefix_products == (1, 2, 22)

    def test_leaves_count_one(self, paper_example):
        space = materialize_links(paper_example.memo)
        annotate_counts(space)
        for node in space.operators.values():
            if node.arity == 0:
                assert node.count == 1


class TestCountsAgainstBruteForce:
    def test_count_equals_enumeration_q3(self, q3_space):
        total = q3_space.count()
        if total <= 50_000:
            plans = set()
            for rank, plan in q3_space.enumerate():
                plans.add(plan.fingerprint())
            assert len(plans) == total

    def test_operator_count_lazy(self, paper_example):
        space = materialize_links(paper_example.memo)
        gid, lid = map(int, paper_example.paper_ids["7.7"].split("."))
        node = space.operator(gid, lid)
        assert node.count is None
        assert operator_count(node) == 22
        assert node.count == 22

    def test_counting_is_exact_bigint(self, q5_space):
        # Q5's space is astronomically large (the paper reports 6.9e7 with
        # SQL Server's rule set; ours is larger); the count must stay an
        # exact Python integer.
        total = q5_space.count()
        assert total > 10**12
        assert isinstance(total, int)

    def test_total_stable_across_recount(self, paper_example):
        space = materialize_links(paper_example.memo)
        first = annotate_counts(space)
        second = annotate_counts(space)
        assert first == second


class TestZeroAlternativeOperators:
    def test_infeasible_operator_counts_zero(self, paper_example):
        """A merge join whose child group offers no sorted alternative
        roots zero plans and simply vanishes from the count."""
        from repro.algebra.expressions import ColumnId
        from repro.algebra.physical import MergeJoin

        memo = paper_example.memo
        by = ColumnId("b", "y")
        ay = ColumnId("a", "y")
        # b.y / a.y orders are delivered by nothing in the example memo.
        g3 = next(g for g in memo.groups if g.relations == frozenset(["a", "b"]))
        g1 = next(g for g in memo.groups if g.relations == frozenset(["a"]))
        g2 = next(g for g in memo.groups if g.relations == frozenset(["b"]))
        expr = memo.insert(
            MergeJoin(left_keys=(by,), right_keys=(ay,)), (g2.gid, g1.gid), g3
        )
        try:
            space = materialize_links(memo)
            total = annotate_counts(space)
            node = space.operator(expr.group_id, expr.local_id)
            assert node.count == 0
            # Root total grows only by what the new operator contributes
            # through group 3's parents: 2 extra per root op child sum... the
            # infeasible operator contributes nothing.
            assert total == EXPECTED_TOTAL
        finally:
            g3.exprs.remove(expr)
