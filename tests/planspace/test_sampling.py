"""Tests for uniform sampling (and the biased baseline)."""

import math
from collections import Counter

import pytest

from repro.planspace.links import materialize_links
from repro.planspace.sampling import UniformPlanSampler, naive_walk_sample
from repro.planspace.unranking import Unranker


@pytest.fixture
def small_space(paper_example):
    return materialize_links(paper_example.memo)


class TestUniformity:
    def test_chi_square_uniform_over_small_space(self, small_space):
        """Sampling frequencies over all 44 plans must pass a chi-square
        uniformity check (99.9% quantile for 43 dof is ~77.4)."""
        sampler = UniformPlanSampler(small_space, seed=123)
        unranker = Unranker(small_space)
        n = 44 * 250
        counts = Counter(sampler.sample_rank() for _ in range(n))
        expected = n / 44
        chi2 = sum(
            (counts.get(rank, 0) - expected) ** 2 / expected for rank in range(44)
        )
        assert chi2 < 77.4

    def test_every_plan_reachable(self, small_space):
        sampler = UniformPlanSampler(small_space, seed=9)
        seen = {sampler.sample_rank() for _ in range(44 * 60)}
        assert seen == set(range(44))

    def test_naive_walk_is_biased(self, small_space):
        """The random-walk baseline must fail the same uniformity check —
        this is exactly why the paper's unranking approach matters."""
        unranker = Unranker(small_space)
        n = 44 * 250
        plans = naive_walk_sample(small_space, n, seed=123)
        counts = Counter(unranker.rank(plan) for plan in plans)
        expected = n / 44
        chi2 = sum(
            (counts.get(rank, 0) - expected) ** 2 / expected for rank in range(44)
        )
        assert chi2 > 77.4


class TestSamplerApi:
    def test_deterministic_given_seed(self, small_space):
        a = UniformPlanSampler(small_space, seed=5).sample_ranks(20)
        b = UniformPlanSampler(small_space, seed=5).sample_ranks(20)
        assert a == b

    def test_different_seeds_differ(self, small_space):
        a = UniformPlanSampler(small_space, seed=5).sample_ranks(20)
        b = UniformPlanSampler(small_space, seed=6).sample_ranks(20)
        assert a != b

    def test_sample_returns_plans(self, small_space):
        plans = UniformPlanSampler(small_space, seed=1).sample(10)
        assert len(plans) == 10
        assert all(plan.size() >= 1 for plan in plans)

    def test_unique_sampling_distinct(self, small_space):
        ranks = UniformPlanSampler(small_space, seed=2).sample_ranks(
            30, unique=True
        )
        assert len(set(ranks)) == 30

    def test_unique_sampling_whole_space(self, small_space):
        ranks = UniformPlanSampler(small_space, seed=2).sample_ranks(
            44, unique=True
        )
        assert sorted(ranks) == list(range(44))

    def test_unique_overflow_rejected(self, small_space):
        with pytest.raises(ValueError):
            UniformPlanSampler(small_space, seed=2).sample_ranks(45, unique=True)

    def test_sample_one(self, small_space):
        plan = UniformPlanSampler(small_space, seed=3).sample_one()
        assert plan.size() >= 1

    def test_total_property(self, small_space):
        assert UniformPlanSampler(small_space).total == 44


class TestLargeSpaceSampling:
    def test_samples_from_astronomical_space(self, q5_space):
        plans = q5_space.sample(50, seed=42)
        assert len(plans) == 50
        sizes = {plan.size() for plan in plans}
        assert len(sizes) > 1  # different shapes get sampled

    def test_rank_distribution_spans_space(self, q5_space):
        total = q5_space.count()
        ranks = q5_space.sample_ranks(200, seed=1)
        assert min(ranks) < total * 0.1
        assert max(ranks) > total * 0.9
