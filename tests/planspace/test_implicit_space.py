"""Tests for the implicit plan-space engine (facade level).

The exhaustive engine-vs-engine sweeps live in
``tests/property/test_prop_implicit_equivalence.py``; these tests cover
the facade semantics, the API/CLI wiring, configuration gating, and a
few pointed equivalence spot-checks.
"""

import io

import pytest

from repro.api import PlanSpaceHandle, Session
from repro.cli import main as cli_main
from repro.errors import PlanSpaceError, RankOutOfRangeError
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    Optimizer,
    OptimizerOptions,
)
from repro.optimizer.rules import ImplementationConfig
from repro.planspace.implicit import ImplicitPlanSpace
from repro.planspace.space import PlanSpace
from repro.workloads.synthetic import chain_query, clique_query
from repro.workloads.tpch_queries import tpch_query


def _spaces(workload, **options_kwargs):
    options = OptimizerOptions(**options_kwargs)
    result = Optimizer(workload.catalog, options).optimize_sql(workload.sql)
    materialized = PlanSpace.from_result(result)
    implicit = ImplicitPlanSpace.from_sql(
        workload.catalog, workload.sql, options=options
    )
    return materialized, implicit


class TestCounting:
    def test_chain_matches_materialized(self):
        materialized, implicit = _spaces(chain_query(5, rows=5, seed=0))
        assert implicit.count() == materialized.count()

    def test_cross_products(self):
        materialized, implicit = _spaces(
            chain_query(5, rows=5, seed=0), allow_cross_products=True
        )
        assert implicit.count() == materialized.count()

    def test_virtual_physical_count_matches_memo(self):
        workload = clique_query(4, rows=5, seed=0)
        options = OptimizerOptions()
        result = Optimizer(workload.catalog, options).optimize_sql(workload.sql)
        implicit = ImplicitPlanSpace.from_sql(
            workload.catalog, workload.sql, options=options
        )
        assert (
            implicit.physical_operator_count()
            == result.memo.physical_expression_count()
        )
        assert implicit.group_count() == len(result.memo.groups)
        assert (
            implicit.logical_operator_count()
            == result.memo.logical_expression_count()
        )

    def test_order_by_filters_root(self, catalog):
        sql = tpch_query("Q3").sql + " ORDER BY revenue"
        implicit = ImplicitPlanSpace.from_sql(catalog, sql)
        result = Optimizer(catalog, OptimizerOptions()).optimize_sql(sql)
        materialized = PlanSpace.from_result(result)
        assert implicit.count() == materialized.count()
        for rank in (0, implicit.count() - 1):
            plan = implicit.unrank(rank)
            assert plan.op.delivered_order()[: len(result.root_order)] == (
                result.root_order
            )

    def test_turbo_and_reference_agree(self):
        workload = clique_query(5, rows=5, seed=0)
        reference = ImplicitPlanSpace.from_sql(
            workload.catalog, workload.sql, use_turbo=False
        )
        turbo = ImplicitPlanSpace.from_sql(
            workload.catalog, workload.sql, use_turbo=True
        )
        assert not reference.state.turbo_used
        assert turbo.state.turbo_used
        assert reference.count() == turbo.count()
        for rank in (0, 17, turbo.count() - 1):
            assert (
                reference.unrank(rank).fingerprint()
                == turbo.unrank(rank).fingerprint()
            )


class TestUnranking:
    def test_rank_roundtrip(self):
        _, implicit = _spaces(chain_query(4, rows=5, seed=0))
        for rank in range(0, implicit.count(), max(1, implicit.count() // 37)):
            assert implicit.rank(implicit.unrank(rank)) == rank

    def test_out_of_range(self):
        _, implicit = _spaces(chain_query(3, rows=5, seed=0))
        with pytest.raises(RankOutOfRangeError):
            implicit.unrank(implicit.count())
        with pytest.raises(RankOutOfRangeError):
            implicit.unrank(-1)

    def test_enumerate_matches_materialized(self):
        materialized, implicit = _spaces(chain_query(3, rows=5, seed=0))
        got = [
            (rank, plan.fingerprint()) for rank, plan in implicit.enumerate()
        ]
        expected = [
            (rank, plan.fingerprint()) for rank, plan in materialized.enumerate()
        ]
        assert got == expected

    def test_cardinalities_match(self):
        materialized, implicit = _spaces(chain_query(4, rows=5, seed=0))
        for rank in (0, 5, materialized.count() - 1):
            mat_nodes = list(materialized.unrank(rank).iter_nodes())
            imp_nodes = list(implicit.unrank(rank).iter_nodes())
            for mat_node, imp_node in zip(mat_nodes, imp_nodes):
                assert mat_node.cardinality == imp_node.cardinality


class TestSampling:
    def test_same_seed_same_ranks_as_materialized(self):
        materialized, implicit = _spaces(chain_query(5, rows=5, seed=0))
        assert materialized.sample_ranks(50, seed=11) == implicit.sample_ranks(
            50, seed=11
        )

    def test_unique_sampling(self):
        _, implicit = _spaces(chain_query(3, rows=5, seed=0))
        n = min(implicit.count(), 25)
        ranks = implicit.sample_ranks(n, seed=2, unique=True)
        assert len(set(ranks)) == n


class TestConfigurations:
    def test_rejects_transformation_strategy(self):
        workload = chain_query(3, rows=5, seed=0)
        with pytest.raises(PlanSpaceError):
            ImplicitPlanSpace.from_sql(
                workload.catalog,
                workload.sql,
                options=OptimizerOptions(
                    exploration=ExplorationStrategy.TRANSFORMATION
                ),
            )

    def test_rejects_pruning(self):
        workload = chain_query(3, rows=5, seed=0)
        with pytest.raises(PlanSpaceError):
            ImplicitPlanSpace.from_sql(
                workload.catalog,
                workload.sql,
                options=OptimizerOptions(pruning_factor=2.0),
            )

    @pytest.mark.parametrize(
        "config",
        [
            ImplementationConfig(enable_merge_join=False),
            ImplementationConfig(enable_hash_join=False),
            ImplementationConfig(enable_index_scans=False),
            ImplementationConfig(enable_sort_enforcers=False),
            ImplementationConfig(enable_index_nl_join=True),
        ],
        ids=["no-merge", "no-hash", "no-index", "no-enforcers", "index-nlj"],
    )
    def test_ablations_match_materialized(self, config):
        workload = chain_query(4, rows=5, seed=0)
        materialized, implicit = _spaces(workload, implementation=config)
        assert implicit.count() == materialized.count()
        for rank in (0, materialized.count() - 1):
            assert (
                implicit.unrank(rank).fingerprint()
                == materialized.unrank(rank).fingerprint()
            )

    def test_redundant_sorts_ablation(self):
        workload = chain_query(4, rows=5, seed=0)
        options = OptimizerOptions()
        result = Optimizer(workload.catalog, options).optimize_sql(workload.sql)
        materialized = PlanSpace.from_result(
            result, include_redundant_sorts=False
        )
        implicit = ImplicitPlanSpace.from_sql(
            workload.catalog,
            workload.sql,
            options=options,
            include_redundant_sorts=False,
        )
        assert implicit.count() == materialized.count()
        assert (
            implicit.unrank(7).fingerprint()
            == materialized.unrank(7).fingerprint()
        )


class TestSessionApi:
    def test_count_only_handle(self):
        session = Session.tpch(seed=0)
        handle = session.plan_space(tpch_query("Q3").sql, count_only=True)
        assert isinstance(handle, PlanSpaceHandle)
        full = session.plan_space(tpch_query("Q3").sql)
        assert handle.count() == full.count()
        assert len(handle) == handle.count()
        assert handle.unrank(13).fingerprint() == full.unrank(13).fingerprint()
        assert "implicit plan space" in handle.describe()

    def test_handle_materialize(self):
        session = Session.tpch(seed=0)
        handle = session.plan_space(tpch_query("Q3").sql, count_only=True)
        assert handle.materialize().count() == handle.count()

    def test_count_plans(self):
        session = Session.tpch(seed=0)
        sql = tpch_query("Q3").sql
        assert session.count_plans(sql) == session.count_plans(
            sql, implicit=False
        )

    def test_iterate_plans_implicit_matches(self):
        session = Session.tpch(seed=0)
        sql = (
            "SELECT n.n_name, r.r_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey"
        )
        materialized = {
            rank: result.rows
            for rank, result in session.iterate_plans(sql, sample=5, seed=3)
        }
        implicit = {
            rank: result.rows
            for rank, result in session.iterate_plans(
                sql, sample=5, seed=3, implicit=True
            )
        }
        assert materialized == implicit


class TestCli:
    def run(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_count_implicit_matches(self):
        code_a, implicit = self.run("count", "Q3", "--implicit")
        code_b, materialized = self.run("count", "Q3")
        assert code_a == code_b == 0
        pick = lambda text: text.split("plans: ")[1]
        assert pick(implicit) == pick(materialized)
        assert "(virtual)" in implicit

    def test_sample_implicit_same_ranks(self):
        code_a, implicit = self.run(
            "sample", "Q3", "-n", "5", "--seed", "9", "--implicit"
        )
        code_b, materialized = self.run("sample", "Q3", "-n", "5", "--seed", "9")
        assert code_a == code_b == 0
        ranks = lambda text: [
            line.split()[0] for line in text.splitlines() if line.startswith("  #")
        ]
        assert ranks(implicit) == ranks(materialized)

    def test_sample_implicit_analyze(self):
        code, text = self.run(
            "sample", "Q3", "-n", "4", "--implicit", "--analyze"
        )
        assert code == 0
        assert "(implicit)" in text
