"""Tests for JSON export."""

import json

from repro.planspace.export import (
    memo_to_dict,
    plan_to_dict,
    space_to_dict,
    to_json,
)
from repro.planspace.links import materialize_links
from repro.planspace.counting import annotate_counts


class TestMemoExport:
    def test_structure(self, paper_example):
        data = memo_to_dict(paper_example.memo)
        assert data["group_count"] == len(paper_example.memo.groups)
        assert data["root_group"] == paper_example.memo.root_group_id
        first = data["groups"][0]
        assert {"gid", "relations", "cardinality", "expressions"} <= set(first)

    def test_expression_kinds(self, paper_example):
        data = memo_to_dict(paper_example.memo)
        kinds = {
            e["kind"] for g in data["groups"] for e in g["expressions"]
        }
        assert kinds == {"logical", "physical"}

    def test_enforcers_marked(self, paper_example):
        data = memo_to_dict(paper_example.memo)
        enforcers = [
            e
            for g in data["groups"]
            for e in g["expressions"]
            if e["enforcer"]
        ]
        assert len(enforcers) == 1
        assert "Sort" in enforcers[0]["operator"]

    def test_json_serializable(self, paper_example):
        text = to_json(memo_to_dict(paper_example.memo))
        assert json.loads(text)["group_count"] > 0


class TestSpaceExport:
    def test_counts_included(self, paper_example):
        space = materialize_links(paper_example.memo)
        annotate_counts(space)
        data = space_to_dict(space)
        assert data["total"] == 44
        by_id = {op["id"]: op for op in data["operators"]}
        root_id = paper_example.paper_ids["7.7"]
        assert by_id[root_id]["count"] == 22
        assert by_id[root_id]["child_sums"] == [2, 11]

    def test_alternatives_are_ids(self, paper_example):
        space = materialize_links(paper_example.memo)
        annotate_counts(space)
        data = space_to_dict(space)
        by_id = {op["id"]: op for op in data["operators"]}
        root = by_id[paper_example.paper_ids["7.7"]]
        assert len(root["alternatives"]) == 2
        assert all(isinstance(i, str) for alt in root["alternatives"] for i in alt)


class TestPlanExport:
    def test_nested_structure(self, q3_space):
        plan = q3_space.unrank(0)
        data = plan_to_dict(plan)
        assert data["id"] == plan.expr_id

        def count_nodes(node):
            return 1 + sum(count_nodes(c) for c in node["children"])

        assert count_nodes(data) == plan.size()

    def test_file_output(self, q3_space, tmp_path):
        plan = q3_space.unrank(5)
        path = tmp_path / "plan.json"
        to_json(plan_to_dict(plan), path=str(path))
        assert json.loads(path.read_text())["id"] == plan.expr_id
