"""Tests for scalar expressions: fingerprints, references, rendering."""

import pytest

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryMinus,
    make_conjunction,
    split_conjuncts,
)
from repro.errors import AlgebraError

A = ColumnRef(ColumnId("t", "a"))
B = ColumnRef(ColumnId("t", "b"))
FIVE = Literal(5)


class TestReferences:
    def test_column_ref(self):
        assert A.references() == {ColumnId("t", "a")}

    def test_literal_empty(self):
        assert FIVE.references() == frozenset()

    def test_nested(self):
        expr = BoolExpr(
            BoolOp.AND,
            (Comparison(CompOp.EQ, A, FIVE), Comparison(CompOp.LT, B, FIVE)),
        )
        assert expr.references() == {ColumnId("t", "a"), ColumnId("t", "b")}

    def test_count_star_empty(self):
        assert AggregateCall(AggFunc.COUNT, None).references() == frozenset()


class TestFingerprints:
    def test_equality_commutes(self):
        ab = Comparison(CompOp.EQ, A, B)
        ba = Comparison(CompOp.EQ, B, A)
        assert ab.fingerprint() == ba.fingerprint()

    def test_inequality_flips(self):
        lt = Comparison(CompOp.LT, A, B)
        gt = Comparison(CompOp.GT, B, A)
        assert lt.fingerprint() == gt.fingerprint()

    def test_lt_vs_le_differ(self):
        lt = Comparison(CompOp.LT, A, B)
        le = Comparison(CompOp.LE, A, B)
        assert lt.fingerprint() != le.fingerprint()

    def test_and_argument_order_irrelevant(self):
        c1 = Comparison(CompOp.EQ, A, FIVE)
        c2 = Comparison(CompOp.LT, B, FIVE)
        x = BoolExpr(BoolOp.AND, (c1, c2))
        y = BoolExpr(BoolOp.AND, (c2, c1))
        assert x.fingerprint() == y.fingerprint()

    def test_addition_commutes(self):
        assert (
            Arithmetic("+", A, B).fingerprint()
            == Arithmetic("+", B, A).fingerprint()
        )

    def test_subtraction_does_not_commute(self):
        assert (
            Arithmetic("-", A, B).fingerprint()
            != Arithmetic("-", B, A).fingerprint()
        )

    def test_literal_type_matters(self):
        assert Literal(1).fingerprint() != Literal(1.0).fingerprint()

    def test_in_list_order_irrelevant(self):
        x = InList(A, (1, 2))
        y = InList(A, (2, 1))
        assert x.fingerprint() == y.fingerprint()

    def test_negation_matters(self):
        assert Like(A, "%x%").fingerprint() != Like(A, "%x%", negated=True).fingerprint()


class TestValidation:
    def test_not_takes_one_argument(self):
        with pytest.raises(AlgebraError):
            BoolExpr(BoolOp.NOT, (A, B))

    def test_and_needs_two(self):
        with pytest.raises(AlgebraError):
            BoolExpr(BoolOp.AND, (A,))

    def test_unknown_arithmetic_op(self):
        with pytest.raises(AlgebraError):
            Arithmetic("%", A, B)

    def test_empty_in_list(self):
        with pytest.raises(AlgebraError):
            InList(A, ())

    def test_sum_star_rejected(self):
        with pytest.raises(AlgebraError):
            AggregateCall(AggFunc.SUM, None)


class TestRendering:
    def test_comparison(self):
        assert Comparison(CompOp.LE, A, FIVE).render() == "t.a <= 5"

    def test_string_literal_escaped(self):
        assert Literal("it's").render() == "'it''s'"

    def test_bool_render(self):
        expr = BoolExpr(BoolOp.OR, (Comparison(CompOp.EQ, A, FIVE), IsNull(B)))
        assert "OR" in expr.render()

    def test_unary_minus(self):
        assert UnaryMinus(A).render() == "(-t.a)"

    def test_aggregate(self):
        assert AggregateCall(AggFunc.COUNT, None).render() == "COUNT(*)"


class TestConjuncts:
    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_split_flattens_nested_ands(self):
        c1 = Comparison(CompOp.EQ, A, FIVE)
        c2 = Comparison(CompOp.LT, B, FIVE)
        c3 = IsNull(A)
        nested = BoolExpr(BoolOp.AND, (c1, BoolExpr(BoolOp.AND, (c2, c3))))
        assert split_conjuncts(nested) == [c1, c2, c3]

    def test_split_keeps_or_atomic(self):
        disjunction = BoolExpr(
            BoolOp.OR,
            (Comparison(CompOp.EQ, A, FIVE), Comparison(CompOp.EQ, B, FIVE)),
        )
        assert split_conjuncts(disjunction) == [disjunction]

    def test_make_conjunction_empty(self):
        assert make_conjunction([]) is None

    def test_make_conjunction_single(self):
        c = Comparison(CompOp.EQ, A, FIVE)
        assert make_conjunction([c]) is c

    def test_make_conjunction_dedupes(self):
        c1 = Comparison(CompOp.EQ, A, B)
        c2 = Comparison(CompOp.EQ, B, A)  # same canonical conjunct
        result = make_conjunction([c1, c2])
        assert not isinstance(result, BoolExpr)

    def test_make_conjunction_canonical_order(self):
        c1 = Comparison(CompOp.EQ, A, FIVE)
        c2 = Comparison(CompOp.LT, B, FIVE)
        x = make_conjunction([c1, c2])
        y = make_conjunction([c2, c1])
        assert x.fingerprint() == y.fingerprint()
        assert x == y

    def test_roundtrip_split_make(self):
        c1 = Comparison(CompOp.EQ, A, FIVE)
        c2 = Comparison(CompOp.LT, B, FIVE)
        rebuilt = make_conjunction(split_conjuncts(make_conjunction([c1, c2])))
        assert set(split_conjuncts(rebuilt)) == {c1, c2}
