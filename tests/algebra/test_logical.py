"""Tests for logical operators."""

import pytest

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
)
from repro.algebra.logical import (
    LogicalAggregate,
    LogicalGet,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
)
from repro.errors import AlgebraError

A = ColumnRef(ColumnId("t", "a"))
B = ColumnRef(ColumnId("u", "b"))
PRED = Comparison(CompOp.EQ, A, B)


class TestKeys:
    def test_get_key_includes_alias_and_predicate(self):
        g1 = LogicalGet("t", "t1")
        g2 = LogicalGet("t", "t2")
        assert g1.key() != g2.key()
        g3 = LogicalGet("t", "t1", PRED)
        assert g1.key() != g3.key()

    def test_join_key_by_predicate(self):
        assert LogicalJoin(PRED).key() != LogicalJoin(None).key()
        assert LogicalJoin(PRED).key() == LogicalJoin(PRED).key()

    def test_cross_product_detection(self):
        assert LogicalJoin(None).is_cross_product()
        assert not LogicalJoin(PRED).is_cross_product()

    def test_aggregate_key(self):
        agg = (("c", AggregateCall(AggFunc.COUNT, None)),)
        a1 = LogicalAggregate((ColumnId("t", "a"),), agg)
        a2 = LogicalAggregate((), agg)
        assert a1.key() != a2.key()


class TestArity:
    def test_arities(self):
        assert LogicalGet("t", "t").arity == 0
        assert LogicalJoin(None).arity == 2
        assert LogicalSelect(PRED).arity == 1
        assert LogicalProject((("x", A),)).arity == 1
        assert LogicalAggregate((), (("c", AggregateCall(AggFunc.COUNT, None)),)).arity == 1


class TestValidation:
    def test_select_requires_predicate(self):
        with pytest.raises(AlgebraError):
            LogicalSelect(None)

    def test_project_requires_outputs(self):
        with pytest.raises(AlgebraError):
            LogicalProject(())

    def test_project_duplicate_names(self):
        with pytest.raises(AlgebraError):
            LogicalProject((("x", A), ("x", B)))

    def test_aggregate_duplicate_names(self):
        call = AggregateCall(AggFunc.COUNT, None)
        with pytest.raises(AlgebraError):
            LogicalAggregate((), (("c", call), ("c", call)))


class TestRendering:
    def test_get(self):
        assert "Get(t AS x)" in LogicalGet("t", "x").render()

    def test_join_with_predicate(self):
        assert "t.a = u.b" in LogicalJoin(PRED).render()

    def test_aggregate(self):
        agg = LogicalAggregate(
            (ColumnId("t", "a"),), (("c", AggregateCall(AggFunc.COUNT, None)),)
        )
        text = agg.render()
        assert "t.a" in text and "COUNT(*)" in text
