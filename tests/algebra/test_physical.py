"""Tests for physical operators: properties, keys, enforcer flags."""

import pytest

from repro.algebra.expressions import ColumnId, ColumnRef, Comparison, CompOp
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.errors import AlgebraError

A = ColumnId("t", "a")
B = ColumnId("u", "b")
PRED = Comparison(CompOp.EQ, ColumnRef(A), ColumnRef(B))


class TestDeliveredOrders:
    def test_table_scan_unordered(self):
        assert TableScan("t", "t").delivered_order() == ()

    def test_index_scan_delivers_key(self):
        scan = IndexScan("t", "t", "idx", (A,))
        assert scan.delivered_order() == (A,)

    def test_sort_delivers_order(self):
        assert Sort((A, B)).delivered_order() == (A, B)

    def test_merge_join_delivers_left_keys(self):
        join = MergeJoin((A,), (B,))
        assert join.delivered_order() == (A,)

    def test_hash_join_unordered(self):
        assert HashJoin((A,), (B,)).delivered_order() == ()

    def test_stream_aggregate_delivers_grouping(self):
        agg = StreamAggregate((A,), ())
        assert agg.delivered_order() == (A,)

    def test_hash_aggregate_unordered(self):
        assert HashAggregate((A,), ()).delivered_order() == ()


class TestRequiredChildOrders:
    def test_merge_join_requires_both_sides(self):
        join = MergeJoin((A,), (B,))
        assert join.required_child_order(0) == (A,)
        assert join.required_child_order(1) == (B,)

    def test_stream_aggregate_requires_grouping(self):
        agg = StreamAggregate((A,), ())
        assert agg.required_child_order(0) == (A,)

    def test_scalar_stream_aggregate_requires_nothing(self):
        agg = StreamAggregate((), ())
        assert agg.required_child_order(0) == ()

    def test_hash_join_requires_nothing(self):
        join = HashJoin((A,), (B,))
        assert join.required_child_order(0) == ()
        assert join.required_child_order(1) == ()

    def test_sort_requires_nothing(self):
        assert Sort((A,)).required_child_order(0) == ()


class TestEnforcerFlag:
    def test_only_sort_is_enforcer(self):
        assert Sort((A,)).is_enforcer
        for op in (
            TableScan("t", "t"),
            HashJoin((A,), (B,)),
            MergeJoin((A,), (B,)),
            NestedLoopJoin(None),
            PhysicalFilter(PRED),
            HashAggregate((), ()),
            StreamAggregate((), ()),
            PhysicalProject((("x", ColumnRef(A)),)),
        ):
            assert not op.is_enforcer, op.name


class TestValidation:
    def test_hash_join_key_lists_must_match(self):
        with pytest.raises(AlgebraError):
            HashJoin((A,), ())
        with pytest.raises(AlgebraError):
            HashJoin((), ())

    def test_merge_join_key_lists_must_match(self):
        with pytest.raises(AlgebraError):
            MergeJoin((A, B), (B,))

    def test_sort_requires_order(self):
        with pytest.raises(AlgebraError):
            Sort(())

    def test_index_scan_requires_key(self):
        with pytest.raises(AlgebraError):
            IndexScan("t", "t", "idx", ())


class TestKeys:
    def test_scan_keys_differ_by_alias(self):
        assert TableScan("t", "x").key() != TableScan("t", "y").key()

    def test_join_keys_include_residual(self):
        j1 = HashJoin((A,), (B,))
        j2 = HashJoin((A,), (B,), residual=PRED)
        assert j1.key() != j2.key()

    def test_hash_and_merge_keys_differ(self):
        assert HashJoin((A,), (B,)).key() != MergeJoin((A,), (B,)).key()

    def test_arity(self):
        assert TableScan("t", "t").arity == 0
        assert Sort((A,)).arity == 1
        assert MergeJoin((A,), (B,)).arity == 2
