"""Tests for physical properties (sort orders)."""

from repro.algebra.expressions import ColumnId
from repro.algebra.properties import NO_ORDER, PhysicalProps, order_satisfies

A = ColumnId("t", "a")
B = ColumnId("t", "b")
C = ColumnId("t", "c")


class TestOrderSatisfies:
    def test_empty_requirement_always_satisfied(self):
        assert order_satisfies((), ())
        assert order_satisfies((A,), ())

    def test_exact_match(self):
        assert order_satisfies((A, B), (A, B))

    def test_prefix_satisfies(self):
        assert order_satisfies((A, B, C), (A,))
        assert order_satisfies((A, B, C), (A, B))

    def test_shorter_delivery_fails(self):
        assert not order_satisfies((A,), (A, B))

    def test_wrong_column_fails(self):
        assert not order_satisfies((B,), (A,))

    def test_non_prefix_fails(self):
        assert not order_satisfies((B, A), (A,))

    def test_no_order_constant(self):
        assert NO_ORDER == ()


class TestPhysicalProps:
    def test_satisfies_delegates(self):
        assert PhysicalProps((A, B)).satisfies(PhysicalProps((A,)))
        assert not PhysicalProps(()).satisfies(PhysicalProps((A,)))

    def test_trivial(self):
        assert PhysicalProps().is_trivial()
        assert not PhysicalProps((A,)).is_trivial()

    def test_render(self):
        assert PhysicalProps().render() == "(any)"
        assert "t.a" in PhysicalProps((A,)).render()
