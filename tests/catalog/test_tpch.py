"""Tests for the TPC-H catalog."""

import pytest

from repro.catalog.tpch import TPCH_TABLE_ROWS, tpch_catalog


class TestTpchCatalog:
    def test_all_eight_tables_present(self):
        catalog = tpch_catalog()
        for name in TPCH_TABLE_ROWS:
            assert catalog.has_table(name)

    def test_sf1_cardinalities(self):
        catalog = tpch_catalog(1.0)
        assert catalog.table_stats("lineitem").row_count == 6_001_215
        assert catalog.table_stats("orders").row_count == 1_500_000
        assert catalog.table_stats("region").row_count == 5

    def test_scale_factor_scales_big_tables(self):
        catalog = tpch_catalog(0.01)
        assert catalog.table_stats("lineitem").row_count == pytest.approx(
            60_012, rel=0.01
        )

    def test_scale_factor_keeps_fixed_tables(self):
        catalog = tpch_catalog(0.01)
        assert catalog.table_stats("nation").row_count == 25
        assert catalog.table_stats("region").row_count == 5

    def test_foreign_key_indexes_exist(self):
        catalog = tpch_catalog()
        names = {i.name for i in catalog.indexes("lineitem")}
        assert "lineitem_pk" in names
        assert "lineitem_partkey" in names
        assert "lineitem_suppkey" in names

    def test_every_table_has_clustered_pk_index(self):
        catalog = tpch_catalog()
        for name in TPCH_TABLE_ROWS:
            assert any(i.clustered for i in catalog.indexes(name)), name

    def test_distinct_counts_follow_spec(self):
        catalog = tpch_catalog(1.0)
        stats = catalog.table_stats("lineitem")
        assert stats.distinct("l_discount") == 11
        assert stats.distinct("l_returnflag") == 3
        assert catalog.table_stats("part").distinct("p_type") == 150
        assert catalog.table_stats("nation").distinct("n_name") == 25

    def test_date_bounds_are_iso_strings(self):
        stats = catalog_stats = tpch_catalog().table_stats("orders")
        column = stats.column("o_orderdate")
        assert isinstance(column.lo, str) and column.lo.startswith("1992")

    def test_custkey_reflects_two_thirds_rule(self):
        stats = tpch_catalog(1.0).table_stats("orders")
        assert stats.distinct("o_custkey") == 100_000
