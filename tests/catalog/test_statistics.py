"""Tests for statistics objects."""

import pytest

from repro.catalog.statistics import ColumnStats, TableStats
from repro.errors import CatalogError


class TestColumnStats:
    def test_negative_distinct_rejected(self):
        with pytest.raises(CatalogError):
            ColumnStats(distinct=-1)

    def test_null_fraction_validated(self):
        with pytest.raises(CatalogError):
            ColumnStats(distinct=1, null_fraction=1.5)

    def test_range_width_numeric(self):
        assert ColumnStats(distinct=10, lo=0, hi=5).range_width() == 5.0

    def test_range_width_strings_is_none(self):
        assert ColumnStats(distinct=10, lo="a", hi="z").range_width() is None

    def test_range_width_degenerate_is_none(self):
        assert ColumnStats(distinct=1, lo=3, hi=3).range_width() is None


class TestTableStats:
    def test_unknown_column_gets_conservative_default(self):
        stats = TableStats(row_count=100)
        assert stats.column("anything").distinct == 100

    def test_distinct_clamped_to_rows(self):
        stats = TableStats(row_count=10, columns={"c": ColumnStats(distinct=500)})
        assert stats.distinct("c") == 10

    def test_distinct_at_least_one(self):
        stats = TableStats(row_count=10, columns={"c": ColumnStats(distinct=0)})
        assert stats.distinct("c") == 1

    def test_negative_rows_rejected(self):
        with pytest.raises(CatalogError):
            TableStats(row_count=-5)


class TestCollect:
    def test_collect_basic(self):
        rows = [(1, "x"), (2, "x"), (3, "y")]
        stats = TableStats.collect(rows, ("id", "tag"))
        assert stats.row_count == 3
        assert stats.columns["id"].distinct == 3
        assert stats.columns["tag"].distinct == 2
        assert stats.columns["id"].lo == 1
        assert stats.columns["id"].hi == 3

    def test_collect_with_nulls(self):
        rows = [(1,), (None,), (3,)]
        stats = TableStats.collect(rows, ("v",))
        assert stats.columns["v"].null_fraction == pytest.approx(1 / 3)
        assert stats.columns["v"].distinct == 2

    def test_collect_empty(self):
        stats = TableStats.collect([], ("v",))
        assert stats.row_count == 0
        assert stats.columns["v"].distinct == 1

    def test_collect_mixed_types_no_bounds(self):
        rows = [(1,), ("x",)]
        stats = TableStats.collect(rows, ("v",))
        assert stats.columns["v"].lo is None
