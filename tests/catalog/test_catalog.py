"""Tests for the catalog container."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.catalog.statistics import TableStats
from repro.errors import CatalogError


def _schema(name="t"):
    return TableSchema(name=name, columns=(Column("a", ColumnType.INTEGER),))


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(_schema(), TableStats(row_count=5))
        assert catalog.has_table("t")
        assert catalog.table("t").name == "t"
        assert catalog.table_stats("t").row_count == 5

    def test_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.add_table(_schema("Orders"))
        assert catalog.has_table("ORDERS")
        assert catalog.table("orders").name == "Orders"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        with pytest.raises(CatalogError):
            catalog.add_table(_schema())

    def test_unknown_table_raises(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("missing")
        with pytest.raises(CatalogError):
            catalog.table_stats("missing")

    def test_default_stats_when_omitted(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        assert catalog.table_stats("t").row_count == 0

    def test_set_stats(self):
        catalog = Catalog()
        catalog.add_table(_schema())
        catalog.set_stats("t", TableStats(row_count=42))
        assert catalog.table_stats("t").row_count == 42

    def test_set_stats_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().set_stats("nope", TableStats(row_count=1))

    def test_contains_and_names(self):
        catalog = Catalog()
        catalog.add_table(_schema("x"))
        assert "x" in catalog
        assert catalog.table_names() == ["x"]
