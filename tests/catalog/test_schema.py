"""Tests for schema objects."""

import pytest

from repro.catalog.schema import Column, ColumnType, ForeignKey, Index, TableSchema
from repro.errors import CatalogError


def _table(**overrides):
    params = dict(
        name="t",
        columns=(Column("a", ColumnType.INTEGER), Column("b", ColumnType.STRING)),
        primary_key=("a",),
    )
    params.update(overrides)
    return TableSchema(**params)


class TestColumnType:
    def test_python_types(self):
        assert ColumnType.INTEGER.python_type() is int
        assert ColumnType.FLOAT.python_type() is float
        assert ColumnType.STRING.python_type() is str
        assert ColumnType.DATE.python_type() is str

    def test_is_numeric(self):
        assert ColumnType.INTEGER.is_numeric()
        assert ColumnType.FLOAT.is_numeric()
        assert not ColumnType.DATE.is_numeric()


class TestColumn:
    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("", ColumnType.INTEGER)


class TestIndex:
    def test_empty_key_rejected(self):
        with pytest.raises(CatalogError):
            Index("i", "t", ())

    def test_index_on_unknown_column_rejected(self):
        with pytest.raises(CatalogError):
            _table(indexes=(Index("i", "t", ("missing",)),))

    def test_index_on_other_table_rejected(self):
        with pytest.raises(CatalogError):
            _table(indexes=(Index("i", "other", ("a",)),))


class TestForeignKey:
    def test_mismatched_column_lists_rejected(self):
        with pytest.raises(CatalogError):
            ForeignKey("t", ("a", "b"), "u", ("x",))


class TestTableSchema:
    def test_column_lookup(self):
        table = _table()
        assert table.column("a").type is ColumnType.INTEGER
        assert table.column_position("b") == 1
        assert table.has_column("a")
        assert not table.has_column("zz")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            _table().column("zz")
        with pytest.raises(CatalogError):
            _table().column_position("zz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            _table(
                columns=(
                    Column("a", ColumnType.INTEGER),
                    Column("a", ColumnType.STRING),
                )
            )

    def test_pk_must_exist(self):
        with pytest.raises(CatalogError):
            _table(primary_key=("missing",))

    def test_column_names_order(self):
        assert _table().column_names() == ("a", "b")
