"""Equivalence of the implicit plan-space engine against the
materialized pipeline.

The implicit engine (:mod:`repro.planspace.implicit`) promises the
*numerically and structurally identical* plan space as the materialized
path — same total ``N``, same per-operator counts ``N(v)``, same
rank -> plan bijection (down to the memo's ``group.local`` identifiers),
same sampled rank streams — computed without ever creating a physical
``GroupExpr``.  These sweeps assert exactly that over chain/star/clique/
cycle shapes in both cross-product modes, for both the reference
(pure-Python) and turbo (vectorized) counting paths:

* ``N`` and the virtual physical-operator census match the memo;
* every group's implicit operator table matches the materialized linked
  space row for row: local id, operator identity, and count ``N(v)``;
* sampled ranks round-trip (``rank(unrank(r)) == r``) and unrank to
  byte-identical plans in both engines;
* the shared-seed sampler contract holds across engines.

Smaller sizes run in the smoke tier; the n in {7, 8} sweeps are marked
``slow`` (run with ``pytest -m slow`` or ``-m ""``).
"""

from __future__ import annotations

import random

import pytest

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.planspace.space import PlanSpace
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

SHAPES = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

FAST_CASES = [
    (shape, n, cross)
    for shape in SHAPES
    for n in (3, 4, 5, 6)
    for cross in (False, True)
    if not (shape == "clique" and cross and n > 5)  # keep the smoke tier quick
]

SLOW_CASES = [
    (shape, n, cross)
    for shape in SHAPES
    for n in (7, 8)
    for cross in (False, True)
]

SAMPLED_RANKS = 25


def _check_equivalence(shape: str, n: int, allow_cross: bool) -> None:
    workload = SHAPES[shape](n, rows=5, seed=0)
    options = OptimizerOptions(allow_cross_products=allow_cross)
    result = Optimizer(workload.catalog, options).optimize_sql(workload.sql)
    materialized = PlanSpace.from_result(result)

    for use_turbo in (False, True):
        implicit = ImplicitPlanSpace.from_sql(
            workload.catalog, workload.sql, options=options, use_turbo=use_turbo
        )
        tag = (shape, n, allow_cross, "turbo" if use_turbo else "reference")
        assert implicit.state.turbo_used is use_turbo, tag

        # space totals and the operator census
        total = materialized.count()
        assert implicit.count() == total, tag
        assert (
            implicit.physical_operator_count()
            == result.memo.physical_expression_count()
        ), tag

        # per-group, per-operator counts: the implicit tables must match
        # the materialized linked space row for row
        tables = implicit.unranker.tables
        for group in result.memo.groups:
            table = tables.table(group.gid)
            rows = {row.local_id: row for row in table.rows}
            physical = group.physical_exprs()
            assert len(rows) == len(physical), (tag, group.gid)
            for expr in physical:
                linked = materialized.linked.operators[
                    (group.gid, expr.local_id)
                ]
                row = rows[expr.local_id]
                assert row.count == linked.count, (tag, expr.id_str)
                op = tables.operator(group.gid, row)
                assert op.key() == expr.op.key(), (tag, expr.id_str)

        # rank -> plan bijection on a sampled rank set (plus both ends)
        rng = random.Random(f"{shape}/{n}/{allow_cross}")
        ranks = sorted(
            {0, total - 1, *(rng.randrange(total) for _ in range(SAMPLED_RANKS))}
        )
        cost_model = result.cost_model
        for rank in ranks:
            mat_plan = materialized.unrank(rank)
            imp_plan = implicit.unrank(rank)
            assert imp_plan.fingerprint() == mat_plan.fingerprint(), (tag, rank)
            assert imp_plan.render() == mat_plan.render(), (tag, rank)
            assert implicit.rank(imp_plan) == rank, (tag, rank)
            assert materialized.rank(imp_plan) == rank, (tag, rank)
            # cardinality parity: both engines annotate every node with
            # the same real estimate (never a 0.0 placeholder), so both
            # plans price identically under one cost model
            for imp_node, mat_node in zip(
                imp_plan.iter_nodes(), mat_plan.iter_nodes()
            ):
                assert imp_node.cardinality == pytest.approx(
                    mat_node.cardinality, rel=1e-12
                ), (tag, rank, imp_node.expr_id)
                assert mat_node.cardinality > 0.0, (tag, rank)
            assert cost_model.plan_cost(imp_plan) == pytest.approx(
                cost_model.plan_cost(mat_plan), rel=1e-12
            ), (tag, rank)

        # shared-seed sampler contract
        assert materialized.sample_ranks(40, seed=7) == implicit.sample_ranks(
            40, seed=7
        ), tag


@pytest.mark.parametrize("shape,n,cross", FAST_CASES)
def test_implicit_equivalence(shape, n, cross):
    _check_equivalence(shape, n, cross)


@pytest.mark.slow
@pytest.mark.parametrize("shape,n,cross", SLOW_CASES)
def test_implicit_equivalence_slow(shape, n, cross):
    _check_equivalence(shape, n, cross)
