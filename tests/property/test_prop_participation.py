"""Property-based tests for exact participation counts.

Invariants checked on random memos:

* participation(v) equals brute-force containment counting;
* every plan contains exactly one root, so root participations sum to N;
* participation never exceeds N;
* expected-per-plan occurrence equals participation/N (sampled check).
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.planspace.participation import participation_counts
from repro.planspace.space import PlanSpace

from tests.property.test_prop_unranking import build_random_memo


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n_leaves=st.integers(min_value=1, max_value=4),
    sorted_scans=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_participation_matches_brute_force(seed, n_leaves, sorted_scans):
    memo = build_random_memo(seed, n_leaves, sorted_scans)
    space = PlanSpace.from_memo(memo)
    exact = participation_counts(space.linked)

    brute: Counter = Counter()
    total = space.count()
    if total > 4_000:
        return  # keep enumeration bounded; smaller seeds cover correctness
    for _, plan in space.enumerate():
        for node in plan.iter_nodes():
            brute[node.expr_id] += 1
    for op_id, count in exact.items():
        assert count == brute.get(op_id, 0), op_id


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n_leaves=st.integers(min_value=2, max_value=5),
    sorted_scans=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_root_participations_sum_to_total(seed, n_leaves, sorted_scans):
    """Every plan contains exactly one root-group operator, so the root
    participations sum to N.

    This holds when no root operator can also appear *inside* another
    root's plan; with >= 2 leaves the root group is a join group, which
    carries no enforcers, so the precondition is satisfied.  (For a
    single-group memo a scan is both a root and the Sort root's child,
    and containment double-counts — by design.)
    """
    memo = build_random_memo(seed, n_leaves, sorted_scans)
    space = PlanSpace.from_memo(memo)
    assert not any(root.expr.is_enforcer for root in space.linked.roots)
    exact = participation_counts(space.linked)
    root_sum = sum(exact[root.id_str] for root in space.linked.roots)
    assert root_sum == space.count()


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n_leaves=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_participation_bounded(seed, n_leaves):
    memo = build_random_memo(seed, n_leaves, sorted_scans=True)
    space = PlanSpace.from_memo(memo)
    exact = participation_counts(space.linked)
    total = space.count()
    assert all(0 <= count <= total for count in exact.values())
