"""Property-based tests: plan-result equivalence on random queries.

Hypothesis drives the Section 4 methodology itself: random synthetic
workloads (random join-graph shape, data seed, cross-product policy),
random plan samples — every plan must agree with the optimizer's choice.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.executor.executor import PlanExecutor
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.testing.diff import canonical_rows
from repro.workloads.synthetic import chain_query, clique_query, star_query

_MAKERS = {"chain": chain_query, "star": star_query, "clique": clique_query}


@given(
    shape=st.sampled_from(sorted(_MAKERS)),
    n_tables=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
    allow_cross=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_sampled_plans_result_equivalent(shape, n_tables, seed, allow_cross):
    workload = _MAKERS[shape](n_tables, rows=6, seed=seed)
    result = Optimizer(
        workload.catalog, OptimizerOptions(allow_cross_products=allow_cross)
    ).optimize_sql(workload.sql)
    space = PlanSpace.from_result(result)
    executor = PlanExecutor(workload.database, check_orders=True)
    reference = canonical_rows(executor.execute(result.best_plan).rows)
    for plan in space.sample(8, seed=seed):
        assert canonical_rows(executor.execute(plan).rows) == reference


@given(
    n_tables=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=15, deadline=None)
def test_best_plan_cost_is_global_minimum(n_tables, seed):
    """The optimizer's cost must equal the minimum over the whole space."""
    workload = chain_query(n_tables, rows=5, seed=seed)
    result = Optimizer(
        workload.catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(workload.sql)
    space = PlanSpace.from_result(result)
    total = space.count()
    if total > 20_000:
        return  # keep the brute force bounded
    best = min(
        result.cost_model.plan_cost(plan) for _, plan in space.enumerate()
    )
    assert abs(best - result.best_cost) < 1e-6 * max(1.0, best)


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_useplan_rank_stability(seed):
    """Optimizing the same query twice gives identical rank->plan maps."""
    workload = star_query(3, rows=5, seed=seed)
    options = OptimizerOptions(allow_cross_products=False)
    space_a = PlanSpace.from_result(
        Optimizer(workload.catalog, options).optimize_sql(workload.sql)
    )
    space_b = PlanSpace.from_result(
        Optimizer(workload.catalog, options).optimize_sql(workload.sql)
    )
    assert space_a.count() == space_b.count()
    rank = seed % space_a.count()
    assert space_a.unrank(rank).fingerprint() == space_b.unrank(rank).fingerprint()
