"""Equivalence of the columnar optimization path against the object memo.

The struct-of-arrays physical memo (:mod:`repro.memo.columnar`), batched
implementation, and the layered best-plan DP must reproduce the object
pipeline *exactly*: same best plan (byte-identical render, same local
ids, same cost), same plan-space total ``N``, same per-operator census —
and, through the lazy materialization facade, a byte-identical memo
render.  These tests sweep chain/star/clique/cycle shapes in both
cross-product modes; n in {7, 8} runs under ``-m slow``.

The pure-Python array fallback (numpy disabled via
``REPRO_COLUMNAR_NUMPY=0``) is asserted against the same oracle on a
representative subset.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.api import Session
from repro.optimizer.implementation import ImplementationConfig
from repro.optimizer.optimizer import OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)
from repro.workloads.tpch_queries import TPCH_QUERIES

SHAPES = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

FAST_CASES = [
    (shape, n, cross)
    for shape in SHAPES
    for n in (3, 4, 5, 6)
    for cross in (False, True)
    if not (shape == "clique" and cross and n > 5)  # keep the smoke tier quick
]

SLOW_CASES = [
    (shape, n, cross)
    for shape in SHAPES
    for n in (7, 8)
    for cross in (False, True)
    if not (shape == "clique" and cross and n > 7)
]


def _operator_census(memo) -> Counter:
    """Physical expression counts per operator name (forces the lazy
    materialization of a columnar memo)."""
    census: Counter = Counter()
    for group in memo.groups:
        for expr in group.physical_exprs():
            census[expr.op.name] += 1
    return census


def _optimize_both(workload, cross: bool, implementation=None):
    kwargs = {"allow_cross_products": cross}
    if implementation is not None:
        kwargs["implementation"] = implementation
    columnar = Session(
        workload.database, options=OptimizerOptions(columnar=True, **kwargs)
    ).optimize(workload.sql)
    objectpath = Session(
        workload.database, options=OptimizerOptions(columnar=False, **kwargs)
    ).optimize(workload.sql)
    assert columnar.memo.columnar is not None
    assert objectpath.memo.columnar is None
    return columnar, objectpath


def _check_equivalence(shape: str, n: int, cross: bool) -> None:
    workload = SHAPES[shape](n, rows=5, seed=0)
    columnar, objectpath = _optimize_both(workload, cross)

    # Best plan: byte-identical (operators, shape, group/local ids), same
    # cost to the bit.
    assert columnar.best_cost == objectpath.best_cost
    assert columnar.best_plan.render() == objectpath.best_plan.render()

    # Counts answered from the arrays, before anything materializes.
    assert (
        columnar.memo.expression_count() == objectpath.memo.expression_count()
    )
    assert (
        columnar.memo.physical_expression_count()
        == objectpath.memo.physical_expression_count()
    )

    # Plan-space N through the lazy facade.
    n_columnar = PlanSpace.from_result(columnar).count()
    n_object = PlanSpace.from_result(objectpath).count()
    assert n_columnar == n_object

    # Per-operator census and, strongest of all, the full memo dump.
    assert _operator_census(columnar.memo) == _operator_census(objectpath.memo)
    assert columnar.memo.render() == objectpath.memo.render()


@pytest.mark.parametrize("shape,n,cross", FAST_CASES)
def test_columnar_matches_object_path(shape, n, cross):
    _check_equivalence(shape, n, cross)


@pytest.mark.slow
@pytest.mark.parametrize("shape,n,cross", SLOW_CASES)
def test_columnar_matches_object_path_large(shape, n, cross):
    _check_equivalence(shape, n, cross)


@pytest.mark.parametrize("query", ["Q3", "Q5", "Q9", "Q10"])
@pytest.mark.parametrize("cross", [False, True])
def test_columnar_matches_object_path_tpch(query, cross):
    sql = TPCH_QUERIES[query].sql
    columnar = Session.tpch(
        options=OptimizerOptions(allow_cross_products=cross, columnar=True)
    ).optimize(sql)
    objectpath = Session.tpch(
        options=OptimizerOptions(allow_cross_products=cross, columnar=False)
    ).optimize(sql)
    assert columnar.best_cost == objectpath.best_cost
    assert columnar.best_plan.render() == objectpath.best_plan.render()
    assert columnar.memo.render() == objectpath.memo.render()


@pytest.mark.parametrize(
    "shape,n,cross", [("clique", 5, False), ("star", 6, True), ("chain", 6, False)]
)
def test_columnar_python_fallback_matches(shape, n, cross, monkeypatch):
    """The pure-Python array sweep (numpy absent) is the same function."""
    monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    _check_equivalence(shape, n, cross)


@pytest.mark.parametrize(
    "shape,n,cross",
    [("cycle", 5, False), ("clique", 5, False), ("star", 6, True)],
)
@pytest.mark.parametrize("numpy_off", [False, True])
def test_batched_exploration_matrix(shape, n, cross, numpy_off, monkeypatch):
    """The batched logical path forced on and off — crossed with the
    numpy-disabled best-plan fallback — yields identical best plans,
    counts and memo renders end-to-end."""
    if numpy_off:
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    workload = SHAPES[shape](n, rows=5, seed=0)
    results = {}
    for batched in (True, False):
        results[batched] = Session(
            workload.database,
            options=OptimizerOptions(
                allow_cross_products=cross, batched_exploration=batched
            ),
        ).optimize(workload.sql)
    on, off = results[True], results[False]
    assert on.memo.columnar_logical is not None
    assert off.memo.columnar_logical is None
    assert on.best_cost == off.best_cost
    assert on.best_plan.render() == off.best_plan.render()
    # Logical counts answer from the arrays before anything materializes.
    assert (
        on.memo.logical_expression_count()
        == off.memo.logical_expression_count()
    )
    assert on.memo.expression_count() == off.memo.expression_count()
    assert on.memo.render() == off.memo.render()


@pytest.mark.parametrize(
    "shape,n,cross",
    [("cycle", 5, False), ("clique", 5, False), ("star", 6, True)],
)
@pytest.mark.parametrize("numpy_off", [False, True])
def test_fused_pass_matrix(shape, n, cross, numpy_off, monkeypatch):
    """The single-pass implement+DP (``fused``, the default) against the
    historical phase order (``fused=False``) — crossed with batched
    exploration and the numpy kill-switch — same best plan, same cost,
    same memo render."""
    if numpy_off:
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    workload = SHAPES[shape](n, rows=5, seed=0)
    results = {}
    for fused in (True, False):
        for batched in (True, False):
            results[fused, batched] = Session(
                workload.database,
                options=OptimizerOptions(
                    allow_cross_products=cross,
                    fused=fused,
                    batched_exploration=batched,
                ),
            ).optimize(workload.sql)
    baseline = results[True, True]
    for key, result in results.items():
        assert result.best_cost == baseline.best_cost, key
        assert result.best_plan.render() == baseline.best_plan.render(), key
        assert result.memo.render() == baseline.memo.render(), key


@pytest.mark.parametrize("density", [0.0, 0.4, 1.0])
@pytest.mark.parametrize("seed", [1, 2])
def test_fused_and_pruning_random_topologies(density, seed):
    """Random connected topologies: fused/unfused and dominated-state
    pruning on/off all land on the identical plan and cost."""
    from repro.workloads.synthetic import random_query

    workload = random_query(7, edge_density=density, seed=seed, rows=5)
    results = {}
    for fused in (True, False):
        for prune in (True, False):
            results[fused, prune] = Session(
                workload.database,
                options=OptimizerOptions(fused=fused, prune_dominated=prune),
            ).optimize(workload.sql)
    baseline = results[True, True]
    for key, result in results.items():
        assert result.best_cost == baseline.best_cost, key
        assert result.best_plan.render() == baseline.best_plan.render(), key


@pytest.mark.parametrize(
    "shape,n,cross", [("clique", 6, False), ("star", 7, False)]
)
def test_dominated_state_pruning_equivalence(shape, n, cross):
    """Pruning dominated DP states changes how much work the layer
    resolution does (the stats prove it fired) but never the answer."""
    workload = SHAPES[shape](n, rows=5, seed=0)
    results = {}
    for prune in (True, False):
        results[prune] = Session(
            workload.database,
            options=OptimizerOptions(
                allow_cross_products=cross, prune_dominated=prune
            ),
        ).optimize(workload.sql)
    on, off = results[True], results[False]
    assert on.best_cost == off.best_cost
    assert on.best_plan.render() == off.best_plan.render()
    assert on.memo.render() == off.memo.render()
    assert on.dp_stats is not None
    assert on.dp_stats["pruned"] >= 0
    assert off.dp_stats["pruned"] == 0


def test_batched_exploration_counts_do_not_materialize():
    """Logical counting on a batched memo must not rebuild GroupExprs."""
    workload = SHAPES["cycle"](6, rows=5, seed=0)
    result = Session(
        workload.database,
        options=OptimizerOptions(batched_exploration=True, columnar=True),
    ).optimize(workload.sql)
    memo = result.memo
    store = memo.columnar_logical
    assert store is not None
    assert memo.logical_expression_count() > 0
    join_gids = [
        gid for gid in range(len(memo.groups)) if store.pending_count(gid)
    ]
    assert join_gids
    assert all(memo.groups[gid]._pending is not None for gid in join_gids)
    # Materializing just the logical block keeps the physical one lazy.
    group = memo.groups[join_gids[0]]
    logical = group.logical_exprs()
    assert len(logical) == store.logical_join_count(group.gid)
    assert group._pending is not None
    assert group.physical_expr_count() > 0


@pytest.mark.parametrize(
    "implementation",
    [
        ImplementationConfig(enable_merge_join=False),
        ImplementationConfig(enable_hash_join=False),
        ImplementationConfig(enable_index_scans=False),
        ImplementationConfig(enable_sort_enforcers=False),
        ImplementationConfig(enable_index_nl_join=True),
        ImplementationConfig(enable_nested_loop_join=False),
    ],
)
def test_columnar_matches_object_path_ablations(implementation):
    """Rule ablations (including index-lookup joins) keep the paths
    identical — the configurations the diff tooling exercises."""
    workload = SHAPES["cycle"](5, rows=5, seed=0)
    columnar, objectpath = _optimize_both(
        workload, False, implementation=implementation
    )
    assert columnar.best_cost == objectpath.best_cost
    assert columnar.best_plan.render() == objectpath.best_plan.render()
    assert columnar.memo.render() == objectpath.memo.render()


def test_columnar_auto_falls_back_when_unsupported():
    """Beyond the EdgeCatalog limits (>24 relations) the default options
    silently fall back to the object path; columnar=True errors."""
    from repro.errors import OptimizerError

    workload = chain_query(25, rows=5, seed=0)
    result = Session(
        workload.database, options=OptimizerOptions(columnar=None)
    ).optimize(workload.sql)
    assert result.memo.columnar is None
    assert result.best_plan is not None
    with pytest.raises(OptimizerError):
        Session(
            workload.database, options=OptimizerOptions(columnar=True)
        ).optimize(workload.sql)


def test_columnar_counts_do_not_materialize():
    """Counting a columnar memo must not rebuild GroupExpr objects."""
    workload = SHAPES["star"](6, rows=5, seed=0)
    result = Session(
        workload.database, options=OptimizerOptions(columnar=True)
    ).optimize(workload.sql)
    memo = result.memo
    assert memo.expression_count() > 0
    assert memo.physical_expression_count() > 0
    assert all(
        group._pending is not None
        for group in memo.groups
        if group.physical_expr_count()
    )
