"""Property-based tests: the rank <-> plan bijection on random memos.

Hypothesis generates random (but structurally valid) memos — random scan
alternatives, random join implementations, enforcers, property
requirements — and we verify the paper's algorithms hold on all of them:

* counting equals brute-force enumeration;
* unrank is injective over 0..N-1;
* rank inverts unrank.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import ColumnId
from repro.algebra.physical import (
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    Sort,
    TableScan,
)
from repro.memo.memo import Memo
from repro.planspace.space import PlanSpace


def build_random_memo(seed: int, n_leaves: int, sorted_scans: bool) -> Memo:
    """A random but valid memo over a left-deep chain of joins.

    Each leaf group gets 1-3 scan alternatives (optionally sorted) and
    possibly a Sort enforcer; each join group gets 1-3 join alternatives,
    where merge joins require sorted children.
    """
    rng = random.Random(seed)
    memo = Memo()
    leaf_groups = []
    for i in range(n_leaves):
        alias = f"t{i}"
        rels = frozenset([alias])
        group = memo.get_or_create_group(("rels", rels), rels)
        group.cardinality = float(rng.randint(1, 100))
        memo.insert(TableScan(alias, alias), (), group)
        key = ColumnId(alias, "x")
        if sorted_scans and rng.random() < 0.7:
            memo.insert(IndexScan(alias, alias, f"{alias}_x", (key,)), (), group)
        if rng.random() < 0.5:
            memo.insert(Sort((key,)), (group.gid,), group)
        leaf_groups.append(group)

    current = leaf_groups[0]
    for i in range(1, n_leaves):
        right = leaf_groups[i]
        rels = current.relations | right.relations
        group = memo.get_or_create_group(("rels", rels), rels)
        group.cardinality = float(rng.randint(1, 1000))
        left_key = ColumnId(sorted(current.relations)[0], "x")
        right_key = ColumnId(sorted(right.relations)[0], "x")
        children = (current.gid, right.gid)
        memo.insert(NestedLoopJoin(None), children, group)
        if rng.random() < 0.7:
            memo.insert(HashJoin((left_key,), (right_key,)), children, group)
        if rng.random() < 0.6:
            memo.insert(MergeJoin((left_key,), (right_key,)), children, group)
        current = group

    memo.set_root(current.gid)
    return memo


def brute_force_plans(space: PlanSpace) -> set:
    """All plans by explicit recursive expansion (independent of unrank).

    A plan is fingerprinted as ``(operator_key, (child_fingerprints...))``.
    """

    def expand(node):
        if node.arity == 0:
            return [(node.key, ())]
        slot_options = []
        for alternatives in node.alternatives:
            options = []
            for alt in alternatives:
                options.extend(expand(alt))
            slot_options.append(options)
        combos = [()]
        for options in slot_options:
            combos = [prefix + (choice,) for prefix in combos for choice in options]
        return [(node.key, combo) for combo in combos]

    result = set()
    for root in space.linked.roots:
        result.update(expand(root))
    return result


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_leaves=st.integers(min_value=1, max_value=4),
    sorted_scans=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_count_matches_brute_force(seed, n_leaves, sorted_scans):
    memo = build_random_memo(seed, n_leaves, sorted_scans)
    space = PlanSpace.from_memo(memo)
    assert space.count() == len(brute_force_plans(space))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_leaves=st.integers(min_value=1, max_value=4),
    sorted_scans=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_unrank_is_injective(seed, n_leaves, sorted_scans):
    memo = build_random_memo(seed, n_leaves, sorted_scans)
    space = PlanSpace.from_memo(memo)
    total = space.count()
    fingerprints = set()
    for rank in range(min(total, 300)):
        fingerprints.add(space.unrank(rank).fingerprint())
    assert len(fingerprints) == min(total, 300)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_leaves=st.integers(min_value=1, max_value=4),
    sorted_scans=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_rank_inverts_unrank(seed, n_leaves, sorted_scans):
    memo = build_random_memo(seed, n_leaves, sorted_scans)
    space = PlanSpace.from_memo(memo)
    total = space.count()
    rng = random.Random(seed)
    ranks = [rng.randrange(total) for _ in range(min(total, 50))]
    for rank in ranks:
        assert space.rank(space.unrank(rank)) == rank


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_leaves=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_merge_join_children_always_sorted(seed, n_leaves):
    memo = build_random_memo(seed, n_leaves, sorted_scans=True)
    space = PlanSpace.from_memo(memo)
    from repro.algebra.properties import order_satisfies

    total = space.count()
    for rank in range(0, total, max(1, total // 60)):
        plan = space.unrank(rank)
        for node in plan.iter_nodes():
            if isinstance(node.op, MergeJoin):
                for pos, child in enumerate(node.children):
                    assert order_satisfies(
                        child.op.delivered_order(),
                        node.op.required_child_order(pos),
                    )
