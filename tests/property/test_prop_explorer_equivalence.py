"""Equivalence of the bitset csg–cmp explorer against the retained
reference (slow-path) implementation.

The bitset rewrite of :mod:`repro.optimizer.joingraph` and
:mod:`repro.optimizer.explorer` must span *exactly* the same search space
as the original generate-and-test algorithms, preserved verbatim in
:mod:`repro.optimizer.reference`.  These tests sweep chain/star/clique/
cycle shapes in both cross-product modes and assert:

* identical connected-subset universes and partition lists (including
  enumeration *order* — the rewrite promises byte-identical memo layout);
* identical memo group counts and logical expression counts;
* identical plan-space totals ``N`` after full implementation;
* ``rank(unrank(r)) == r`` still holds on memos built by the fast path.

Smaller sizes run in the smoke tier; the n in {7, 8} sweeps are marked
``slow`` (run with ``pytest -m slow`` or ``-m ""``).
"""

from __future__ import annotations

import pytest

from repro.optimizer.explorer import EnumerationExplorer
from repro.optimizer.implementation import implement_memo
from repro.optimizer.annotate import annotate_cardinalities
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.reference import (
    ReferenceEnumerationExplorer,
    reference_connected_subsets,
    reference_partitions,
)
from repro.optimizer.setup import build_initial_memo
from repro.planspace.space import PlanSpace
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

SHAPES = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

FAST_CASES = [
    (shape, n, cross)
    for shape in SHAPES
    for n in (3, 4, 5, 6)
    for cross in (False, True)
    if not (shape == "clique" and cross and n > 5)  # keep the smoke tier quick
]

SLOW_CASES = [
    (shape, n, cross)
    for shape in SHAPES
    for n in (7, 8)
    for cross in (False, True)
]


def _bound(workload):
    return Binder(workload.catalog).bind(parse(workload.sql))


def _explored(workload, explorer, allow_cross):
    setup = build_initial_memo(_bound(workload), allow_cross)
    explorer.explore(setup.memo, setup.graph, allow_cross)
    return setup


def _space_total(workload, setup) -> int:
    implement_memo(
        setup.memo, workload.catalog, None, root_order=setup.query.order_by
    )
    estimator = CardinalityEstimator(workload.catalog, setup.query)
    annotate_cardinalities(setup.memo, setup.graph, estimator)
    space = PlanSpace.from_memo(setup.memo, root_required=setup.query.order_by)
    return space.count(), space


def _check_equivalence(shape: str, n: int, allow_cross: bool) -> None:
    workload = SHAPES[shape](n, rows=5, seed=0)
    fast = _explored(workload, EnumerationExplorer(), allow_cross)
    slow = _explored(workload, ReferenceEnumerationExplorer(), allow_cross)

    graph = fast.graph
    # Join-graph level: identical universes and partitions, same order.
    assert graph.connected_subsets() == reference_connected_subsets(graph)
    universe = (
        graph.all_subsets() if allow_cross else graph.connected_subsets()
    )
    for subset in universe:
        assert graph.partitions(subset, allow_cross) == reference_partitions(
            graph, subset, allow_cross
        ), (shape, n, allow_cross, sorted(subset))

    # Memo level: identical group and logical-expression populations.
    assert len(fast.memo.groups) == len(slow.memo.groups)
    assert (
        fast.memo.logical_expression_count()
        == slow.memo.logical_expression_count()
    )
    fast_rels = [sorted(g.relations) for g in fast.memo.groups]
    slow_rels = [sorted(g.relations) for g in slow.memo.groups]
    assert fast_rels == slow_rels

    # Plan-space level: identical totals N after implementation.
    fast_total, fast_space = _space_total(workload, fast)
    slow_total, _ = _space_total(workload, slow)
    assert fast_total == slow_total

    # The rank <-> unrank bijection holds on the fast-path memo.
    probes = {0, 1, fast_total // 3, fast_total // 2, fast_total - 1}
    for rank in sorted(r for r in probes if 0 <= r < fast_total):
        assert fast_space.rank(fast_space.unrank(rank)) == rank


@pytest.mark.parametrize("shape,n,cross", FAST_CASES)
def test_bitset_explorer_matches_reference(shape, n, cross):
    _check_equivalence(shape, n, cross)


@pytest.mark.slow
@pytest.mark.parametrize("shape,n,cross", SLOW_CASES)
def test_bitset_explorer_matches_reference_large(shape, n, cross):
    _check_equivalence(shape, n, cross)
