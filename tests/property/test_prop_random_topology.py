"""Randomized-topology equivalence fuzzing.

The chain/star/clique/cycle sweeps pin the engines to four canonical
topologies; this suite drives the same equivalence obligations across
*seeded random connected join graphs* (:func:`repro.workloads.synthetic.
random_query`), so enumeration-order or cut-key bugs that only surface on
irregular shapes (asymmetric trees, partial cliques, bridged cycles)
cannot hide.  For every graph, in both cross-product modes:

* batched exploration and per-expression object exploration produce
  byte-identical memos (full render — group ids, expression order, local
  ids), identical best plans and costs;
* the implicit plan-space engine's exact ``N`` equals the materialized
  count on both explorer paths;
* per-operator censuses agree across all three engines.

The n=8 sweeps run under ``-m slow``; the smoke tier keeps a spread of
sizes and densities below that.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.api import Session
from repro.optimizer.optimizer import OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.planspace.space import PlanSpace
from repro.workloads.synthetic import random_query

# (n, edge_density, seed, allow_cross_products) — ~20 seeded topologies.
# Cross-product spaces grow like the clique's regardless of density, so
# they stay at n <= 5 in the smoke tier (same cap as the canonical
# sweeps); the no-cross cases sweep density from tree to clique.
FAST_CASES = [
    (4, 0.0, 0, False),
    (4, 0.6, 1, False),
    (5, 0.0, 2, False),
    (5, 0.3, 3, False),
    (5, 1.0, 4, False),
    (6, 0.0, 5, False),
    (6, 0.2, 6, False),
    (6, 0.4, 7, False),
    (6, 0.8, 8, False),
    (7, 0.0, 9, False),
    (7, 0.2, 10, False),
    (7, 0.5, 11, False),
    (4, 0.0, 12, True),
    (4, 0.5, 13, True),
    (4, 1.0, 14, True),
    (5, 0.0, 15, True),
    (5, 0.3, 16, True),
    (5, 0.7, 17, True),
]

SLOW_CASES = [
    (8, 0.0, 20, False),
    (8, 0.25, 21, False),
    (8, 0.5, 22, False),
    (8, 0.75, 23, False),
    (6, 0.4, 24, True),
    (7, 0.3, 25, True),
]


def _operator_census(memo) -> Counter:
    census: Counter = Counter()
    for group in memo.groups:
        for expr in group.physical_exprs():
            census[expr.op.name] += 1
    return census


def _check_topology(n: int, density: float, seed: int, cross: bool) -> None:
    workload = random_query(n, edge_density=density, seed=seed, rows=5)
    tag = (workload.name, cross)

    batched = Session(
        workload.database,
        options=OptimizerOptions(
            allow_cross_products=cross, batched_exploration=True
        ),
    ).optimize(workload.sql)
    objectpath = Session(
        workload.database,
        options=OptimizerOptions(
            allow_cross_products=cross, batched_exploration=False
        ),
    ).optimize(workload.sql)
    assert batched.memo.columnar_logical is not None, tag
    assert objectpath.memo.columnar_logical is None, tag

    # Best plan: byte-identical, same cost to the bit.
    assert batched.best_cost == objectpath.best_cost, tag
    assert batched.best_plan.render() == objectpath.best_plan.render(), tag

    # Counts answered from the arrays, before anything materializes.
    assert (
        batched.memo.logical_expression_count()
        == objectpath.memo.logical_expression_count()
    ), tag
    assert (
        batched.memo.expression_count() == objectpath.memo.expression_count()
    ), tag

    # Materialized plan-space totals across both explorer paths, and the
    # implicit engine's N against them.
    total = PlanSpace.from_result(batched).count()
    assert PlanSpace.from_result(objectpath).count() == total, tag
    implicit = ImplicitPlanSpace.from_sql(
        workload.catalog,
        workload.sql,
        options=OptimizerOptions(allow_cross_products=cross),
    )
    assert implicit.count() == total, tag

    # Per-operator censuses: batched memo vs object memo, and the
    # implicit engine's virtual total vs the memo's.
    assert _operator_census(batched.memo) == _operator_census(objectpath.memo), tag
    assert (
        implicit.physical_operator_count()
        == batched.memo.physical_expression_count()
    ), tag

    # Strongest of all: the full memo dump, through the lazy facade.
    assert batched.memo.render() == objectpath.memo.render(), tag


@pytest.mark.parametrize("n,density,seed,cross", FAST_CASES)
def test_random_topology_equivalence(n, density, seed, cross):
    _check_topology(n, density, seed, cross)


@pytest.mark.slow
@pytest.mark.parametrize("n,density,seed,cross", SLOW_CASES)
def test_random_topology_equivalence_large(n, density, seed, cross):
    _check_topology(n, density, seed, cross)
