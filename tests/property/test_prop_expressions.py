"""Property-based tests for the expression layer and SQL front end."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import (
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Literal,
    make_conjunction,
    split_conjuncts,
)
from repro.executor.scalar import compile_scalar, like_matcher

COLUMNS = (ColumnId("t", "a"), ColumnId("t", "b"), ColumnId("t", "c"))


def scalar_exprs(depth=2):
    leaves = st.one_of(
        st.sampled_from([ColumnRef(c) for c in COLUMNS]),
        st.integers(min_value=-100, max_value=100).map(Literal),
    )
    if depth == 0:
        return leaves
    sub = scalar_exprs(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: Arithmetic(t[0], t[1], t[2])
        ),
    )


def comparisons(depth=2):
    return st.tuples(
        st.sampled_from(list(CompOp)), scalar_exprs(depth), scalar_exprs(depth)
    ).map(lambda t: Comparison(t[0], t[1], t[2]))


class TestFingerprintProperties:
    @given(expr=comparisons())
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_deterministic(self, expr):
        assert expr.fingerprint() == expr.fingerprint()

    @given(left=scalar_exprs(), right=scalar_exprs())
    @settings(max_examples=100, deadline=None)
    def test_equality_commutation(self, left, right):
        assert (
            Comparison(CompOp.EQ, left, right).fingerprint()
            == Comparison(CompOp.EQ, right, left).fingerprint()
        )

    @given(conjuncts=st.lists(comparisons(1), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_make_conjunction_order_invariant(self, conjuncts):
        forward = make_conjunction(list(conjuncts))
        backward = make_conjunction(list(reversed(conjuncts)))
        assert forward.fingerprint() == backward.fingerprint()

    @given(conjuncts=st.lists(comparisons(1), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_split_make_roundtrip(self, conjuncts):
        rebuilt = make_conjunction(split_conjuncts(make_conjunction(list(conjuncts))))
        assert {c.fingerprint() for c in split_conjuncts(rebuilt)} == {
            c.fingerprint() for c in conjuncts
        }


class TestEvaluationProperties:
    @given(
        expr=scalar_exprs(),
        row=st.tuples(
            st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50)
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_compiled_arithmetic_total(self, expr, row):
        fn = compile_scalar(expr, COLUMNS)
        value = fn(row)
        assert isinstance(value, int)

    @given(
        op=st.sampled_from(list(CompOp)),
        a=st.integers(-20, 20),
        b=st.integers(-20, 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_comparison_consistent_with_python(self, op, a, b):
        expr = Comparison(op, ColumnRef(COLUMNS[0]), ColumnRef(COLUMNS[1]))
        fn = compile_scalar(expr, COLUMNS)
        expected = {
            CompOp.EQ: a == b,
            CompOp.NE: a != b,
            CompOp.LT: a < b,
            CompOp.LE: a <= b,
            CompOp.GT: a > b,
            CompOp.GE: a >= b,
        }[op]
        assert fn((a, b, 0)) == expected

    @given(st.text(alphabet="ab%_", max_size=8), st.text(alphabet="ab", max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_like_matcher_total(self, pattern, value):
        # Never raises, always returns a bool.
        assert like_matcher(pattern)(value) in (True, False)

    @given(st.text(alphabet="abc", max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_like_percent_matches_everything(self, value):
        assert like_matcher("%")(value)

    @given(st.text(alphabet="abc", min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_like_exact_is_equality(self, value):
        assert like_matcher(value)(value)
        assert not like_matcher(value)(value + "x")


class TestParserRoundtrip:
    @given(
        a=st.integers(-999, 999),
        op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rendered_predicates_reparse(self, a, op):
        from repro.sql.parser import Parser

        text = f"t.a {op} {a}"
        expr = Parser(text).parse_expr()
        again = Parser(expr.render()).parse_expr()
        assert expr.fingerprint() == again.fingerprint()
