"""Property-based tests for the cost model and plan costing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.workloads.synthetic import chain_query


@given(
    seed=st.integers(min_value=0, max_value=60),
    n_tables=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_all_plan_costs_positive_and_at_least_best(seed, n_tables):
    workload = chain_query(n_tables, rows=6, seed=seed)
    result = Optimizer(
        workload.catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(workload.sql)
    space = PlanSpace.from_result(result)
    for plan in space.sample(20, seed=seed):
        cost = result.cost_model.plan_cost(plan)
        assert cost > 0
        # No plan can beat the DP optimum.
        assert cost >= result.best_cost - 1e-9 * result.best_cost


@given(
    seed=st.integers(min_value=0, max_value=60),
    scale=st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=20, deadline=None)
def test_costs_homogeneous_in_parameters(seed, scale):
    """Multiplying every cost constant by one factor scales every plan's
    cost by exactly that factor (so relative plan quality is invariant)."""
    workload = chain_query(3, rows=6, seed=seed)
    base_params = CostParameters()
    scaled_params = CostParameters(
        **{
            name: getattr(base_params, name) * scale
            for name in base_params.__dataclass_fields__
        }
    )
    result = Optimizer(
        workload.catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(workload.sql)
    space = PlanSpace.from_result(result)
    plans = space.sample(10, seed=seed)
    base_model = CostModel(workload.catalog, base_params)
    scaled_model = CostModel(workload.catalog, scaled_params)
    for plan in plans:
        base = base_model.plan_cost(plan)
        scaled = scaled_model.plan_cost(plan)
        assert scaled == pytest.approx(base * scale, rel=1e-9)


@given(seed=st.integers(min_value=0, max_value=60))
@settings(max_examples=15, deadline=None)
def test_scaled_costs_start_at_one(seed):
    """The optimizer's plan defines cost 1.0; sampled scaled costs >= 1."""
    from repro.experiments.distributions import distribution_from_result

    workload = chain_query(3, rows=6, seed=seed)
    result = Optimizer(
        workload.catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(workload.sql)
    dist = distribution_from_result(result, "chain3", sample_size=50, seed=seed)
    assert dist.minimum() >= 1.0 - 1e-9
