"""Tests for the Session facade (including OPTION (USEPLAN n))."""

import pytest

from repro.api import Session
from repro.errors import PlanSpaceError
from repro.optimizer.optimizer import OptimizerOptions
from repro.testing.diff import canonical_rows

SQL = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0, options=OptimizerOptions(allow_cross_products=False))


class TestExecute:
    def test_plain_execution(self, session):
        result = session.execute(SQL)
        assert result.columns == ["n_name", "r_name"]
        assert len(result.rows) == 25

    def test_useplan_forces_specific_plan(self, session):
        detailed = session.execute_detailed(SQL + " OPTION (USEPLAN 5)")
        assert detailed.used_rank == 5

    def test_useplan_results_match_default(self, session):
        reference = canonical_rows(session.execute(SQL).rows)
        for rank in (0, 3, 17):
            rows = canonical_rows(
                session.execute(f"{SQL} OPTION (USEPLAN {rank})").rows
            )
            assert rows == reference

    def test_useplan_out_of_range(self, session):
        with pytest.raises(PlanSpaceError):
            session.execute(SQL + " OPTION (USEPLAN 99999999999)")

    def test_default_plan_is_optimizers(self, session):
        detailed = session.execute_detailed(SQL)
        assert detailed.used_rank is None
        assert detailed.optimization.best_plan is not None

    def test_order_by_execution(self, session):
        result = session.execute(SQL + " ORDER BY n_name")
        names = [row[0] for row in result.rows]
        assert names == sorted(names)


class TestIteratePlans:
    def test_explicit_ranks(self, session):
        results = dict(session.iterate_plans(SQL, ranks=[0, 1, 2]))
        assert set(results) == {0, 1, 2}

    def test_sampled_iteration(self, session):
        results = list(session.iterate_plans(SQL, sample=5, seed=3))
        assert len(results) == 5

    def test_full_enumeration_when_unspecified(self, session):
        space = session.plan_space(SQL)
        results = list(session.iterate_plans(SQL))
        assert len(results) == space.count()

    def test_all_iterated_plans_agree(self, session):
        reference = None
        for _, result in session.iterate_plans(SQL, sample=10, seed=1):
            rows = canonical_rows(result.rows)
            if reference is None:
                reference = rows
            assert rows == reference


class TestIntrospection:
    def test_plan_space(self, session):
        space = session.plan_space(SQL)
        assert space.count() > 100

    def test_explain(self, session):
        text = session.explain(SQL)
        assert "best cost" in text

    def test_optimize_returns_result(self, session):
        result = session.optimize(SQL)
        assert result.memo.root_group_id is not None

    def test_tpch_constructor_rows_override(self):
        session = Session.tpch(seed=1, rows={"lineitem": 12})
        assert len(session.database.table("lineitem")) == 12


class TestSampledOptimize:
    def test_sampled_method_returns_compatible_result(self, session):
        result = session.optimize(SQL, method="sampled", samples=40, seed=0)
        assert result.best_plan is not None
        assert result.best_cost > 0
        assert "best cost" in result.explain()
        assert result.samples == 40

    def test_sampled_cost_bounded_by_exhaustive(self, session):
        exhaustive = session.optimize(SQL)
        sampled = session.optimize(SQL, method="sampled", samples=60, seed=0)
        assert sampled.best_cost >= exhaustive.best_cost - 1e-9
        # the two-table space is tiny: recombination finds the optimum
        assert sampled.best_cost == pytest.approx(exhaustive.best_cost)

    def test_sampled_plan_is_executable(self, session):
        sampled = session.optimize(SQL, method="sampled", samples=30, seed=1)
        rows = canonical_rows(session.executor.execute(sampled.best_plan).rows)
        assert rows == canonical_rows(session.execute(SQL).rows)

    def test_sampled_budget_keyword(self, session):
        result = session.optimize(
            SQL, method="sampled", samples=10_000, budget_s=1e-9, seed=0
        )
        assert result.stopped_because == "budget"

    def test_unknown_method_rejected(self, session):
        with pytest.raises(PlanSpaceError):
            session.optimize(SQL, method="genetic")

    def test_exhaustive_rejects_sampling_kwargs(self, session):
        with pytest.raises(PlanSpaceError):
            session.optimize(SQL, samples=10)


class TestCostDistribution:
    def test_memo_free_distribution(self, session):
        dist = session.cost_distribution(SQL, sample_size=80, seed=0)
        assert dist.sample_size == 80
        assert min(dist.scaled_costs) >= 1.0 - 1e-9

    def test_materialized_matches_memo_free_scaling(self, session):
        materialized = session.cost_distribution(
            SQL, sample_size=80, seed=0, materialized=True
        )
        memo_free = session.cost_distribution(SQL, sample_size=80, seed=0)
        # tiny space: the recombined best equals the true optimum, so the
        # same seed yields identical scaled costs through either engine
        assert memo_free.scaled_costs == pytest.approx(
            materialized.scaled_costs, rel=1e-12
        )
