"""Tests for the Session facade (including OPTION (USEPLAN n))."""

import pytest

from repro.api import Session
from repro.errors import PlanSpaceError
from repro.optimizer.optimizer import OptimizerOptions
from repro.testing.diff import canonical_rows

SQL = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0, options=OptimizerOptions(allow_cross_products=False))


class TestExecute:
    def test_plain_execution(self, session):
        result = session.execute(SQL)
        assert result.columns == ["n_name", "r_name"]
        assert len(result.rows) == 25

    def test_useplan_forces_specific_plan(self, session):
        detailed = session.execute_detailed(SQL + " OPTION (USEPLAN 5)")
        assert detailed.used_rank == 5

    def test_useplan_results_match_default(self, session):
        reference = canonical_rows(session.execute(SQL).rows)
        for rank in (0, 3, 17):
            rows = canonical_rows(
                session.execute(f"{SQL} OPTION (USEPLAN {rank})").rows
            )
            assert rows == reference

    def test_useplan_out_of_range(self, session):
        with pytest.raises(PlanSpaceError):
            session.execute(SQL + " OPTION (USEPLAN 99999999999)")

    def test_default_plan_is_optimizers(self, session):
        detailed = session.execute_detailed(SQL)
        assert detailed.used_rank is None
        assert detailed.optimization.best_plan is not None

    def test_order_by_execution(self, session):
        result = session.execute(SQL + " ORDER BY n_name")
        names = [row[0] for row in result.rows]
        assert names == sorted(names)


class TestIteratePlans:
    def test_explicit_ranks(self, session):
        results = dict(session.iterate_plans(SQL, ranks=[0, 1, 2]))
        assert set(results) == {0, 1, 2}

    def test_sampled_iteration(self, session):
        results = list(session.iterate_plans(SQL, sample=5, seed=3))
        assert len(results) == 5

    def test_full_enumeration_when_unspecified(self, session):
        space = session.plan_space(SQL)
        results = list(session.iterate_plans(SQL))
        assert len(results) == space.count()

    def test_all_iterated_plans_agree(self, session):
        reference = None
        for _, result in session.iterate_plans(SQL, sample=10, seed=1):
            rows = canonical_rows(result.rows)
            if reference is None:
                reference = rows
            assert rows == reference


class TestIntrospection:
    def test_plan_space(self, session):
        space = session.plan_space(SQL)
        assert space.count() > 100

    def test_explain(self, session):
        text = session.explain(SQL)
        assert "best cost" in text

    def test_optimize_returns_result(self, session):
        result = session.optimize(SQL)
        assert result.memo.root_group_id is not None

    def test_tpch_constructor_rows_override(self):
        session = Session.tpch(seed=1, rows={"lineitem": 12})
        assert len(session.database.table("lineitem")) == 12
