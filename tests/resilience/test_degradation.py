"""The degradation ladder: exact → sampled → heuristic under one budget.

These tests drive :func:`repro.resilience.degrade.optimize_resilient`
directly (and through :class:`repro.api.Session`) and assert the ladder's
contract: every budgeted call returns an executable, costed plan; the
report says which tier served and why; and the unbudgeted path is
byte-identical to the historical exact optimizer.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.api import Session
from repro.errors import BudgetError, Cancelled, PlanSpaceError, TimeoutExceeded
from repro.executor.executor import PlanExecutor
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.resilience import Budget, CancellationToken
from repro.resilience.degrade import (
    DegradationPolicy,
    ResilienceReport,
    TierAttempt,
    optimize_resilient,
)
from repro.resilience.faults import FaultSpec, inject
from repro.resilience.heuristic import (
    greedy_quantifier_order,
    optimize_heuristic,
)
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import clique_query, random_query

NO_CROSS = OptimizerOptions(allow_cross_products=False)


def _bind(workload):
    return Binder(workload.catalog).bind(parse(workload.sql))


def _execute(workload, plan):
    return PlanExecutor(workload.database).execute(plan)


@pytest.fixture(scope="module")
def clique6():
    return clique_query(6)


@pytest.fixture(scope="module")
def clique10():
    return clique_query(10)


# ------------------------------------------------------------ exact tier
def test_generous_deadline_serves_exact_identically(clique6):
    """A deadline that never bites must not change the plan at all."""
    bound = _bind(clique6)
    plain = Optimizer(clique6.catalog, NO_CROSS).optimize(bound)
    budgeted = optimize_resilient(
        clique6.catalog, bound, NO_CROSS, budget=Budget(deadline_s=300.0)
    )
    assert budgeted.resilience.tier == "exact"
    assert budgeted.resilience.trigger is None
    assert not budgeted.resilience.degraded
    assert budgeted.best_cost == plain.best_cost
    assert budgeted.best_plan.render() == plain.best_plan.render()
    assert plain.resilience is None  # unbudgeted runs carry no report


def test_unbudgeted_session_has_no_report(clique6):
    session = Session(clique6.database, options=NO_CROSS)
    result = session.optimize(clique6.sql)
    assert result.resilience is None
    assert result.engine == "columnar"


# ------------------------------------------------------- degraded serves
def test_tight_deadline_degrades_but_serves(clique10):
    bound = _bind(clique10)
    started = time.perf_counter()
    result = optimize_resilient(
        clique10.catalog, bound, NO_CROSS, budget=Budget(deadline_s=0.1)
    )
    wall = time.perf_counter() - started
    report = result.resilience
    assert report.degraded
    assert report.trigger == "timeout"
    assert report.attempts[0].tier == "exact"
    assert report.attempts[0].outcome == "timeout"
    assert report.attempts[-1].outcome == "served"
    assert wall < 5.0  # far from the exact path's full cost
    assert math.isfinite(result.best_cost) and result.best_cost > 0
    assert _execute(clique10, result.best_plan).rows


def test_clique12_one_second_deadline_acceptance():
    """The issue's acceptance bar: clique12, 1s deadline, an executable
    costed plan in < 2s wall with tier and trigger reported."""
    workload = clique_query(12)
    bound = _bind(workload)
    started = time.perf_counter()
    result = optimize_resilient(
        workload.catalog, bound, NO_CROSS, budget=Budget(deadline_s=1.0)
    )
    wall = time.perf_counter() - started
    assert wall < 2.0
    report = result.resilience
    assert report.tier != "exact"
    assert report.trigger == "timeout"
    assert math.isfinite(result.best_cost) and result.best_cost > 0
    assert result.best_plan.render()
    assert _execute(workload, result.best_plan).rows


def test_sampled_tier_serves_when_exact_faults(clique6):
    """A broken exact tier (arbitrary, non-budget fault) falls through to
    the sampled engine, which serves with the full remaining budget."""
    bound = _bind(clique6)
    with inject(FaultSpec("bestplan.layer", action="raise")):
        result = optimize_resilient(clique6.catalog, bound, NO_CROSS)
    report = result.resilience
    assert report.tier == "sampled"
    assert report.trigger == "error"
    assert [a.tier for a in report.attempts] == ["exact", "sampled"]
    assert report.attempts[0].outcome == "error"
    assert "InjectedFault" in report.attempts[0].detail
    assert _execute(clique6, result.best_plan).rows


def test_heuristic_tier_is_the_floor(clique10):
    """With essentially no time at all, the greedy tier still serves."""
    bound = _bind(clique10)
    result = optimize_resilient(
        clique10.catalog, bound, NO_CROSS, budget=Budget(deadline_s=1e-6)
    )
    report = result.resilience
    assert report.tier == "heuristic"
    assert result.engine == "heuristic"
    # Sampled was skipped, not attempted: no time left for a space build.
    sampled = [a for a in report.attempts if a.tier == "sampled"]
    assert sampled and sampled[0].outcome == "skipped"
    assert _execute(clique10, result.best_plan).rows


# --------------------------------------------------------- cancellation
def test_pre_cancelled_token_goes_straight_to_heuristic(clique6):
    token = CancellationToken()
    token.cancel()
    result = optimize_resilient(
        clique6.catalog, _bind(clique6), NO_CROSS, token=token
    )
    report = result.resilience
    assert report.tier == "heuristic"
    assert report.trigger == "cancelled"
    sampled = [a for a in report.attempts if a.tier == "sampled"]
    assert sampled and sampled[0].outcome == "skipped"


def test_cancellation_latency_is_bounded(clique10):
    """Cancelling mid-exploration is observed within checkpoint
    granularity — far sooner than the full optimization would take."""
    token = CancellationToken()
    timer = threading.Timer(0.15, token.cancel)
    timer.start()
    try:
        started = time.perf_counter()
        result = optimize_resilient(
            clique10.catalog,
            _bind(clique10),
            NO_CROSS,
            budget=Budget(deadline_s=60.0),
            token=token,
        )
        latency = time.perf_counter() - started - 0.15
    finally:
        timer.cancel()
    assert result.resilience.trigger == "cancelled"
    assert result.resilience.tier == "heuristic"
    assert latency < 1.0  # bounded by the widest checkpoint interval
    assert _execute(clique10, result.best_plan).rows


# --------------------------------------------------------------- ceilings
def test_expression_ceiling_degrades(clique6):
    result = optimize_resilient(
        clique6.catalog,
        _bind(clique6),
        NO_CROSS,
        budget=Budget(max_expressions=20),
    )
    report = result.resilience
    assert report.trigger == "resource"
    assert report.tier == "heuristic"  # sampled trips the same ceiling
    assert _execute(clique6, result.best_plan).rows


def test_memory_ceiling_skips_sampled(clique6):
    # Peak RSS never shrinks, so retrying a cheaper tier under the same
    # ceiling is futile: the ladder must go straight to the heuristic.
    result = optimize_resilient(
        clique6.catalog,
        _bind(clique6),
        NO_CROSS,
        budget=Budget(max_memory_mb=0.001),
    )
    report = result.resilience
    assert report.trigger == "resource"
    assert report.tier == "heuristic"
    sampled = [a for a in report.attempts if a.tier == "sampled"]
    assert sampled and sampled[0].outcome == "skipped"
    assert "RSS" in sampled[0].detail


# ------------------------------------------------------------ raise mode
def test_on_budget_raise_propagates_timeout(clique10):
    with pytest.raises(TimeoutExceeded):
        optimize_resilient(
            clique10.catalog,
            _bind(clique10),
            NO_CROSS,
            budget=Budget(deadline_s=0.05),
            on_budget="raise",
        )


def test_on_budget_raise_propagates_cancellation(clique6):
    token = CancellationToken()
    token.cancel()
    with pytest.raises(Cancelled):
        optimize_resilient(
            clique6.catalog,
            _bind(clique6),
            NO_CROSS,
            token=token,
            on_budget="raise",
        )


def test_on_budget_raise_still_degrades_on_non_budget_faults(clique6):
    """raise mode is a *budget* policy: a broken tier still degrades."""
    bound = _bind(clique6)
    with inject(FaultSpec("explore.batch", action="raise")):
        result = optimize_resilient(
            clique6.catalog, bound, NO_CROSS, on_budget="raise"
        )
    assert result.resilience.tier == "sampled"
    assert result.resilience.trigger == "error"


def test_on_budget_validated(clique6):
    with pytest.raises(BudgetError, match="on_budget"):
        optimize_resilient(
            clique6.catalog, _bind(clique6), NO_CROSS, on_budget="panic"
        )


# ------------------------------------------------------- report & policy
def test_policy_validates_exact_fraction():
    with pytest.raises(BudgetError):
        DegradationPolicy(exact_fraction=0.0)
    with pytest.raises(BudgetError):
        DegradationPolicy(exact_fraction=1.5)
    DegradationPolicy(exact_fraction=1.0)  # the full deadline is legal


def test_report_shape(clique10):
    result = optimize_resilient(
        clique10.catalog,
        _bind(clique10),
        NO_CROSS,
        budget=Budget(deadline_s=0.1),
    )
    report = result.resilience
    assert isinstance(report, ResilienceReport)
    as_dict = report.to_dict()
    assert set(as_dict) == {
        "tier",
        "trigger",
        "deadline_s",
        "elapsed_s",
        "attempts",
    }
    assert as_dict["deadline_s"] == 0.1
    assert all(
        set(a) == {"tier", "outcome", "elapsed_s", "detail"}
        for a in as_dict["attempts"]
    )
    text = report.describe()
    assert report.tier in text and "0.1s deadline" in text
    assert isinstance(report.attempts[0], TierAttempt)


# ------------------------------------------------------------- heuristic
def test_greedy_order_is_smallest_first_connected(clique6):
    bound = _bind(clique6)
    order = greedy_quantifier_order(clique6.catalog, bound, False)
    assert sorted(q.alias for q in order) == sorted(
        q.alias for q in bound.quantifiers
    )
    rows = [clique6.catalog.table_stats(q.table).row_count for q in order]
    assert rows[0] == min(rows)  # starts from the smallest table


def test_heuristic_result_is_a_real_optimization(clique10):
    bound = _bind(clique10)
    result = optimize_heuristic(clique10.catalog, bound, NO_CROSS)
    assert result.engine == "heuristic"
    assert math.isfinite(result.best_cost) and result.best_cost > 0
    assert result.best_plan.render()
    assert {"setup", "implement", "annotate", "bestplan"} <= set(
        result.timings
    )
    assert _execute(clique10, result.best_plan).rows


# ------------------------------------------------------------ session API
def test_session_deadline_roundtrip(clique10):
    session = Session(clique10.database, options=NO_CROSS)
    result = session.optimize(clique10.sql, deadline_s=0.1)
    assert result.resilience is not None
    assert result.resilience.degraded
    assert result.explain()


def test_session_rejects_deadline_on_sampled_method(clique6):
    session = Session(clique6.database, options=NO_CROSS)
    with pytest.raises(PlanSpaceError):
        session.optimize(clique6.sql, method="sampled", deadline_s=1.0)


# ------------------------------------------------- degraded-plan property
@pytest.mark.parametrize("seed", range(5))
def test_degraded_plans_render_cost_execute(seed):
    """Property: whatever tier serves, the plan renders, costs finitely,
    and executes — across random join topologies."""
    workload = random_query(7, edge_density=0.5, seed=seed)
    bound = _bind(workload)
    # Force degradation regardless of how fast exact is on this shape
    # (either exploration strategy: whichever the memo picks, it faults).
    with inject(
        FaultSpec("explore.batch", action="raise"),
        FaultSpec("explore.object", action="raise"),
    ):
        result = optimize_resilient(
            workload.catalog,
            bound,
            NO_CROSS,
            budget=Budget(deadline_s=30.0),
        )
    assert result.resilience.degraded
    assert result.best_plan.render()
    assert math.isfinite(result.best_cost) and result.best_cost > 0
    executed = _execute(workload, result.best_plan)
    assert executed.columns
