"""The fault-injection matrix: every site × {raise, delay}.

The matrix iterates :data:`repro.resilience.faults.FAULT_SITES` so a new
``fault_point`` in a hot loop is exercised the moment it is registered.
For every site it proves the three resilience invariants:

1. **recovery** — the degradation ladder still serves an executable,
   costed plan after the fault (or, for executor faults, the session
   survives and re-executes cleanly);
2. **memo consistency** — an interrupted columnar build never leaves a
   half-built store attached to the memo (stale ``memo.columnar`` /
   ``memo.columnar_logical`` must not survive);
3. **bounded stall** — a ``delay`` fault only stalls until the next
   checkpoint, where the deadline is observed and the ladder degrades.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import MemoError
from repro.executor.executor import PlanExecutor
from repro.memo.columnar import build_columnar_store, build_logical_store
from repro.optimizer.implementation import implement_memo_columnar
from repro.optimizer.optimizer import (
    Optimizer,
    OptimizerOptions,
    _detach_stale_stores,
)
from repro.optimizer.setup import build_initial_memo
from repro.resilience import Budget, optimize_resilient
from repro.resilience.faults import (
    FAULT_SITES,
    FaultSpec,
    InjectedFault,
    fault_point,
    inject,
)
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import clique_query

COLUMNAR = OptimizerOptions(allow_cross_products=False)
OBJECT = OptimizerOptions(
    allow_cross_products=False, columnar=False, batched_exploration=False
)

#: exact-tier sites and the optimizer options that reach them
EXACT_SITES = {
    "explore.batch": COLUMNAR,
    "implement.columnar": COLUMNAR,
    "bestplan.layer": COLUMNAR,
    "explore.object": OBJECT,
    "implement.object": OBJECT,
    "bestplan.object": OBJECT,
}

#: sites only reachable once the ladder falls through to the sampled tier
SAMPLED_SITES = ("implicit.count", "sampled.batch")


@pytest.fixture(scope="module")
def clique6():
    return clique_query(6)


def _bind(workload):
    return Binder(workload.catalog).bind(parse(workload.sql))


def _assert_served(workload, result):
    assert result.best_plan is not None
    assert result.best_plan.render()
    assert math.isfinite(result.best_cost) and result.best_cost > 0
    executed = PlanExecutor(workload.database).execute(result.best_plan)
    assert executed.rows


def test_matrix_covers_every_registered_site():
    """Adding a fault site without wiring it into this matrix is an
    error: the registry and the matrix must stay in lock-step."""
    covered = set(EXACT_SITES) | set(SAMPLED_SITES) | {"execute.operator"}
    assert covered == set(FAULT_SITES)


# ----------------------------------------------------------- raise matrix
@pytest.mark.parametrize("site", sorted(EXACT_SITES))
def test_raise_in_exact_tier_degrades_and_serves(site, clique6):
    bound = _bind(clique6)
    with inject(FaultSpec(site, action="raise")) as injector:
        result = optimize_resilient(
            clique6.catalog, bound, EXACT_SITES[site]
        )
    assert any(f.startswith(f"{site}#") for f in injector.fired)
    report = result.resilience
    assert report.degraded
    assert report.attempts[0].tier == "exact"
    assert report.attempts[0].outcome == "error"
    assert "InjectedFault" in report.attempts[0].detail
    _assert_served(clique6, result)


@pytest.mark.parametrize("site", SAMPLED_SITES)
def test_raise_in_sampled_tier_falls_to_heuristic(site, clique6):
    bound = _bind(clique6)
    # Kill the exact tier first so the ladder reaches the sampled engine,
    # then fault the sampled site itself on its first hit there.
    with inject(
        FaultSpec("explore.batch", action="raise"),
        FaultSpec(site, action="raise"),
    ) as injector:
        result = optimize_resilient(clique6.catalog, bound, COLUMNAR)
    assert any(f.startswith(f"{site}#") for f in injector.fired)
    report = result.resilience
    assert report.tier == "heuristic"
    assert [a.outcome for a in report.attempts] == [
        "error",
        "error",
        "served",
    ]
    _assert_served(clique6, result)


def test_raise_in_executor_leaves_session_reusable(clique6):
    result = Optimizer(clique6.catalog, COLUMNAR).optimize(_bind(clique6))
    executor = PlanExecutor(clique6.database)
    clean = executor.execute(result.best_plan)
    with inject(FaultSpec("execute.operator", action="raise")):
        with pytest.raises(InjectedFault):
            executor.execute(result.best_plan)
    # The fault aborted one run; the executor and data are untouched.
    again = executor.execute(result.best_plan)
    assert again.rows == clean.rows


# ----------------------------------------------------------- delay matrix
@pytest.mark.parametrize("site", sorted(EXACT_SITES))
def test_delay_in_exact_tier_hits_the_deadline(site, clique6):
    """A stalled phase only stalls until the next checkpoint: the
    deadline fires there and the ladder serves a degraded plan."""
    bound = _bind(clique6)
    with inject(FaultSpec(site, action="delay", delay_s=0.3)) as injector:
        result = optimize_resilient(
            clique6.catalog,
            bound,
            EXACT_SITES[site],
            budget=Budget(deadline_s=0.2),
        )
    assert any(f.startswith(f"{site}#") for f in injector.fired)
    report = result.resilience
    assert report.degraded
    assert report.attempts[0].outcome == "timeout"
    _assert_served(clique6, result)


@pytest.mark.parametrize("site", SAMPLED_SITES)
def test_delay_in_sampled_tier_hits_the_deadline(site, clique6):
    bound = _bind(clique6)
    with inject(
        FaultSpec("explore.batch", action="raise"),
        FaultSpec(site, action="delay", delay_s=0.4),
    ) as injector:
        result = optimize_resilient(
            clique6.catalog,
            bound,
            COLUMNAR,
            budget=Budget(deadline_s=0.3),
        )
    assert any(f.startswith(f"{site}#") for f in injector.fired)
    report = result.resilience
    assert report.tier == "heuristic"
    assert [a.tier for a in report.attempts] == [
        "exact",
        "sampled",
        "heuristic",
    ]
    assert report.attempts[1].outcome == "timeout"
    _assert_served(clique6, result)


def test_delay_in_executor_returns_correct_rows(clique6):
    result = Optimizer(clique6.catalog, COLUMNAR).optimize(_bind(clique6))
    executor = PlanExecutor(clique6.database)
    clean = executor.execute(result.best_plan)
    with inject(FaultSpec("execute.operator", action="delay", delay_s=0.05)):
        delayed = executor.execute(result.best_plan)
    assert delayed.rows == clean.rows


# ------------------------------------------------------- memo consistency
def test_interrupted_logical_build_never_attaches(clique6):
    setup = build_initial_memo(_bind(clique6), False)
    with inject(FaultSpec("explore.batch", action="raise", nth=3)):
        with pytest.raises(InjectedFault):
            build_logical_store(setup.memo, setup.graph, False)
    assert setup.memo.columnar_logical is None


def test_interrupted_physical_build_never_attaches(clique6):
    options = COLUMNAR
    optimizer = Optimizer(clique6.catalog, options)
    setup = build_initial_memo(_bind(clique6), False)
    memo, graph = setup.memo, setup.graph
    optimizer._make_explorer().explore(memo, graph, False)
    with inject(FaultSpec("implement.columnar", action="raise", nth=2)):
        with pytest.raises(InjectedFault):
            implement_memo_columnar(memo, graph, clique6.catalog)
    assert memo.columnar is None
    # The memo is not poisoned: a clean retry completes and matches an
    # untouched end-to-end run.
    implement_memo_columnar(memo, graph, clique6.catalog)
    assert memo.columnar is not None and memo.columnar.complete


def test_incomplete_store_refuses_to_attach(clique6):
    setup = build_initial_memo(_bind(clique6), False)
    store = build_logical_store(setup.memo, setup.graph, False)
    assert store.complete
    store.complete = False  # simulate an interrupted build
    with pytest.raises(MemoError, match="incomplete"):
        store.attach()
    assert setup.memo.columnar_logical is None


def test_detach_stale_stores_drops_only_incomplete(clique6):
    result = Optimizer(clique6.catalog, COLUMNAR).optimize(_bind(clique6))
    memo = result.memo
    assert memo.columnar is not None and memo.columnar.complete
    _detach_stale_stores(memo)  # complete stores survive the sweep
    assert memo.columnar is not None
    memo.columnar.complete = False
    _detach_stale_stores(memo)
    assert memo.columnar is None


def test_optimizer_late_fault_propagates_cleanly(clique6):
    """A fault raised after the stores attached (in the best-plan DP)
    propagates out of ``Optimizer.optimize`` unchanged — the stale-store
    guard drops *incomplete* state only and never swallows the error."""
    optimizer = Optimizer(clique6.catalog, COLUMNAR)
    with inject(FaultSpec("bestplan.layer", action="raise")):
        with pytest.raises(InjectedFault):
            optimizer.optimize(_bind(clique6))
    # The optimizer object itself is reusable afterwards.
    result = optimizer.optimize(_bind(clique6))
    assert result.memo.columnar is not None and result.memo.columnar.complete


# ------------------------------------------------------- harness plumbing
def test_fault_point_is_inert_without_injector():
    fault_point("explore.batch", None)  # no injector armed: no-op


def test_nested_injection_rejected():
    with inject(FaultSpec("explore.batch")):
        with pytest.raises(RuntimeError, match="already active"):
            with inject(FaultSpec("explore.object")):
                pass


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSpec("no.such.site")
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultSpec("explore.batch", action="explode")
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec("explore.batch", nth=0)
    with pytest.raises(ValueError, match="corrupt"):
        FaultSpec("explore.batch", action="corrupt")


def test_nth_hit_is_deterministic(clique6):
    """The same spec fires at the same hit on every run."""
    fired = []
    for _ in range(2):
        fresh = build_initial_memo(_bind(clique6), False)
        with inject(FaultSpec("explore.batch", action="raise", nth=4)) as inj:
            with pytest.raises(InjectedFault):
                build_logical_store(fresh.memo, fresh.graph, False)
        fired.append(tuple(inj.fired))
    assert fired[0] == fired[1] == ("explore.batch#4:raise",)
