"""Unit tests for budgets, cancellation tokens, and scopes."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    BudgetError,
    Cancelled,
    ResourceExhausted,
    TimeoutExceeded,
)
from repro.resilience import (
    Budget,
    BudgetScope,
    CancellationToken,
    validate_budget_s,
    validate_samples,
)


# ---------------------------------------------------------------- validators
def test_validate_budget_s_accepts_positive_and_none():
    assert validate_budget_s(None) is None
    assert validate_budget_s(1.5) == 1.5
    assert validate_budget_s(2) == 2.0
    assert isinstance(validate_budget_s(2), float)


@pytest.mark.parametrize(
    "bad", [0.0, -1.0, float("nan"), float("inf"), "1.0", True, [1.0]]
)
def test_validate_budget_s_rejects(bad):
    with pytest.raises(BudgetError):
        validate_budget_s(bad)


def test_validate_budget_s_names_the_argument():
    with pytest.raises(BudgetError, match="deadline_s"):
        validate_budget_s(-1.0, "deadline_s")


def test_validate_samples_accepts_positive_int_and_none():
    assert validate_samples(None) is None
    assert validate_samples(7) == 7


@pytest.mark.parametrize("bad", [0, -3, 1.5, True, "8"])
def test_validate_samples_rejects(bad):
    with pytest.raises(BudgetError):
        validate_samples(bad)


# -------------------------------------------------------------------- Budget
def test_budget_constructor_validates():
    with pytest.raises(BudgetError):
        Budget(deadline_s=0.0)
    with pytest.raises(BudgetError):
        Budget(max_expressions=0)
    with pytest.raises(BudgetError):
        Budget(max_memory_mb=-5.0)


def test_budget_start_is_idempotent():
    budget = Budget(deadline_s=10.0).start()
    first_remaining = budget.remaining_s()
    budget.start()  # must not re-pin the epoch
    assert budget.remaining_s() <= first_remaining
    assert budget.started


def test_budget_unbounded_never_expires():
    budget = Budget().start()
    assert budget.remaining_s() is None
    assert not budget.expired()
    budget.check("anywhere", units=10_000)  # no ceilings: no-op


def test_budget_deadline_expires():
    budget = Budget(deadline_s=0.005).start()
    time.sleep(0.01)
    assert budget.expired()
    assert budget.remaining_s() == 0.0
    with pytest.raises(TimeoutExceeded) as info:
        budget.check("explore.batch")
    assert "explore.batch" in str(info.value)
    assert info.value.deadline_s == 0.005


def test_budget_expression_ceiling():
    budget = Budget(max_expressions=10).start()
    budget.check(units=10)  # exactly at the ceiling: fine
    with pytest.raises(ResourceExhausted) as info:
        budget.check("implement.columnar", units=1)
    assert info.value.resource == "expressions"
    budget.reset_expressions()
    budget.check(units=10)  # fresh counter after reset


def test_budget_memory_ceiling():
    # Peak RSS of any live python process dwarfs a 0.001 MiB ceiling.
    budget = Budget(max_memory_mb=0.001).start()
    with pytest.raises(ResourceExhausted) as info:
        budget.check("bestplan.layer")
    assert info.value.resource == "memory"


def test_budget_elapsed_monotone():
    budget = Budget()
    assert budget.elapsed_s() == 0.0  # not started yet
    budget.start()
    a = budget.elapsed_s()
    b = budget.elapsed_s()
    assert 0.0 <= a <= b


# ------------------------------------------------------------------- Token
def test_cancellation_token_is_one_shot():
    token = CancellationToken()
    assert not token.cancelled
    token.raise_if_cancelled()  # not yet set: no-op
    token.cancel()
    assert token.cancelled
    token.cancel()  # idempotent
    with pytest.raises(Cancelled):
        token.raise_if_cancelled()


# ------------------------------------------------------------------- Scope
def test_scope_checkpoint_noop_without_bounds():
    scope = BudgetScope()
    scope.checkpoint("anywhere", units=1_000_000)
    assert scope.remaining_s() is None


def test_scope_starts_its_budget():
    budget = Budget(deadline_s=5.0)
    assert not budget.started
    scope = BudgetScope(budget)
    assert budget.started
    assert scope.remaining_s() <= 5.0


def test_scope_cancellation_wins_over_deadline():
    token = CancellationToken()
    token.cancel()
    budget = Budget(deadline_s=0.001)
    scope = BudgetScope(budget, token)
    time.sleep(0.005)  # deadline also expired
    with pytest.raises(Cancelled) as info:
        scope.checkpoint("explore.batch")
    assert "explore.batch" in str(info.value)


def test_scope_delegates_units_to_budget():
    budget = Budget(max_expressions=3)
    scope = BudgetScope(budget)
    scope.checkpoint("a", units=2)
    with pytest.raises(ResourceExhausted):
        scope.checkpoint("b", units=2)


def test_budget_errors_are_one_taxonomy():
    # Scripts catch BudgetError and get both flavours; Cancelled is its
    # own class (a user decision, not an exhausted budget).
    assert issubclass(TimeoutExceeded, BudgetError)
    assert issubclass(ResourceExhausted, BudgetError)
    assert not issubclass(Cancelled, BudgetError)
