"""Tests for the Table 1 reproduction harness."""

import pytest

from repro.experiments.distributions import CostDistribution
from repro.experiments.table1 import (
    PAPER_TABLE1,
    reproduce_table1,
    render_table1,
    row_from_distribution,
)


@pytest.fixture(scope="module")
def catalog():
    from repro.catalog.tpch import tpch_catalog

    return tpch_catalog()


class TestPaperReference:
    def test_eight_rows(self):
        assert len(PAPER_TABLE1) == 8

    def test_row_order_matches_paper(self):
        assert [r.query for r in PAPER_TABLE1] == [
            "Q5", "Q7", "Q8", "Q9", "Q5", "Q7", "Q8", "Q9",
        ]
        assert [r.cross_products for r in PAPER_TABLE1[:4]] == [False] * 4

    def test_q8_dominates_both_spaces(self):
        no_cross = {r.query: r.plans for r in PAPER_TABLE1 if not r.cross_products}
        with_cross = {r.query: r.plans for r in PAPER_TABLE1 if r.cross_products}
        assert no_cross["Q8"] == max(no_cross.values())
        assert with_cross["Q8"] == max(with_cross.values())

    def test_cross_products_inflate_every_space(self):
        no_cross = {r.query: r.plans for r in PAPER_TABLE1 if not r.cross_products}
        with_cross = {r.query: r.plans for r in PAPER_TABLE1 if r.cross_products}
        for query in no_cross:
            assert with_cross[query] > no_cross[query]


class TestMeasuredTable:
    def test_small_scale_run(self, catalog):
        # Use Q5 only and a small sample to keep the test quick; the full
        # table is produced by the benchmark harness.
        distributions = reproduce_table1(
            catalog, sample_size=300, seed=0, queries=("Q5",)
        )
        assert len(distributions) == 2  # both cross-product policies
        row = row_from_distribution(distributions[0])
        assert row.query == "Q5" and not row.cross_products
        assert row.plans > 1_000_000
        assert row.min_cost >= 1.0

    def test_cross_space_larger(self, catalog):
        distributions = reproduce_table1(
            catalog, sample_size=100, seed=0, queries=("Q5",)
        )
        no_cross, with_cross = distributions
        assert with_cross.total_plans > no_cross.total_plans

    def test_render_includes_paper_rows(self, catalog):
        distributions = reproduce_table1(
            catalog, sample_size=100, seed=0, queries=("Q5",)
        )
        text = render_table1(distributions)
        assert "68,572,049" in text  # the paper's Q5 count
        assert "no-cross" in text and "+cross" in text

    def test_render_without_paper(self):
        dist = CostDistribution(
            query_name="Q5",
            allow_cross_products=False,
            total_plans=123,
            best_cost=1.0,
            scaled_costs=[1.0, 2.0, 3.0],
        )
        text = render_table1([dist], show_paper=False)
        assert "123" in text
        assert "68,572,049" not in text
