"""Tests for cost-distribution sampling (Section 5)."""

import pytest

from repro.experiments.distributions import (
    CostDistribution,
    distribution_from_result,
    sample_cost_distribution,
)
from repro.workloads.tpch_queries import tpch_query


@pytest.fixture(scope="module")
def q3_dist(catalog):
    return sample_cost_distribution(
        catalog,
        tpch_query("Q3").sql,
        query_name="Q3",
        allow_cross_products=False,
        sample_size=2_000,
        seed=0,
    )


# Re-declare catalog at module scope for the fixture above.
@pytest.fixture(scope="module")
def catalog():
    from repro.catalog.tpch import tpch_catalog

    return tpch_catalog()


class TestScaledCosts:
    def test_costs_scaled_to_optimum(self, q3_dist):
        # The optimum has cost 1.0; no sampled plan can beat it.
        assert q3_dist.minimum() >= 1.0

    def test_sample_size(self, q3_dist):
        assert q3_dist.sample_size == 2_000

    def test_mean_between_min_and_max(self, q3_dist):
        assert q3_dist.minimum() <= q3_dist.mean() <= q3_dist.maximum()

    def test_fractions_monotone(self, q3_dist):
        assert q3_dist.fraction_within(2) <= q3_dist.fraction_within(10) <= 1.0

    def test_some_plans_near_optimum(self, q3_dist):
        # Paper: "with a relatively small sample ... it is possible to find
        # plans that are pretty close to the optimum".
        assert q3_dist.fraction_within(10) > 0

    def test_distribution_right_skewed(self, q3_dist):
        assert q3_dist.skewness() > 0

    def test_median_and_lower_half(self, q3_dist):
        lower = q3_dist.lower_half()
        assert len(lower) == q3_dist.sample_size // 2
        assert max(lower) <= q3_dist.median() * 1.0001

    def test_gamma_shape_fitted(self, q3_dist):
        shape = q3_dist.gamma_shape()
        assert shape is not None
        assert shape > 0

    def test_describe_mentions_key_stats(self, q3_dist):
        text = q3_dist.describe()
        assert "Q3" in text and "sample=2000" in text


class TestDeterminism:
    def test_same_seed_same_distribution(self, catalog):
        kwargs = dict(
            query_name="Q3", allow_cross_products=False, sample_size=200, seed=7
        )
        a = sample_cost_distribution(catalog, tpch_query("Q3").sql, **kwargs)
        b = sample_cost_distribution(catalog, tpch_query("Q3").sql, **kwargs)
        assert a.scaled_costs == b.scaled_costs

    def test_different_seed_differs(self, catalog):
        a = sample_cost_distribution(
            catalog, tpch_query("Q3").sql, "Q3", sample_size=200, seed=1
        )
        b = sample_cost_distribution(
            catalog, tpch_query("Q3").sql, "Q3", sample_size=200, seed=2
        )
        assert a.scaled_costs != b.scaled_costs


class TestFromResult:
    def test_distribution_from_existing_result(self, catalog):
        from repro.optimizer.optimizer import Optimizer, OptimizerOptions

        result = Optimizer(
            catalog, OptimizerOptions(allow_cross_products=False)
        ).optimize_sql(tpch_query("Q3").sql)
        dist = distribution_from_result(result, "Q3", sample_size=100, seed=0)
        assert dist.total_plans > 0
        assert dist.best_cost == result.best_cost

    def test_gamma_shape_none_for_degenerate(self):
        dist = CostDistribution(
            query_name="x",
            allow_cross_products=False,
            total_plans=1,
            best_cost=1.0,
            scaled_costs=[1.0, 1.0, 1.0],
        )
        assert dist.gamma_shape() is None
