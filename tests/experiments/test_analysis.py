"""Tests for plan-space analysis utilities."""

import pytest

from repro.algebra.expressions import ColumnId, ColumnRef
from repro.algebra.physical import (
    HashJoin,
    IndexNestedLoopJoin,
    PhysicalProject,
    TableScan,
)
from repro.experiments.analysis import (
    analyze_plans,
    classify_join_shape,
    operator_mix,
)
from repro.optimizer.plan import PlanNode

A = ColumnId("a", "x")
B = ColumnId("b", "x")
C = ColumnId("c", "x")
D = ColumnId("d", "x")


def scan(alias, gid):
    return PlanNode(TableScan(alias, alias), (), gid, 1, 10.0)


def join(left, right, gid, lk=A, rk=B):
    return PlanNode(HashJoin((lk,), (rk,)), (left, right), gid, 1, 10.0)


class TestShapeClassification:
    def test_single_scan_no_join(self):
        assert classify_join_shape(scan("a", 0)) == "no-join"

    def test_single_join_left_deep(self):
        plan = join(scan("a", 0), scan("b", 1), 2)
        assert classify_join_shape(plan) == "left-deep"

    def test_left_deep_chain(self):
        plan = join(
            join(scan("a", 0), scan("b", 1), 2, A, B),
            scan("c", 3),
            4,
            A,
            C,
        )
        assert classify_join_shape(plan) == "left-deep"

    def test_right_deep_chain(self):
        plan = join(
            scan("a", 0),
            join(scan("b", 1), scan("c", 2), 3, B, C),
            4,
            A,
            B,
        )
        assert classify_join_shape(plan) == "right-deep"

    def test_bushy(self):
        left = join(scan("a", 0), scan("b", 1), 2, A, B)
        right = join(scan("c", 3), scan("d", 4), 5, C, D)
        plan = join(left, right, 6, A, C)
        assert classify_join_shape(plan) == "bushy"

    def test_linear_zigzag(self):
        inner = join(scan("a", 0), scan("b", 1), 2, A, B)
        middle = join(scan("c", 3), inner, 4, C, A)  # join on the right
        outer = join(middle, scan("d", 5), 6, A, D)  # join on the left
        assert classify_join_shape(outer) == "linear"

    def test_index_join_counts_as_left_deep(self):
        inlj = IndexNestedLoopJoin(
            inner_table="b",
            inner_alias="b",
            index_name="b_x",
            outer_keys=(A,),
            inner_keys=(B,),
        )
        inner = join(scan("a", 0), scan("c", 1), 2, A, C)
        plan = PlanNode(inlj, (inner,), 3, 1, 10.0)
        assert classify_join_shape(plan) == "left-deep"


class TestAnalysis:
    def test_operator_mix_counts(self):
        plan = join(scan("a", 0), scan("b", 1), 2)
        counts = operator_mix([plan, plan])
        assert counts["TableScan"] == 4
        assert counts["HashJoin"] == 2

    def test_analyze_plans_aggregates(self):
        plans = [
            join(scan("a", 0), scan("b", 1), 2),
            PlanNode(
                PhysicalProject((("x", ColumnRef(A)),)),
                (scan("a", 0),),
                3,
                1,
                10.0,
            ),
        ]
        analysis = analyze_plans(plans)
        assert analysis.sample_size == 2
        assert analysis.shape_counts["left-deep"] == 1
        assert analysis.shape_counts["no-join"] == 1
        assert analysis.containment_fraction("TableScan") == 1.0
        assert analysis.containment_fraction("HashJoin") == 0.5
        assert analysis.mean_plan_size == pytest.approx((3 + 2) / 2)

    def test_empty_sample(self):
        analysis = analyze_plans([])
        assert analysis.sample_size == 0
        assert analysis.shape_fraction("bushy") == 0.0

    def test_render(self):
        plan = join(scan("a", 0), scan("b", 1), 2)
        text = analyze_plans([plan]).render()
        assert "left-deep" in text and "HashJoin" in text


class TestOnRealSpace:
    def test_q5_sample_contains_all_shapes(self, q5_space):
        plans = q5_space.sample(300, seed=0)
        analysis = analyze_plans(plans)
        # A bushy space sampled uniformly shows bushy and deep trees alike.
        assert analysis.shape_counts["bushy"] > 0
        assert (
            analysis.shape_counts["left-deep"]
            + analysis.shape_counts["right-deep"]
            + analysis.shape_counts["linear"]
            > 0
        )

    def test_q5_sample_uses_all_join_algorithms(self, q5_space):
        plans = q5_space.sample(300, seed=0)
        analysis = analyze_plans(plans)
        for name in ("HashJoin", "MergeJoin", "NestedLoopJoin"):
            assert analysis.containment_fraction(name) > 0, name
