"""Tests for the Figure 4 reproduction."""

import pytest

from repro.experiments.distributions import CostDistribution
from repro.experiments.figure4 import figure4_histogram, render_figure4


@pytest.fixture
def dist():
    # A synthetic exponential-ish scaled-cost sample.
    import random

    rng = random.Random(0)
    costs = [1.0 + rng.expovariate(0.5) for _ in range(2000)]
    return CostDistribution(
        query_name="Q5",
        allow_cross_products=False,
        total_plans=10**9,
        best_cost=1.0,
        scaled_costs=costs,
    )


class TestFigure4:
    def test_histogram_covers_lower_half(self, dist):
        hist = figure4_histogram(dist)
        assert sum(hist.counts) == dist.sample_size // 2

    def test_title_names_query(self, dist):
        hist = figure4_histogram(dist)
        assert "Q5" in hist.title
        assert "lower 50%" in hist.title

    def test_exponential_shape_detected(self, dist):
        shape = dist.gamma_shape()
        assert shape is not None
        assert 0.6 < shape < 1.6  # close to 1, as the paper observes

    def test_histogram_decreasing_for_exponential(self, dist):
        hist = figure4_histogram(dist, bins=10)
        # First bin should dominate the last for an exponential shape.
        assert hist.counts[0] > hist.counts[-1] * 2

    def test_render_mentions_gamma(self, dist):
        text = render_figure4([dist])
        assert "gamma shape" in text
        assert "#" in text

    def test_render_multiple_panels(self, dist):
        text = render_figure4([dist, dist])
        assert text.count("lower 50%") == 2
