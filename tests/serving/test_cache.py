"""PlanCache unit contracts: LRU determinism, epoch invalidation,
template-tier merging, counters."""

import pytest

from repro.obs import Metrics
from repro.serving.cache import CacheKey, PlanCache, TemplateArtifacts

K = CacheKey(template="SELECT ?", catalog="cat0", config="cfg0")
K2 = CacheKey(template="SELECT ?, ?", catalog="cat0", config="cfg0")


def p(v: str):
    return (("integer", v),)


class TestPlanTier:
    def test_roundtrip_and_params_distinguish(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "plan-1", False)
        hit = cache.lookup_plan(K, p("1"), False)
        assert hit is not None and hit.result == "plan-1"
        assert cache.lookup_plan(K, p("2"), False) is None
        assert cache.lookup_plan(K2, p("1"), False) is None

    def test_feedback_flag_is_part_of_the_key(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "static", False)
        assert cache.lookup_plan(K, p("1"), True, epoch=0) is None
        cache.store_plan(K, p("1"), "costed", True, epoch=0)
        assert cache.lookup_plan(K, p("1"), False).result == "static"
        assert cache.lookup_plan(K, p("1"), True, epoch=0).result == "costed"

    def test_lru_eviction_is_deterministic(self):
        cache = PlanCache(max_plans=2)
        cache.store_plan(K, p("1"), "r1", False)
        cache.store_plan(K, p("2"), "r2", False)
        # Touch r1: r2 becomes the least recently used entry.
        assert cache.lookup_plan(K, p("1"), False) is not None
        cache.store_plan(K, p("3"), "r3", False)
        assert cache.lookup_plan(K, p("2"), False) is None
        assert cache.lookup_plan(K, p("1"), False) is not None
        assert cache.lookup_plan(K, p("3"), False) is not None
        assert cache.stats()["plan.evictions"] == 1
        assert cache.stats()["plan.size"] == 2

    def test_hit_counts_accumulate(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "r1", False)
        for expected in (1, 2, 3):
            assert cache.lookup_plan(K, p("1"), False).hits == expected


class TestEpochInvalidation:
    def test_moved_epoch_invalidates_instead_of_serving(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "r1", True, epoch=0)
        assert cache.lookup_plan(K, p("1"), True, epoch=1) is None
        stats = cache.stats()
        assert stats["plan.invalidations"] == 1
        assert stats["plan.size"] == 0
        # The entry is gone, not hidden: same-epoch lookups miss too.
        assert cache.lookup_plan(K, p("1"), True, epoch=0) is None

    def test_same_epoch_serves(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "r1", True, epoch=3)
        assert cache.lookup_plan(K, p("1"), True, epoch=3).result == "r1"

    def test_eager_invalidate_epoch_spares_static_entries(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "static", False)
        cache.store_plan(K, p("2"), "old", True, epoch=0)
        cache.store_plan(K, p("3"), "fresh", True, epoch=5)
        assert cache.invalidate_epoch(5) == 1
        assert cache.lookup_plan(K, p("1"), False) is not None
        assert cache.lookup_plan(K, p("2"), True, epoch=5) is None
        assert cache.lookup_plan(K, p("3"), True, epoch=5) is not None


class TestTemplateTier:
    def test_store_merges_gaps_without_resetting(self):
        cache = PlanCache()
        first = TemplateArtifacts(implicit_count=42)
        cache.store_template(K, first)
        cache.store_template(K, TemplateArtifacts(logical="L", edges="E"))
        merged = cache.lookup_template(K)
        assert merged is first  # identity kept: age/replays survive
        assert merged.logical == "L"
        assert merged.edges == "E"
        assert merged.implicit_count == 42

    def test_lru_eviction(self):
        cache = PlanCache(max_templates=1)
        cache.store_template(K, TemplateArtifacts(implicit_count=1))
        cache.store_template(K2, TemplateArtifacts(implicit_count=2))
        assert cache.lookup_template(K) is None
        assert cache.lookup_template(K2) is not None
        assert cache.stats()["template.evictions"] == 1

    def test_implicit_count_roundtrip(self):
        cache = PlanCache()
        assert cache.implicit_count(K) is None
        cache.store_implicit_count(K, 60416)
        assert cache.implicit_count(K) == 60416
        # Filling the count does not clobber other artifact slots.
        cache.store_template(K, TemplateArtifacts(logical="L"))
        cache.store_implicit_count(K, 60416)
        assert cache.lookup_template(K).logical == "L"


class TestCountersAndMetrics:
    def test_counters_mirror_into_metrics(self):
        cache = PlanCache()
        metrics = Metrics()
        cache.lookup_plan(K, p("1"), False, metrics=metrics)
        cache.store_plan(K, p("1"), "r1", False)
        cache.lookup_plan(K, p("1"), False, metrics=metrics)
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["plancache.plan.misses"] == 1
        assert snapshot["plancache.plan.hits"] == 1

    def test_clear_and_len(self):
        cache = PlanCache()
        cache.store_plan(K, p("1"), "r1", False)
        cache.store_template(K, TemplateArtifacts(implicit_count=1))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup_template(K) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(max_plans=0)
        with pytest.raises(ValueError):
            PlanCache(max_templates=0)
