"""Cached plans must not silently outlive the feedback that priced them.

The scenario: a misestimated three-way join (the optimizer's estimate is
off by orders of magnitude), a plan cached under feedback costing, then
new observations that move the picture again.  Serving the old plan
would silently ignore ``feedback=`` — the bug class this suite pins
down."""

import pytest

from repro.api import Session
from repro.obs.feedback import EPOCH_Q_THRESHOLD
from repro.serving import PlanCache

SQL = (
    "SELECT * FROM customer c, orders o, lineitem l "
    "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
    "AND o.o_totalprice < {lit}"
)


@pytest.fixture(scope="module")
def database():
    return Session.tpch(seed=0).database


def misestimate(session, universe, mask, actual):
    """Feed one grossly wrong observation (q-error far past threshold)."""
    session.ledger.observe(universe, mask, actual_rows=actual, est_rows=1.0)


class TestEpochBumping:
    def test_threshold_gates_the_epoch(self, database):
        session = Session(database)
        universe = ("a", "b")
        epoch = session.ledger.stats_epoch
        # Accurate first observation: no bump.
        session.ledger.observe(universe, 0b11, actual_rows=100.0, est_rows=90.0)
        assert session.ledger.stats_epoch == epoch
        # Misestimate past the q-error threshold: bump.
        session.ledger.observe(universe, 0b01, actual_rows=100.0, est_rows=1.0)
        assert session.ledger.stats_epoch == epoch + 1
        # Converged re-observation of the same subplan: no further bump.
        before = session.ledger.stats_epoch
        session.ledger.observe(universe, 0b01, actual_rows=100.0, est_rows=100.0)
        assert session.ledger.stats_epoch == before
        assert EPOCH_Q_THRESHOLD == 2.0


class TestFeedbackServing:
    def test_stale_feedback_plan_is_recosted_not_served(self, database):
        session = Session(database, plan_cache=PlanCache())
        sql = SQL.format(lit="1000.0")
        cold = session.optimize(sql)
        universe = cold.graph.universe.order
        # The ledger was empty, so the cold run was costed statically.
        assert cold.cache.tier == "miss"

        # Feed a gross misestimate covering the lineitem+orders subplan.
        li = universe.index("l")
        oi = universe.index("o")
        mask = (1 << li) | (1 << oi)
        misestimate(session, universe, mask, actual=500000.0)
        epoch_one = session.ledger.stats_epoch
        assert epoch_one > 0

        costed = session.optimize(sql, feedback=True)
        assert costed.cache.tier in ("template", "miss")
        assert costed.estimator.feedback_hits > 0  # the ledger was used

        served = session.optimize(sql, feedback=True)
        assert served.cache.tier == "plan"
        assert served.explain() == costed.explain()

        # The world changes again: a *new* subplan comes back grossly
        # misestimated, the epoch moves, and the cached plan must die.
        ci = universe.index("c")
        mask_co = (1 << ci) | (1 << oi)
        misestimate(session, universe, mask_co, actual=300000.0)
        assert session.ledger.stats_epoch > epoch_one
        recosted = session.optimize(sql, feedback=True)
        assert recosted.cache.tier != "plan"
        assert recosted.estimator.feedback_hits > 0
        assert session.plan_cache.stats()["plan.invalidations"] >= 1

        # And the re-costed plan becomes the new cached entry.
        assert session.optimize(sql, feedback=True).cache.tier == "plan"

    def test_feedback_and_static_entries_never_alias(self, database):
        session = Session(database, plan_cache=PlanCache())
        sql = SQL.format(lit="1000.0")
        universe = Session(database).optimize(sql).graph.universe.order
        misestimate(session, universe, 0b111, actual=123456.0)

        static = session.optimize(sql)
        assert static.cache.tier == "miss"
        costed = session.optimize(sql, feedback=True)
        # The feedback-costed request must not be served the static
        # entry: the keys differ on the feedback flag.
        assert costed.cache.tier != "plan"
        # Each flavour then hits its own entry.
        assert session.optimize(sql).cache.tier == "plan"
        assert session.optimize(sql, feedback=True).cache.tier == "plan"

    def test_epoch_survives_ledger_roundtrip(self, tmp_path, database):
        session = Session(database)
        universe = ("a", "b")
        session.ledger.observe(universe, 0b01, actual_rows=100.0, est_rows=1.0)
        assert session.ledger.stats_epoch == 1
        path = tmp_path / "ledger.json"
        session.ledger.save(path)
        from repro.obs.feedback import CardinalityLedger

        loaded = CardinalityLedger.load(path)
        assert loaded.stats_epoch == 1
