"""End-to-end serving: cold-vs-warm identity, explore-skipping span
shapes, and the concurrent hammer."""

import pytest

from repro.api import Session
from repro.serving import PlanCache, PlanServer

SQL = (
    "SELECT * FROM customer c, orders o, lineitem l "
    "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
    "AND o.o_totalprice < {lit}"
)


@pytest.fixture(scope="module")
def database():
    return Session.tpch(seed=0).database


def cached_session(database):
    return Session(database, plan_cache=PlanCache())


def span_names(span):
    names = [span.name]
    for child in span.children:
        names.extend(span_names(child))
    return names


class TestColdVersusWarm:
    def test_warm_hit_is_byte_identical(self, database):
        session = cached_session(database)
        sql = SQL.format(lit="1000.0")
        cold = session.optimize(sql)
        warm = session.optimize(sql)
        assert cold.cache.tier == "miss"
        assert warm.cache.tier == "plan"
        assert warm.explain() == cold.explain()
        assert warm.best_cost == cold.best_cost
        assert warm.cache.hits == 1
        assert warm.cache.template_age_s >= 0.0

    def test_plan_hit_trace_shape_proves_no_optimization(self, database):
        session = cached_session(database)
        sql = SQL.format(lit="1000.0")
        session.optimize(sql)
        warm = session.optimize(sql, trace=True)
        assert warm.cache.tier == "plan"
        assert warm.trace.name == "optimize"
        assert [c.name for c in warm.trace.children] == ["cache.hit"]

    def test_template_hit_skips_exploration(self, database):
        session = cached_session(database)
        session.optimize(SQL.format(lit="1000.0"))
        variant = session.optimize(SQL.format(lit="77777.0"), trace=True)
        assert variant.cache.tier == "template"
        names = span_names(variant.trace)
        assert "explore.cached" in names
        assert "explore" not in names  # enumeration never ran
        assert variant.timings["explore_source"] == "cached"

    def test_template_hit_matches_uncached_plan(self, database):
        cached = cached_session(database)
        cached.optimize(SQL.format(lit="1000.0"))
        variant = cached.optimize(SQL.format(lit="77777.0"))
        reference = Session(database).optimize(SQL.format(lit="77777.0"))
        assert variant.cache.tier == "template"
        assert variant.explain() == reference.explain()
        assert variant.best_cost == reference.best_cost

    def test_distinct_literals_are_distinct_plan_entries(self, database):
        # No parameter sniffing: x < 1000 and x < 77777 have different
        # selectivities and must never share a final plan entry.
        session = cached_session(database)
        session.optimize(SQL.format(lit="1000.0"))
        session.optimize(SQL.format(lit="77777.0"))
        stats = session.plan_cache.stats()
        assert stats["plan.size"] == 2
        assert stats["plan.hits"] == 0


class TestSessionIntegration:
    def test_prune_factor_splits_the_config_identity(self, database):
        session = cached_session(database)
        sql = SQL.format(lit="1000.0")
        session.optimize(sql)
        pruned = session.optimize(sql, prune_factor=1.5)
        assert pruned.cache.tier != "plan"  # different config signature
        assert session.optimize(sql, prune_factor=1.5).cache.tier == "plan"

    def test_implicit_count_cached_per_template(self, database):
        session = cached_session(database)
        n1 = session.count_plans(SQL.format(lit="1000.0"))
        hits_before = session.plan_cache.stats()["template.hits"]
        n2 = session.count_plans(SQL.format(lit="2.0"))
        assert n1 == n2  # N is literal-independent
        assert session.plan_cache.stats()["template.hits"] == hits_before + 1

    def test_sessions_share_one_cache(self, database):
        cache = PlanCache()
        sql = SQL.format(lit="1000.0")
        Session(database, plan_cache=cache).optimize(sql)
        other = Session(database, plan_cache=cache).optimize(sql)
        assert other.cache.tier == "plan"

    def test_no_cache_means_no_tagging(self, database):
        result = Session(database).optimize(SQL.format(lit="1000.0"))
        assert result.cache is None


class TestPlanServer:
    def test_hammer_64_clients_under_deadline(self, database):
        literals = [f"{1000.0 * (i + 1):.1f}" for i in range(8)]
        statements = [SQL.format(lit=lit) for lit in literals]
        reference = {
            sql: Session(database).optimize(sql).explain() for sql in statements
        }
        with PlanServer(database, workers=64, deadline_s=30.0) as server:
            futures = [
                server.submit(statements[i % len(statements)]) for i in range(64)
            ]
            results = [f.result(timeout=120) for f in futures]
            stats = server.stats()
        assert stats["errors"] == 0
        assert stats["requests"] == 64
        for i, result in enumerate(results):
            sql = statements[i % len(statements)]
            # Every request got its own literal's plan — a cross-request
            # leak would serve a neighbouring template instance's plan.
            assert result.explain() == reference[sql], f"request {i}"
            assert result.cache is not None
        tiers = {r.cache.tier for r in results}
        assert "plan" in tiers  # the warm majority
        cache_stats = stats["cache"]
        assert cache_stats["plan.hits"] > 0
        assert cache_stats["plan.hits"] + cache_stats["plan.misses"] >= 64

    def test_deadline_rides_the_resilience_ladder(self, database):
        with PlanServer(database, workers=2, deadline_s=30.0) as server:
            sql = SQL.format(lit="1000.0")
            cold = server.optimize(sql)
            assert cold.resilience is not None
            assert cold.resilience.tier == "exact"
            warm = server.optimize(sql)
            assert warm.cache.tier == "plan"

    def test_uncached_server(self, database):
        with PlanServer(database, workers=2, cache=False) as server:
            result = server.optimize(SQL.format(lit="1000.0"))
            assert result.cache is None
            assert server.stats().get("cache") is None

    def test_map_preserves_order(self, database):
        statements = [SQL.format(lit=f"{v}.0") for v in (1000, 2000, 1000)]
        with PlanServer(database, workers=4) as server:
            results = server.map(statements)
        assert len(results) == 3
        assert results[0].explain() == results[2].explain()

    def test_closed_server_rejects_work(self, database):
        server = PlanServer(database, workers=1)
        server.close()
        with pytest.raises(RuntimeError):
            server.submit("SELECT * FROM orders o")
