"""Fingerprint equivalence classes and cache-identity signatures."""

import pytest

from repro.optimizer.optimizer import OptimizerOptions
from repro.serving.fingerprint import (
    catalog_signature,
    fingerprint_sql,
    options_signature,
)
from repro.storage.datagen import generate_tpch


class TestTemplateEquivalence:
    def test_integer_literals_share_a_template(self):
        a = fingerprint_sql("SELECT * FROM t WHERE x = 5")
        b = fingerprint_sql("SELECT * FROM t WHERE x = 7000")
        assert a.template == b.template
        assert a.digest == b.digest
        assert a.params != b.params

    def test_whitespace_and_keyword_case_are_invisible(self):
        a = fingerprint_sql("select  *\n from t   where x = 5")
        b = fingerprint_sql("SELECT * FROM t WHERE x = 9")
        assert a.template == b.template

    def test_float_spelling_folds(self):
        a = fingerprint_sql("SELECT * FROM t WHERE y < 0.50")
        b = fingerprint_sql("SELECT * FROM t WHERE y < 0.5")
        assert a.template == b.template
        assert a.params == b.params  # 0.50 and 0.5 are the same parameter

    def test_string_literals_parameterize(self):
        a = fingerprint_sql("SELECT * FROM t WHERE n = 'abc'")
        b = fingerprint_sql("SELECT * FROM t WHERE n = 'xyz'")
        assert a.template == b.template
        assert a.params == (("string", "abc"),)
        assert b.params == (("string", "xyz"),)

    def test_structure_splits_templates(self):
        base = fingerprint_sql("SELECT * FROM t WHERE x = 5")
        assert base.template != fingerprint_sql("SELECT * FROM t WHERE y = 5").template
        assert base.template != fingerprint_sql("SELECT * FROM t WHERE x < 5").template
        assert (
            base.template
            != fingerprint_sql("SELECT * FROM t WHERE x = 5 AND y = 1").template
        )

    def test_params_preserve_occurrence_order(self):
        fp = fingerprint_sql("SELECT * FROM t WHERE x = 5 AND n = 'a' AND y < 2.0")
        assert fp.params == (
            ("integer", "5"),
            ("string", "a"),
            ("float", "2.0"),
        )

    def test_digest_is_short_stable_hex(self):
        fp = fingerprint_sql("SELECT * FROM t WHERE x = 5")
        again = fingerprint_sql("SELECT * FROM t WHERE x = 5")
        assert fp.digest == again.digest
        assert len(fp.digest) == 16
        int(fp.digest, 16)  # hex


class TestUseplanException:
    def test_useplan_number_is_not_a_parameter(self):
        # A forced plan number is an executor instruction: folding
        # USEPLAN 3 into USEPLAN 8's template would serve the wrong plan.
        a = fingerprint_sql("SELECT * FROM t OPTION (USEPLAN 3)")
        b = fingerprint_sql("SELECT * FROM t OPTION (USEPLAN 8)")
        assert a.template != b.template
        assert "3" in a.template and "8" in b.template

    def test_predicate_literals_still_parameterize_alongside_useplan(self):
        a = fingerprint_sql("SELECT * FROM t WHERE x = 5 OPTION (USEPLAN 3)")
        b = fingerprint_sql("SELECT * FROM t WHERE x = 7 OPTION (USEPLAN 3)")
        assert a.template == b.template
        assert a.params == (("integer", "5"),)


class TestEnvironmentSignatures:
    def test_catalog_signature_deterministic(self):
        a = catalog_signature(generate_tpch(seed=0).catalog)
        b = catalog_signature(generate_tpch(seed=0).catalog)
        assert a == b
        assert len(a) == 16

    def test_catalog_signature_tracks_statistics(self):
        from repro.workloads.synthetic import chain_query

        base = catalog_signature(chain_query(3, rows=5, seed=0).catalog)
        assert base == catalog_signature(chain_query(3, rows=5, seed=0).catalog)
        grown = catalog_signature(chain_query(3, rows=9, seed=0).catalog)
        assert base != grown

    def test_options_signature_tracks_configuration(self):
        default = options_signature(OptimizerOptions())
        assert default == options_signature(OptimizerOptions())
        assert default != options_signature(
            OptimizerOptions(allow_cross_products=True)
        )
        assert default != options_signature(OptimizerOptions(), prune_factor=1.5)
        assert options_signature(
            OptimizerOptions(), prune_factor=1.5
        ) != options_signature(OptimizerOptions(), prune_factor=2.0)


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM t WHERE x = 5",
        "SELECT a, b FROM t, u WHERE t.id = u.id AND t.v < 10 ORDER BY a",
    ],
)
def test_fingerprint_is_idempotent_on_its_own_template(sql):
    fp = fingerprint_sql(sql)
    refp = fingerprint_sql(fp.template.replace("?", "1"))
    assert refp.template == fp.template
