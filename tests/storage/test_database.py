"""Tests for the database container."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.table import DataTable


def _setup():
    catalog = Catalog()
    schema = TableSchema(name="t", columns=(Column("a", ColumnType.INTEGER),))
    catalog.add_table(schema)
    database = Database(catalog=catalog)
    database.add_table(DataTable(schema, [(1,), (1,), (2,)]))
    return catalog, database


class TestDatabase:
    def test_lookup(self):
        _, database = _setup()
        assert len(database.table("t")) == 3
        assert database.has_table("T")

    def test_unknown_table(self):
        _, database = _setup()
        with pytest.raises(StorageError):
            database.table("missing")

    def test_duplicate_rejected(self):
        catalog, database = _setup()
        with pytest.raises(StorageError):
            database.add_table(DataTable(catalog.table("t"), []))

    def test_refresh_stats(self):
        catalog, database = _setup()
        assert catalog.table_stats("t").row_count == 0
        database.refresh_stats()
        assert catalog.table_stats("t").row_count == 3
        assert catalog.table_stats("t").distinct("a") == 2
