"""Tests for the in-memory table."""

import pytest

from repro.catalog.schema import Column, ColumnType, Index, TableSchema
from repro.errors import StorageError
from repro.storage.table import DataTable


def _schema():
    return TableSchema(
        name="t",
        columns=(Column("a", ColumnType.INTEGER), Column("b", ColumnType.INTEGER)),
        primary_key=("a",),
        indexes=(
            Index("t_a", "t", ("a",), unique=True, clustered=True),
            Index("t_b", "t", ("b",)),
        ),
    )


class TestDataTable:
    def test_scan_preserves_insertion_order(self):
        table = DataTable(_schema(), [(2, 9), (1, 8)])
        assert table.scan() == [(2, 9), (1, 8)]

    def test_len(self):
        assert len(DataTable(_schema(), [(1, 1)])) == 1

    def test_index_scan_sorted(self):
        table = DataTable(_schema(), [(3, 5), (1, 9), (2, 1)])
        assert [r[0] for r in table.index_scan("t_a")] == [1, 2, 3]
        assert [r[1] for r in table.index_scan("t_b")] == [1, 5, 9]

    def test_index_scan_cached(self):
        table = DataTable(_schema(), [(2, 1), (1, 2)])
        first = table.index_scan("t_a")
        assert table.index_scan("t_a") is first

    def test_insert_invalidates_index_cache(self):
        table = DataTable(_schema(), [(2, 1)])
        table.index_scan("t_a")
        table.insert((1, 5))
        assert [r[0] for r in table.index_scan("t_a")] == [1, 2]

    def test_unknown_index(self):
        with pytest.raises(StorageError):
            DataTable(_schema(), []).index_scan("nope")

    def test_arity_checked_on_construction(self):
        with pytest.raises(StorageError):
            DataTable(_schema(), [(1,)])

    def test_arity_checked_on_insert(self):
        table = DataTable(_schema(), [])
        with pytest.raises(StorageError):
            table.insert((1, 2, 3))

    def test_extend(self):
        table = DataTable(_schema(), [])
        table.extend([(1, 1), (2, 2)])
        assert len(table) == 2

    def test_collect_stats(self):
        table = DataTable(_schema(), [(1, 5), (2, 5)])
        stats = table.collect_stats()
        assert stats.row_count == 2
        assert stats.columns["b"].distinct == 1
