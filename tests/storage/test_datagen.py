"""Tests for the micro TPC-H data generator."""

import pytest

from repro.storage.datagen import MICRO_ROWS, NATIONS, REGIONS, generate_tpch


@pytest.fixture(scope="module")
def db():
    return generate_tpch(seed=0)


class TestShapes:
    def test_all_tables_loaded(self, db):
        for name in MICRO_ROWS:
            assert db.has_table(name)
            assert len(db.table(name)) > 0

    def test_row_counts(self, db):
        assert len(db.table("region")) == 5
        assert len(db.table("nation")) == 25
        assert len(db.table("lineitem")) == MICRO_ROWS["lineitem"]

    def test_row_count_override(self):
        db = generate_tpch(seed=0, rows={"lineitem": 10, "orders": 5})
        assert len(db.table("lineitem")) == 10
        assert len(db.table("orders")) == 5


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_tpch(seed=3)
        b = generate_tpch(seed=3)
        assert a.table("lineitem").rows == b.table("lineitem").rows

    def test_different_seed_different_data(self):
        a = generate_tpch(seed=3)
        b = generate_tpch(seed=4)
        assert a.table("lineitem").rows != b.table("lineitem").rows


class TestReferentialIntegrity:
    def test_nation_regions_valid(self, db):
        region_keys = {r[0] for r in db.table("region").rows}
        assert all(n[2] in region_keys for n in db.table("nation").rows)

    def test_lineitem_fks_valid(self, db):
        order_keys = {o[0] for o in db.table("orders").rows}
        ps_pairs = {(p[0], p[1]) for p in db.table("partsupp").rows}
        for li in db.table("lineitem").rows:
            assert li[0] in order_keys
            assert (li[1], li[2]) in ps_pairs

    def test_orders_customers_valid(self, db):
        cust_keys = {c[0] for c in db.table("customer").rows}
        assert all(o[1] in cust_keys for o in db.table("orders").rows)


class TestValueDomains:
    def test_real_nation_names(self, db):
        names = {n[1] for n in db.table("nation").rows}
        assert {"FRANCE", "GERMANY"} <= names
        assert names == {name for name, _ in NATIONS}

    def test_real_region_names(self, db):
        assert {r[1] for r in db.table("region").rows} == set(REGIONS)

    def test_dates_in_window(self, db):
        for o in db.table("orders").rows:
            assert "1992-01-01" <= o[4] <= "1998-12-31"

    def test_shipdate_after_orderdate(self, db):
        order_dates = {o[0]: o[4] for o in db.table("orders").rows}
        for li in db.table("lineitem").rows:
            assert li[10] > order_dates[li[0]]

    def test_linenumbers_unique_per_order(self, db):
        seen = set()
        for li in db.table("lineitem").rows:
            key = (li[0], li[3])
            assert key not in seen
            seen.add(key)

    def test_discounts_within_spec(self, db):
        for li in db.table("lineitem").rows:
            assert 0.0 <= li[6] <= 0.10
