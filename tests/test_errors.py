"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgebraError,
    BindError,
    CatalogError,
    ExecutionError,
    LexerError,
    MemoError,
    OptimizerError,
    ParseError,
    PlanSpaceError,
    RankOutOfRangeError,
    ReproError,
    SqlError,
    StorageError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            CatalogError,
            StorageError,
            SqlError,
            LexerError,
            ParseError,
            BindError,
            AlgebraError,
            MemoError,
            OptimizerError,
            PlanSpaceError,
            RankOutOfRangeError,
            ExecutionError,
            ValidationError,
        ):
            assert issubclass(cls, ReproError), cls

    def test_sql_errors_share_base(self):
        for cls in (LexerError, ParseError, BindError):
            assert issubclass(cls, SqlError)

    def test_rank_error_is_planspace_error(self):
        assert issubclass(RankOutOfRangeError, PlanSpaceError)


class TestSqlErrorPositions:
    def test_position_formatting(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7

    def test_position_optional(self):
        err = ParseError("bad token")
        assert str(err) == "bad token"
        assert err.line is None


class TestRankOutOfRange:
    def test_message_and_fields(self):
        err = RankOutOfRangeError(rank=50, count=44)
        assert err.rank == 50 and err.count == 44
        assert "50" in str(err) and "44" in str(err)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise RankOutOfRangeError(1, 1)
