"""Direct unit tests for IndexNestedLoopJoin execution."""

import pytest

from repro.algebra.expressions import (
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Literal,
)
from repro.algebra.physical import IndexNestedLoopJoin, TableScan
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Index, TableSchema
from repro.executor.executor import execute_plan
from repro.optimizer.plan import PlanNode
from repro.storage.database import Database
from repro.storage.table import DataTable

O_KEY = ColumnId("o", "k")
I_KEY = ColumnId("i", "k")
I_V = ColumnId("i", "v")


@pytest.fixture
def db():
    catalog = Catalog()
    outer = TableSchema(
        name="o",
        columns=(Column("k", ColumnType.INTEGER), Column("tag", ColumnType.STRING)),
        primary_key=("k",),
    )
    inner = TableSchema(
        name="i",
        columns=(Column("k", ColumnType.INTEGER), Column("v", ColumnType.INTEGER)),
        primary_key=("k",),
        indexes=(Index("i_k", "i", ("k",), clustered=True),),
    )
    catalog.add_table(outer)
    catalog.add_table(inner)
    database = Database(catalog=catalog)
    database.add_table(DataTable(outer, [(1, "a"), (2, "b"), (9, "z"), (2, "b2")]))
    database.add_table(
        DataTable(inner, [(2, 200), (1, 100), (2, 201), (5, 500)])
    )
    return database


def outer_scan():
    return PlanNode(TableScan("o", "o"), (), 0, 1, 4.0)


def inlj(inner_predicate=None, residual=None):
    return IndexNestedLoopJoin(
        inner_table="i",
        inner_alias="i",
        index_name="i_k",
        outer_keys=(O_KEY,),
        inner_keys=(I_KEY,),
        inner_predicate=inner_predicate,
        residual=residual,
    )


class TestIndexNlJoinExecution:
    def test_matches_per_outer_row(self, db):
        plan = PlanNode(inlj(), (outer_scan(),), 1, 1, 5.0)
        result = execute_plan(plan, db)
        # k=1 matches 1 inner row; each k=2 outer matches 2; k=9 none.
        assert len(result.rows) == 1 + 2 + 2

    def test_schema_is_outer_plus_inner(self, db):
        plan = PlanNode(inlj(), (outer_scan(),), 1, 1, 5.0)
        result = execute_plan(plan, db)
        assert result.columns == ["o.k", "o.tag", "i.k", "i.v"]

    def test_inner_predicate_applied(self, db):
        predicate = Comparison(CompOp.GT, ColumnRef(I_V), Literal(200))
        plan = PlanNode(inlj(inner_predicate=predicate), (outer_scan(),), 1, 1, 2.0)
        result = execute_plan(plan, db)
        assert all(row[3] > 200 for row in result.rows)
        assert len(result.rows) == 2  # only (2,201) survives, two outers

    def test_residual_applied(self, db):
        residual = Comparison(CompOp.EQ, ColumnRef(ColumnId("o", "tag")), Literal("b"))
        plan = PlanNode(inlj(residual=residual), (outer_scan(),), 1, 1, 2.0)
        result = execute_plan(plan, db)
        assert all(row[1] == "b" for row in result.rows)
        assert len(result.rows) == 2

    def test_no_matches_empty(self, db):
        predicate = Comparison(CompOp.GT, ColumnRef(I_V), Literal(10**6))
        plan = PlanNode(inlj(inner_predicate=predicate), (outer_scan(),), 1, 1, 1.0)
        assert execute_plan(plan, db).rows == []

    def test_agrees_with_hash_join(self, db):
        from repro.algebra.physical import HashJoin

        inner_scan = PlanNode(TableScan("i", "i"), (), 2, 1, 4.0)
        hash_plan = PlanNode(
            HashJoin((O_KEY,), (I_KEY,)), (outer_scan(), inner_scan), 1, 1, 5.0
        )
        inlj_plan = PlanNode(inlj(), (outer_scan(),), 1, 2, 5.0)
        assert sorted(execute_plan(hash_plan, db).rows) == sorted(
            execute_plan(inlj_plan, db).rows
        )
