"""Tests for output schema computation."""

import pytest

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    ColumnId,
    ColumnRef,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    PhysicalProject,
    Sort,
    TableScan,
)
from repro.catalog.tpch import tpch_catalog
from repro.executor.schema import output_schema, schema_positions
from repro.optimizer.plan import PlanNode

N_KEY = ColumnId("n", "n_nationkey")
R_KEY = ColumnId("r", "r_regionkey")


@pytest.fixture(scope="module")
def cat():
    return tpch_catalog()


def scan_n():
    return PlanNode(TableScan("nation", "n"), (), 0, 1, 25.0)


def scan_r():
    return PlanNode(TableScan("region", "r"), (), 1, 1, 5.0)


class TestOutputSchema:
    def test_scan_schema_uses_alias(self, cat):
        schema = output_schema(scan_n(), cat)
        assert schema[0] == ColumnId("n", "n_nationkey")
        assert len(schema) == 4

    def test_join_concatenates(self, cat):
        join = PlanNode(HashJoin((N_KEY,), (R_KEY,)), (scan_n(), scan_r()), 2, 1, 25.0)
        schema = output_schema(join, cat)
        assert len(schema) == 4 + 3
        assert schema[4] == ColumnId("r", "r_regionkey")

    def test_sort_passes_through(self, cat):
        sort = PlanNode(Sort((N_KEY,)), (scan_n(),), 0, 2, 25.0)
        assert output_schema(sort, cat) == output_schema(scan_n(), cat)

    def test_aggregate_schema(self, cat):
        agg = PlanNode(
            HashAggregate((N_KEY,), (("c", AggregateCall(AggFunc.COUNT, None)),)),
            (scan_n(),),
            2,
            1,
            25.0,
        )
        schema = output_schema(agg, cat)
        assert schema == (N_KEY, ColumnId("", "c"))

    def test_project_schema(self, cat):
        project = PlanNode(
            PhysicalProject((("name", ColumnRef(ColumnId("n", "n_name"))),)),
            (scan_n(),),
            2,
            1,
            25.0,
        )
        assert output_schema(project, cat) == (ColumnId("", "name"),)

    def test_schema_positions(self, cat):
        schema = output_schema(scan_n(), cat)
        positions = schema_positions(schema)
        assert positions[ColumnId("n", "n_name")] == 1
