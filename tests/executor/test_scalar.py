"""Tests for scalar expression compilation."""

import pytest

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryMinus,
)
from repro.errors import ExecutionError
from repro.executor.scalar import compile_predicate, compile_scalar, like_matcher

SCHEMA = (ColumnId("t", "a"), ColumnId("t", "b"), ColumnId("t", "s"))
A = ColumnRef(ColumnId("t", "a"))
B = ColumnRef(ColumnId("t", "b"))
S = ColumnRef(ColumnId("t", "s"))


def run(expr, row):
    return compile_scalar(expr, SCHEMA)(row)


class TestBasics:
    def test_column_lookup(self):
        assert run(A, (1, 2, "x")) == 1
        assert run(S, (1, 2, "x")) == "x"

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            compile_scalar(ColumnRef(ColumnId("zz", "zz")), SCHEMA)

    def test_literal(self):
        assert run(Literal(42), (0, 0, "")) == 42
        assert run(Literal(None), (0, 0, "")) is None


class TestComparisons:
    def test_all_operators(self):
        row = (1, 2, "")
        assert run(Comparison(CompOp.LT, A, B), row)
        assert run(Comparison(CompOp.LE, A, B), row)
        assert not run(Comparison(CompOp.GT, A, B), row)
        assert not run(Comparison(CompOp.GE, A, B), row)
        assert not run(Comparison(CompOp.EQ, A, B), row)
        assert run(Comparison(CompOp.NE, A, B), row)

    def test_string_comparison_lexicographic(self):
        expr = Comparison(CompOp.GE, S, Literal("1994-01-01"))
        assert run(expr, (0, 0, "1994-06-01"))
        assert not run(expr, (0, 0, "1993-12-31"))

    def test_null_comparisons_false(self):
        assert not run(Comparison(CompOp.EQ, A, B), (None, 2, ""))
        assert not run(Comparison(CompOp.LT, A, B), (1, None, ""))


class TestBooleans:
    def test_and_or_not(self):
        lt = Comparison(CompOp.LT, A, B)
        eq = Comparison(CompOp.EQ, A, Literal(1))
        assert run(BoolExpr(BoolOp.AND, (lt, eq)), (1, 2, ""))
        assert run(BoolExpr(BoolOp.OR, (lt, eq)), (1, 0, ""))
        assert not run(BoolExpr(BoolOp.NOT, (lt,)), (1, 2, ""))


class TestArithmetic:
    def test_operations(self):
        row = (6, 3, "")
        assert run(Arithmetic("+", A, B), row) == 9
        assert run(Arithmetic("-", A, B), row) == 3
        assert run(Arithmetic("*", A, B), row) == 18
        assert run(Arithmetic("/", A, B), row) == 2

    def test_division_by_zero(self):
        fn = compile_scalar(Arithmetic("/", A, B), SCHEMA)
        with pytest.raises(ExecutionError):
            fn((1, 0, ""))

    def test_unary_minus(self):
        assert run(UnaryMinus(A), (5, 0, "")) == -5

    def test_tpch_revenue_expression(self):
        # l_extendedprice * (1 - l_discount)
        expr = Arithmetic("*", A, Arithmetic("-", Literal(1), B))
        assert run(expr, (100.0, 0.1, "")) == pytest.approx(90.0)


class TestLike:
    def test_matcher_wildcards(self):
        assert like_matcher("%green%")("forest green metal")
        assert not like_matcher("%green%")("blue")
        assert like_matcher("gr_en")("green")
        assert not like_matcher("gr_en")("graaen")

    def test_anchored(self):
        assert not like_matcher("green")("dark green")
        assert like_matcher("green%")("green apple")

    def test_regex_chars_escaped(self):
        assert like_matcher("a.b")("a.b")
        assert not like_matcher("a.b")("axb")

    def test_compiled_like(self):
        assert run(Like(S, "%x%"), (0, 0, "axa"))
        assert run(Like(S, "%x%", negated=True), (0, 0, "aaa"))


class TestInAndNull:
    def test_in_list(self):
        assert run(InList(A, (1, 2, 3)), (2, 0, ""))
        assert not run(InList(A, (1, 2, 3)), (9, 0, ""))
        assert run(InList(A, (1,), negated=True), (9, 0, ""))

    def test_is_null(self):
        assert run(IsNull(A), (None, 0, ""))
        assert not run(IsNull(A), (1, 0, ""))
        assert run(IsNull(A, negated=True), (1, 0, ""))


class TestPredicates:
    def test_none_is_always_true(self):
        fn = compile_predicate(None, SCHEMA)
        assert fn((1, 2, ""))

    def test_predicate_coerced_to_bool(self):
        fn = compile_predicate(Comparison(CompOp.EQ, A, Literal(1)), SCHEMA)
        assert fn((1, 0, "")) is True
        assert fn((2, 0, "")) is False

    def test_aggregate_not_compilable(self):
        with pytest.raises(ExecutionError):
            compile_scalar(AggregateCall(AggFunc.SUM, A), SCHEMA)
