"""Tests for plan execution: each operator implementation."""

import pytest

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    Arithmetic,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Literal,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Index, TableSchema
from repro.errors import ExecutionError
from repro.executor.executor import PlanExecutor, execute_plan
from repro.optimizer.plan import PlanNode
from repro.storage.database import Database
from repro.storage.table import DataTable

T_ID = ColumnId("t", "id")
T_V = ColumnId("t", "v")
U_ID = ColumnId("u", "id")
U_W = ColumnId("u", "w")


@pytest.fixture
def db():
    catalog = Catalog()
    t_schema = TableSchema(
        name="t",
        columns=(Column("id", ColumnType.INTEGER), Column("v", ColumnType.INTEGER)),
        primary_key=("id",),
        indexes=(Index("t_id", "t", ("id",), unique=True, clustered=True),),
    )
    u_schema = TableSchema(
        name="u",
        columns=(Column("id", ColumnType.INTEGER), Column("w", ColumnType.INTEGER)),
        primary_key=("id",),
        indexes=(Index("u_id", "u", ("id",), unique=True, clustered=True),),
    )
    catalog.add_table(t_schema)
    catalog.add_table(u_schema)
    database = Database(catalog=catalog)
    database.add_table(DataTable(t_schema, [(3, 30), (1, 10), (2, 20), (2, 21)]))
    database.add_table(DataTable(u_schema, [(2, 200), (1, 100), (4, 400)]))
    return database


def scan_t(predicate=None):
    return PlanNode(TableScan("t", "t", predicate), (), 0, 1, 4.0)


def scan_u(predicate=None):
    return PlanNode(TableScan("u", "u", predicate), (), 1, 1, 3.0)


def idx_t():
    return PlanNode(IndexScan("t", "t", "t_id", (T_ID,)), (), 0, 2, 4.0)


def idx_u():
    return PlanNode(IndexScan("u", "u", "u_id", (U_ID,)), (), 1, 2, 3.0)


class TestScans:
    def test_table_scan_heap_order(self, db):
        result = execute_plan(scan_t(), db)
        assert [r[0] for r in result.rows] == [3, 1, 2, 2]
        assert result.columns == ["t.id", "t.v"]

    def test_table_scan_with_predicate(self, db):
        predicate = Comparison(CompOp.GE, ColumnRef(T_ID), Literal(2))
        result = execute_plan(scan_t(predicate), db)
        assert len(result.rows) == 3

    def test_index_scan_sorted(self, db):
        result = execute_plan(idx_t(), db)
        assert [r[0] for r in result.rows] == [1, 2, 2, 3]


class TestFilterSortProject:
    def test_filter(self, db):
        predicate = Comparison(CompOp.EQ, ColumnRef(T_ID), Literal(2))
        plan = PlanNode(PhysicalFilter(predicate), (scan_t(),), 2, 1, 2.0)
        assert len(execute_plan(plan, db).rows) == 2

    def test_sort(self, db):
        plan = PlanNode(Sort((T_V,)), (scan_t(),), 0, 3, 4.0)
        result = execute_plan(plan, db)
        assert [r[1] for r in result.rows] == [10, 20, 21, 30]

    def test_project_expressions(self, db):
        outputs = (
            ("double_v", Arithmetic("*", ColumnRef(T_V), Literal(2))),
            ("id", ColumnRef(T_ID)),
        )
        plan = PlanNode(PhysicalProject(outputs), (scan_t(),), 2, 1, 4.0)
        result = execute_plan(plan, db)
        assert result.columns == ["double_v", "id"]
        assert result.rows[0] == (60, 3)


class TestJoins:
    def expected_pairs(self):
        # t.id in {3,1,2,2}, u.id in {2,1,4}: matches id 1 (1x1), id 2 (2x1).
        return {(1, 10, 1, 100), (2, 20, 2, 200), (2, 21, 2, 200)}

    def test_nested_loop_join(self, db):
        predicate = Comparison(CompOp.EQ, ColumnRef(T_ID), ColumnRef(U_ID))
        plan = PlanNode(NestedLoopJoin(predicate), (scan_t(), scan_u()), 2, 1, 3.0)
        assert set(execute_plan(plan, db).rows) == self.expected_pairs()

    def test_hash_join(self, db):
        plan = PlanNode(
            HashJoin((T_ID,), (U_ID,)), (scan_t(), scan_u()), 2, 1, 3.0
        )
        assert set(execute_plan(plan, db).rows) == self.expected_pairs()

    def test_merge_join_on_sorted_inputs(self, db):
        plan = PlanNode(
            MergeJoin((T_ID,), (U_ID,)), (idx_t(), idx_u()), 2, 1, 3.0
        )
        assert set(execute_plan(plan, db).rows) == self.expected_pairs()

    def test_merge_join_handles_duplicate_runs(self, db):
        plan = PlanNode(
            MergeJoin((T_ID,), (U_ID,)), (idx_t(), idx_u()), 2, 1, 3.0
        )
        rows = execute_plan(plan, db).rows
        assert len([r for r in rows if r[0] == 2]) == 2

    def test_cross_product(self, db):
        plan = PlanNode(NestedLoopJoin(None), (scan_t(), scan_u()), 2, 1, 12.0)
        assert len(execute_plan(plan, db).rows) == 12

    def test_hash_join_residual(self, db):
        residual = Comparison(CompOp.GT, ColumnRef(U_W), Literal(150))
        plan = PlanNode(
            HashJoin((T_ID,), (U_ID,), residual), (scan_t(), scan_u()), 2, 1, 2.0
        )
        rows = execute_plan(plan, db).rows
        assert all(r[3] > 150 for r in rows)

    def test_merge_join_order_check(self, db):
        plan = PlanNode(
            MergeJoin((T_ID,), (U_ID,)), (scan_t(), idx_u()), 2, 1, 3.0
        )
        with pytest.raises(ExecutionError):
            PlanExecutor(db, check_orders=True).execute(plan)


class TestAggregates:
    def agg_calls(self):
        return (
            ("n", AggregateCall(AggFunc.COUNT, None)),
            ("total", AggregateCall(AggFunc.SUM, ColumnRef(T_V))),
            ("lo", AggregateCall(AggFunc.MIN, ColumnRef(T_V))),
            ("hi", AggregateCall(AggFunc.MAX, ColumnRef(T_V))),
            ("avg_v", AggregateCall(AggFunc.AVG, ColumnRef(T_V))),
        )

    def test_hash_aggregate_grouped(self, db):
        plan = PlanNode(
            HashAggregate((T_ID,), self.agg_calls()), (scan_t(),), 2, 1, 3.0
        )
        result = execute_plan(plan, db)
        by_id = {row[0]: row for row in result.rows}
        assert by_id[2] == (2, 2, 41.0, 20, 21, 20.5)

    def test_stream_aggregate_grouped(self, db):
        plan = PlanNode(
            StreamAggregate((T_ID,), self.agg_calls()), (idx_t(),), 2, 1, 3.0
        )
        result = execute_plan(plan, db)
        assert [row[0] for row in result.rows] == [1, 2, 3]
        by_id = {row[0]: row for row in result.rows}
        assert by_id[2][1] == 2

    def test_hash_and_stream_agree(self, db):
        hash_plan = PlanNode(
            HashAggregate((T_ID,), self.agg_calls()), (scan_t(),), 2, 1, 3.0
        )
        stream_plan = PlanNode(
            StreamAggregate((T_ID,), self.agg_calls()), (idx_t(),), 2, 1, 3.0
        )
        assert sorted(execute_plan(hash_plan, db).rows) == sorted(
            execute_plan(stream_plan, db).rows
        )

    def test_scalar_aggregate(self, db):
        plan = PlanNode(
            StreamAggregate((), self.agg_calls()), (scan_t(),), 2, 1, 1.0
        )
        result = execute_plan(plan, db)
        assert result.rows == [(4, 81.0, 10, 30, 81.0 / 4)]

    def test_scalar_aggregate_on_empty_input(self, db):
        predicate = Comparison(CompOp.GT, ColumnRef(T_ID), Literal(99))
        plan = PlanNode(
            StreamAggregate((), self.agg_calls()), (scan_t(predicate),), 2, 1, 1.0
        )
        result = execute_plan(plan, db)
        assert result.rows == [(0, None, None, None, None)]

    def test_grouped_aggregate_on_empty_input(self, db):
        predicate = Comparison(CompOp.GT, ColumnRef(T_ID), Literal(99))
        plan = PlanNode(
            HashAggregate((T_ID,), self.agg_calls()), (scan_t(predicate),), 2, 1, 1.0
        )
        assert execute_plan(plan, db).rows == []

    def test_stream_aggregate_order_check(self, db):
        plan = PlanNode(
            StreamAggregate((T_V,), self.agg_calls()), (scan_t(),), 2, 1, 3.0
        )
        with pytest.raises(ExecutionError):
            PlanExecutor(db, check_orders=True).execute(plan)


class TestColumnLabels:
    def test_aggregate_schema(self, db):
        plan = PlanNode(
            HashAggregate((T_ID,), (("n", AggregateCall(AggFunc.COUNT, None)),)),
            (scan_t(),),
            2,
            1,
            3.0,
        )
        assert execute_plan(plan, db).columns == ["t.id", "n"]

    def test_render(self, db):
        result = execute_plan(scan_t(), db)
        text = result.render(limit=2)
        assert "t.id" in text
        assert "(4 rows total)" in text
