"""Tests for result canonicalization."""

from repro.testing.diff import (
    canonical_result,
    canonical_rows,
    canonical_value,
    results_equal,
)


class TestCanonicalValue:
    def test_float_rounded_to_significant_digits(self):
        assert canonical_value(1.00000000001) == canonical_value(1.00000000002)

    def test_distinct_floats_stay_distinct(self):
        assert canonical_value(1.5) != canonical_value(1.6)

    def test_zero(self):
        assert canonical_value(0.0) == 0.0

    def test_non_floats_unchanged(self):
        assert canonical_value(7) == 7
        assert canonical_value("x") == "x"
        assert canonical_value(None) is None


class TestCanonicalRows:
    def test_order_normalized(self):
        a = canonical_rows([(2,), (1,)])
        b = canonical_rows([(1,), (2,)])
        assert a == b

    def test_respect_order(self):
        a = canonical_rows([(2,), (1,)], respect_order=True)
        b = canonical_rows([(1,), (2,)], respect_order=True)
        assert a != b

    def test_duplicates_preserved(self):
        rows = canonical_rows([(1,), (1,)])
        assert len(rows) == 2

    def test_mixed_types_sortable(self):
        rows = canonical_rows([("b", 1), ("a", None)])
        assert len(rows) == 2


class TestResultsEqual:
    def test_accumulation_noise_tolerated(self):
        total_a = sum([0.1] * 10)
        total_b = 1.0
        assert results_equal([(total_a,)], [(total_b,)])

    def test_real_differences_detected(self):
        assert not results_equal([(1.0,)], [(2.0,)])

    def test_missing_row_detected(self):
        assert not results_equal([(1,), (2,)], [(1,)])


class TestCanonicalResult:
    def test_column_order_normalized(self):
        cols_a, rows_a = canonical_result(["b", "a"], [(1, 2)])
        cols_b, rows_b = canonical_result(["a", "b"], [(2, 1)])
        assert cols_a == cols_b == ("a", "b")
        assert rows_a == rows_b

    def test_row_values_follow_columns(self):
        cols, rows = canonical_result(["z", "a"], [(26, 1)])
        assert cols == ("a", "z")
        assert rows == [(1, 26)]
