"""Tests for the plan-validation harness (Section 4)."""

import pytest

from repro.optimizer.optimizer import OptimizerOptions
from repro.testing.harness import PlanValidator
from repro.workloads.tpch_queries import tpch_query


@pytest.fixture(scope="module")
def validator(micro_db):
    return PlanValidator(
        micro_db, OptimizerOptions(allow_cross_products=False)
    )


# micro_db is session-scoped in the main conftest; re-export it here at
# module scope for the fixture above.
@pytest.fixture(scope="module")
def micro_db():
    from repro.storage.datagen import generate_tpch

    return generate_tpch(seed=0)


class TestExhaustiveValidation:
    def test_two_table_join_all_plans_agree(self, validator):
        sql = (
            "SELECT n.n_name, r.r_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey"
        )
        report = validator.validate_sql(sql, max_exhaustive=10_000)
        assert report.exhaustive
        assert report.executed_plans == report.total_plans
        assert report.all_equal

    def test_aggregate_query_all_plans_agree(self, validator):
        sql = (
            "SELECT r.r_name, COUNT(*) AS n FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey GROUP BY r.r_name"
        )
        report = validator.validate_sql(sql, max_exhaustive=10_000)
        assert report.exhaustive and report.all_equal

    def test_order_by_respected_in_comparison(self, validator):
        sql = (
            "SELECT n.n_name, r.r_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey ORDER BY n_name"
        )
        report = validator.validate_sql(sql, max_exhaustive=10_000)
        assert report.all_equal


class TestSampledValidation:
    def test_q3_sampled(self, validator):
        report = validator.validate_sql(
            tpch_query("Q3").sql, max_exhaustive=100, sample_size=80, seed=1
        )
        assert not report.exhaustive
        assert report.executed_plans == 80
        assert report.all_equal

    def test_q10_sampled(self, validator):
        report = validator.validate_sql(
            tpch_query("Q10").sql, max_exhaustive=100, sample_size=40, seed=2
        )
        assert report.all_equal

    def test_report_render(self, validator):
        report = validator.validate_sql(
            tpch_query("Q3").sql, max_exhaustive=10, sample_size=5, seed=0
        )
        text = report.render()
        assert "validated 5" in text
        assert "identical results" in text


class TestCrossProductSpaces:
    def test_cross_product_plans_agree(self, micro_db):
        validator = PlanValidator(
            micro_db, OptimizerOptions(allow_cross_products=True)
        )
        sql = (
            "SELECT n.n_name, r.r_name FROM nation n, region r "
            "WHERE n.n_regionkey = r.r_regionkey"
        )
        report = validator.validate_sql(sql, max_exhaustive=0, sample_size=60)
        assert report.all_equal
