"""Tests for golden-plan regression corpora."""

import pytest

from repro.api import Session
from repro.optimizer.optimizer import OptimizerOptions
from repro.testing.corpus import PlanCorpus, build_corpus, verify_corpus
from repro.testing.faults import DroppedRowExecutor

TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)
# Uses customer, whose nation assignment is randomized per data seed, so
# corpora built on different seeds must diverge.
THREE_TABLE = (
    "SELECT n.n_name, COUNT(*) AS customers FROM nation n, region r, customer c "
    "WHERE n.n_regionkey = r.r_regionkey AND c.c_nationkey = n.n_nationkey "
    "GROUP BY n.n_name"
)


@pytest.fixture(scope="module")
def session():
    return Session.tpch(seed=0, options=OptimizerOptions(allow_cross_products=False))


@pytest.fixture(scope="module")
def corpus(session):
    return build_corpus(
        session, [TWO_TABLE, THREE_TABLE], plans_per_query=15, seed=1
    )


class TestBuild:
    def test_record_count(self, corpus):
        assert len(corpus.records) == 30

    def test_ranks_unique_per_query(self, corpus):
        by_query = {}
        for record in corpus.records:
            by_query.setdefault(record.query, []).append(record.rank)
        for ranks in by_query.values():
            assert len(set(ranks)) == len(ranks)

    def test_small_space_covered_exhaustively(self, session):
        corpus = build_corpus(session, [TWO_TABLE], plans_per_query=10**6)
        space = session.plan_space(TWO_TABLE)
        assert len(corpus.records) == space.count()

    def test_digests_stable(self, session, corpus):
        again = build_corpus(
            session, [TWO_TABLE, THREE_TABLE], plans_per_query=15, seed=1
        )
        assert [r.digest for r in again.records] == [
            r.digest for r in corpus.records
        ]


class TestRoundTrip:
    def test_json_roundtrip(self, corpus):
        loaded = PlanCorpus.from_json(corpus.to_json())
        assert loaded.records == corpus.records
        assert loaded.seed == corpus.seed

    def test_file_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        corpus.save(str(path))
        assert PlanCorpus.load(str(path)).records == corpus.records


class TestVerify:
    def test_clean_engine_passes(self, session, corpus):
        verification = verify_corpus(session, corpus)
        assert verification.passed
        assert verification.checked == len(corpus.records)
        assert "all digests match" in verification.render()

    def test_different_data_seed_fails(self, corpus):
        other = Session.tpch(
            seed=99, options=OptimizerOptions(allow_cross_products=False)
        )
        verification = verify_corpus(other, corpus)
        assert not verification.passed

    def test_defective_engine_fails(self, session, corpus):
        broken = Session.tpch(
            seed=0, options=OptimizerOptions(allow_cross_products=False)
        )
        broken.executor = DroppedRowExecutor(broken.database)
        verification = verify_corpus(broken, corpus)
        assert not verification.passed
        text = verification.render()
        assert "USEPLAN" in text

    def test_failure_names_rank(self, session, corpus):
        broken = Session.tpch(
            seed=0, options=OptimizerOptions(allow_cross_products=False)
        )
        broken.executor = DroppedRowExecutor(broken.database)
        verification = verify_corpus(broken, corpus)
        record, reason = verification.failures[0]
        assert "digest mismatch" in reason
        assert any(r.rank == record.rank for r in corpus.records)
