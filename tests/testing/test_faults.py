"""Fault injection: the harness must catch deliberately broken executors.

This is the test of the paper's whole premise — "if two candidate plans
fail to produce the same results, then either the optimizer considered an
invalid plan, or the execution code is faulty."
"""

import pytest

from repro.optimizer.optimizer import OptimizerOptions
from repro.storage.datagen import generate_tpch
from repro.testing.faults import (
    DroppedRowExecutor,
    IgnoredResidualExecutor,
    UnsortedMergeExecutor,
)
from repro.testing.harness import PlanValidator

JOIN_SQL = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)

# The non-equality conjunct is selective on the micro data, so forgetting
# it visibly changes results.
RESIDUAL_SQL = (
    "SELECT n.n_name, s.s_name FROM nation n, supplier s "
    "WHERE n.n_nationkey = s.s_nationkey AND s.s_acctbal < n.n_nationkey * 200"
)


@pytest.fixture(scope="module")
def db():
    return generate_tpch(seed=0)


def _validate(db, executor, sql):
    validator = PlanValidator(
        db,
        OptimizerOptions(allow_cross_products=False),
        executor=executor,
    )
    return validator.validate_sql(sql, max_exhaustive=3_000)


class TestHarnessCatchesDefects:
    def test_dropped_row_merge_join_detected(self, db):
        report = _validate(db, DroppedRowExecutor(db), JOIN_SQL)
        assert not report.all_equal
        assert report.mismatches

    def test_ignored_residual_detected(self, db):
        report = _validate(db, IgnoredResidualExecutor(db), RESIDUAL_SQL)
        assert not report.all_equal

    def test_unsorted_merge_input_detected(self, db):
        report = _validate(db, UnsortedMergeExecutor(db), JOIN_SQL)
        assert not report.all_equal

    def test_unsorted_merge_fails_loudly_with_order_checks(self, db):
        report = _validate(
            db, UnsortedMergeExecutor(db, check_orders=True), JOIN_SQL
        )
        # With runtime order verification the defect surfaces as execution
        # errors instead of silent wrong results.
        assert report.errors or report.mismatches

    def test_mismatch_report_names_plan_rank(self, db):
        report = _validate(db, DroppedRowExecutor(db), JOIN_SQL)
        mismatch = report.mismatches[0]
        assert 0 <= mismatch.rank < report.total_plans
        assert "plan #" in mismatch.render()

    def test_healthy_executor_passes_same_queries(self, db):
        from repro.executor.executor import PlanExecutor

        for sql in (JOIN_SQL, RESIDUAL_SQL):
            report = _validate(db, PlanExecutor(db), sql)
            assert report.all_equal, sql
