"""Replay of the committed golden-plan corpus (tier-1 regression net).

``tests/data/golden_corpus.json`` was built by
``scripts/build_golden_corpus.py`` from a known-good engine: for TPC-H
and synthetic sections it records the optimizer's chosen plan (full
render + cost + plan-space size) and result digests for a seeded sample
of plans.  Any later change to best-plan choice, costing, plan-space
shape, or executor semantics fails here with an explicit diff.  If a
change is *intended*, regenerate the fixture with the script and review
the plan diffs in the commit.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.testing.corpus import (
    PlanCorpus,
    default_golden_sections,
    verify_corpus,
)

FIXTURE = pathlib.Path(__file__).resolve().parent.parent / "data" / "golden_corpus.json"


@pytest.fixture(scope="module")
def sections():
    return default_golden_sections()


@pytest.fixture(scope="module")
def fixture_payload():
    return json.loads(FIXTURE.read_text())


def test_fixture_covers_every_section(sections, fixture_payload):
    assert set(fixture_payload) == set(sections), (
        "golden fixture sections drifted from default_golden_sections(); "
        "regenerate with scripts/build_golden_corpus.py"
    )


def test_fixture_has_plan_records(fixture_payload):
    for name, data in fixture_payload.items():
        corpus = PlanCorpus.from_json(json.dumps(data))
        assert corpus.plans, f"section {name} has no golden plan records"
        assert corpus.records, f"section {name} has no golden digests"


# Parametrized from the fixture itself (cheap to read at collection), so
# a section added to default_golden_sections() and regenerated is
# replayed automatically; test_fixture_covers_every_section guarantees
# the fixture's key set tracks the section definitions.
@pytest.mark.parametrize("name", sorted(json.loads(FIXTURE.read_text())))
def test_replay_section(name, sections, fixture_payload):
    session, _queries = sections[name]
    corpus = PlanCorpus.from_json(json.dumps(fixture_payload[name]))
    verification = verify_corpus(session, corpus)
    assert verification.passed, "\n" + verification.render()
    assert verification.checked == len(corpus.records)
