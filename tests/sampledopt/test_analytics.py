"""Memo-free cost-distribution analytics."""

import pytest

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.experiments.distributions import distribution_from_result
from repro.sampledopt import distribution_report, sampled_distribution
from repro.workloads.synthetic import chain_query


@pytest.fixture(scope="module")
def chain4():
    return chain_query(4, rows=5, seed=0)


@pytest.fixture(scope="module")
def chain4_optimum(chain4):
    return Optimizer(chain4.catalog, OptimizerOptions()).optimize_sql(chain4.sql)


class TestSampledDistribution:
    def test_matches_materialized_distribution_same_seed(
        self, chain4, chain4_optimum
    ):
        """With the shared-contract (plain) sampler and costs scaled to
        the same optimum, the memo-free distribution reproduces the
        materialized experiment exactly: same ranks, same plans, same
        costs."""
        materialized = distribution_from_result(
            chain4_optimum, "chain4", sample_size=200, seed=3
        )
        implicit = sampled_distribution(
            chain4.catalog,
            chain4.sql,
            "chain4",
            sample_size=200,
            seed=3,
            scale_to=chain4_optimum.best_cost,
        )
        assert implicit.total_plans == materialized.total_plans
        assert implicit.scaled_costs == pytest.approx(
            materialized.scaled_costs, rel=1e-12
        )

    def test_self_scaled_costs_are_at_least_one(self, chain4):
        dist = sampled_distribution(
            chain4.catalog, chain4.sql, "chain4", sample_size=150, seed=0
        )
        # scaled to the recombined best, which lower-bounds every sample
        assert min(dist.scaled_costs) >= 1.0 - 1e-9
        assert dist.sample_size == 150

    def test_stratified_sampling(self, chain4):
        dist = sampled_distribution(
            chain4.catalog,
            chain4.sql,
            "chain4",
            sample_size=100,
            seed=1,
            stratified=True,
        )
        assert dist.sample_size == 100
        again = sampled_distribution(
            chain4.catalog,
            chain4.sql,
            "chain4",
            sample_size=100,
            seed=1,
            stratified=True,
        )
        assert dist.scaled_costs == again.scaled_costs  # deterministic


class TestDistributionStatistics:
    def test_quantiles_and_curve(self, chain4):
        dist = sampled_distribution(
            chain4.catalog, chain4.sql, "chain4", sample_size=200, seed=0
        )
        q50 = dist.quantile(0.5)
        assert q50 == pytest.approx(dist.median(), rel=1e-9)
        assert dist.quantile(0.0) == pytest.approx(dist.minimum())
        assert dist.quantile(1.0) == pytest.approx(dist.maximum())
        values = [v for _q, v in dist.quantiles([0.1, 0.5, 0.9])]
        assert values == sorted(values)
        curve = dist.fraction_within_curve([1.0, 2.0, 10.0, float("inf")])
        fractions = [f for _factor, f in curve]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        for factor, fraction in curve[:-1]:
            assert fraction == pytest.approx(dist.fraction_within(factor))

    def test_quantile_validation(self, chain4):
        dist = sampled_distribution(
            chain4.catalog, chain4.sql, "chain4", sample_size=20, seed=0
        )
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_nonpositive_sample_size_rejected(self, chain4):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            sampled_distribution(
                chain4.catalog, chain4.sql, "chain4", sample_size=0
            )


class TestReport:
    def test_report_renders(self, chain4):
        dist = sampled_distribution(
            chain4.catalog, chain4.sql, "chain4", sample_size=100, seed=0
        )
        text = distribution_report(dist)
        assert "best known plan" in text
        assert "quantiles:" in text
        assert "within factor:" in text
        optimum_text = distribution_report(dist, scaled_to_optimum=True)
        assert "optimum" in optimum_text
