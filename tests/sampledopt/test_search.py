"""The sampled optimizer: recombination, stopping, determinism."""

import pytest

from repro.executor.executor import PlanExecutor
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.sampledopt import (
    FixedSamples,
    FragmentPool,
    QuantileTarget,
    SampledOptimizer,
    SampledPlanCoster,
)
from repro.testing import canonical_result
from repro.workloads.synthetic import chain_query, clique_query, star_query


@pytest.fixture(scope="module")
def chain3():
    return chain_query(3, rows=5, seed=0)


@pytest.fixture(scope="module")
def chain3_optimum(chain3):
    return Optimizer(chain3.catalog, OptimizerOptions()).optimize_sql(chain3.sql)


class TestRecombinationExactness:
    def test_full_coverage_recovers_the_true_optimum(
        self, chain3, chain3_optimum
    ):
        """Sampling enough to cover the space, the recombination DP must
        find exactly the materialized optimizer's best cost: the DP over
        all fragments *is* the memo's best-plan search."""
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=4000, batch_size=1000
        )
        assert result.best_cost == pytest.approx(
            chain3_optimum.best_cost, rel=1e-12
        )

    def test_recombined_never_worse_than_best_sampled(self, chain3):
        for seed in range(3):
            result = SampledOptimizer(chain3.catalog).optimize_sql(
                chain3.sql, samples=40, seed=seed
            )
            assert result.best_cost <= result.best_sampled_cost + 1e-9

    def test_never_better_than_true_optimum(self, chain3, chain3_optimum):
        for seed in range(3):
            result = SampledOptimizer(chain3.catalog).optimize_sql(
                chain3.sql, samples=40, seed=seed
            )
            assert result.best_cost >= chain3_optimum.best_cost - 1e-9

    def test_plan_cost_matches_reported_cost(self, chain3):
        """The DP's cost and the assembled plan's CostModel price agree."""
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=60, seed=1
        )
        space = ImplicitPlanSpace.from_sql(
            chain3.catalog, chain3.sql, options=OptimizerOptions()
        )
        coster = SampledPlanCoster(chain3.catalog, space)
        assert coster.cost(result.best_plan) == pytest.approx(
            result.best_cost, rel=1e-12
        )

    def test_best_plan_belongs_to_the_space(self, chain3):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=60, seed=2
        )
        space = ImplicitPlanSpace.from_sql(
            chain3.catalog, chain3.sql, options=OptimizerOptions()
        )
        rank = space.rank(result.best_plan)
        assert space.unrank(rank).fingerprint() == result.best_plan.fingerprint()

    def test_sampled_plan_executes_like_the_optimum(
        self, chain3, chain3_optimum
    ):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=30, seed=0
        )
        executor = PlanExecutor(chain3.database)
        sampled = executor.execute(result.best_plan)
        exhaustive = executor.execute(chain3_optimum.best_plan)
        assert canonical_result(
            sampled.columns, sampled.rows
        ) == canonical_result(exhaustive.columns, exhaustive.rows)


class TestFragmentPool:
    def test_pool_grows_monotonically_and_solve_improves(self, chain3):
        space = ImplicitPlanSpace.from_sql(
            chain3.catalog, chain3.sql, options=OptimizerOptions()
        )
        coster = SampledPlanCoster(chain3.catalog, space)
        pool = FragmentPool(space, coster)
        plans = space.sample(40, seed=5)
        previous = float("inf")
        for i, plan in enumerate(plans):
            pool.add_plan(plan)
            cost, choice = pool.solve()
            assert cost <= previous + 1e-9  # monotone in the pool
            previous = cost
        assembled = pool.assemble(choice)
        assert coster.cost(assembled) == pytest.approx(cost, rel=1e-12)

    def test_single_plan_pool_reproduces_that_plan(self, chain3):
        space = ImplicitPlanSpace.from_sql(
            chain3.catalog, chain3.sql, options=OptimizerOptions()
        )
        coster = SampledPlanCoster(chain3.catalog, space)
        pool = FragmentPool(space, coster)
        plan = space.unrank(123)
        pool.add_plan(plan)
        cost, choice = pool.solve()
        assert cost == pytest.approx(coster.cost(plan), rel=1e-12)
        assert pool.assemble(choice).fingerprint() == plan.fingerprint()


class TestDriverLoop:
    def test_seed_determinism(self, chain3):
        a = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=50, seed=9
        )
        b = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=50, seed=9
        )
        assert a.best_cost == b.best_cost
        assert a.best_plan.render() == b.best_plan.render()
        assert [p.best_cost for p in a.history] == [
            p.best_cost for p in b.history
        ]

    def test_fixed_rule_draws_exactly_k(self, chain3):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=70, batch_size=32
        )
        assert result.samples == 70  # 32 + 32 + 6
        assert result.batches == 3
        assert result.stopped_because == "rule"

    def test_quantile_rule_sets_the_budget(self, chain3):
        rule = QuantileTarget(quantile=0.05, confidence=0.9)
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, rule=rule, batch_size=16
        )
        assert result.samples >= rule.required_samples
        assert result.stopped_because == "rule"
        # the rule forces the i.i.d. uniform stream, so the certificate
        # exists, at the rule's own confidence
        assert not result.stratified
        assert result.confidence == 0.9
        assert result.quantile_certificate() <= 0.05 + 1e-9
        assert "90% confidence" in result.describe()

    def test_quantile_rule_rejects_explicit_stratification(self, chain3):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="uniform"):
            SampledOptimizer(chain3.catalog).optimize_sql(
                chain3.sql,
                rule=QuantileTarget(quantile=0.05),
                stratified=True,
            )

    def test_stratified_runs_carry_no_iid_certificate(self, chain3):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=30, stratified=True
        )
        assert result.quantile_certificate() is None
        assert "no i.i.d. quantile certificate" in result.describe()

    def test_nonpositive_budgets_rejected(self, chain3):
        from repro.errors import ReproError

        optimizer = SampledOptimizer(chain3.catalog)
        with pytest.raises(ReproError):
            optimizer.optimize_sql(chain3.sql, samples=0)
        with pytest.raises(ReproError):
            optimizer.optimize_sql(
                chain3.sql, samples=0, rule=QuantileTarget(quantile=0.05)
            )
        with pytest.raises(ReproError):
            optimizer.optimize_sql(chain3.sql, samples=10, batch_size=0)

    def test_budget_stops_the_loop(self, chain3):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql,
            samples=10_000,
            batch_size=8,
            budget_s=1e-9,  # expires after the first batch
        )
        assert result.stopped_because == "budget"
        assert result.samples == 8

    def test_invalid_wallclock_budget_rejected(self, chain3):
        from repro.errors import BudgetError

        optimizer = SampledOptimizer(chain3.catalog)
        for bad in (0.0, -1.0, float("nan"), float("inf"), "1.0", True):
            with pytest.raises(BudgetError):
                optimizer.optimize_sql(chain3.sql, samples=8, budget_s=bad)

    def test_history_is_anytime(self, chain3):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=64, batch_size=16
        )
        assert [point.samples for point in result.history] == [16, 32, 48, 64]
        costs = [point.best_cost for point in result.history]
        assert costs == sorted(costs, reverse=True)  # monotone improvement
        for point in result.history:
            assert point.best_cost <= point.best_sampled_cost + 1e-9

    def test_uniform_and_stratified_both_work(self, chain3):
        uniform = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=50, stratified=False
        )
        stratified = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=50, stratified=True
        )
        assert not uniform.stratified and stratified.stratified
        assert uniform.samples == stratified.samples == 50

    def test_result_surface_matches_optimization_result(self, chain3):
        result = SampledOptimizer(chain3.catalog).optimize_sql(
            chain3.sql, samples=30
        )
        assert "best cost" in result.explain()
        assert result.timings["space"] >= 0
        assert "sampled optimization" in result.describe()
        assert result.total_plans > 0
        assert result.query.order_by is not None or True  # BoundQuery surface


class TestLargerShapes:
    @pytest.mark.parametrize("maker,n", [(star_query, 6), (clique_query, 6)])
    def test_matches_optimum_on_covered_small_spaces(self, maker, n):
        workload = maker(n, rows=5, seed=0)
        optimum = Optimizer(workload.catalog, OptimizerOptions()).optimize_sql(
            workload.sql
        )
        result = SampledOptimizer(workload.catalog).optimize_sql(
            workload.sql, samples=256, seed=0
        )
        # recombination closes most of the gap even at tiny sample sizes
        assert result.best_cost <= 2.0 * optimum.best_cost
        assert result.best_cost >= optimum.best_cost - 1e-9
