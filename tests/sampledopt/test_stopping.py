"""Stopping rules for sampled optimization."""

import math

import pytest

from repro.errors import ReproError
from repro.sampledopt.stopping import (
    CostPlateau,
    FixedSamples,
    QuantileTarget,
    make_rule,
    quantile_bound,
)


class TestFixedSamples:
    def test_stops_at_k(self):
        rule = FixedSamples(100)
        rule.start(10**9)
        assert not rule.update(50, 10.0)
        assert rule.update(100, 10.0)
        assert rule.update(150, 10.0)

    def test_required_samples(self):
        assert FixedSamples(64).required_samples == 64

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            FixedSamples(0)

    def test_describe(self):
        assert "k=100" in FixedSamples(100).describe()


class TestCostPlateau:
    def test_stops_after_flat_batches(self):
        rule = CostPlateau(patience=2, tolerance=0.01, min_samples=0)
        rule.start(10**9)
        assert not rule.update(10, 100.0)  # first observation
        assert not rule.update(20, 50.0)  # big improvement
        assert not rule.update(30, 49.9)  # flat 1 (<1% better)
        assert rule.update(40, 49.9)  # flat 2 -> stop

    def test_improvement_resets_patience(self):
        rule = CostPlateau(patience=2, tolerance=0.01, min_samples=0)
        rule.start(10**9)
        rule.update(10, 100.0)
        assert not rule.update(20, 99.9)  # flat 1
        assert not rule.update(30, 50.0)  # improved: reset
        assert not rule.update(40, 49.9)  # flat 1 again
        assert rule.update(50, 49.9)

    def test_min_samples_floor(self):
        rule = CostPlateau(patience=1, tolerance=0.01, min_samples=100)
        rule.start(10**9)
        assert not rule.update(10, 5.0)
        assert not rule.update(20, 5.0)  # plateaued but below the floor
        assert rule.update(100, 5.0)

    def test_start_resets(self):
        rule = CostPlateau(patience=1, tolerance=0.01, min_samples=0)
        rule.start(10)
        rule.update(10, 5.0)
        rule.update(20, 5.0)
        rule.start(10)
        assert not rule.update(10, 5.0)  # fresh: first batch never stops

    def test_validation(self):
        with pytest.raises(ReproError):
            CostPlateau(patience=0)
        with pytest.raises(ReproError):
            CostPlateau(tolerance=-0.5)


class TestQuantileTarget:
    def test_required_samples_math(self):
        rule = QuantileTarget(quantile=0.001, confidence=0.95)
        k = rule.required_samples
        # exactly enough: 1-(1-q)^k >= c, and k-1 is not
        assert 1 - (1 - 0.001) ** k >= 0.95
        assert 1 - (1 - 0.001) ** (k - 1) < 0.95

    def test_stops_at_required(self):
        rule = QuantileTarget(quantile=0.01, confidence=0.9)
        rule.start(10**9)
        k = rule.required_samples
        assert not rule.update(k - 1, 1.0)
        assert rule.update(k, 1.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            QuantileTarget(quantile=0.0)
        with pytest.raises(ReproError):
            QuantileTarget(confidence=1.0)


class TestQuantileBound:
    def test_inverse_of_required_samples(self):
        rule = QuantileTarget(quantile=1e-3, confidence=0.95)
        q = quantile_bound(rule.required_samples, confidence=0.95)
        assert q <= 1e-3 + 1e-9

    def test_monotone_in_samples(self):
        assert quantile_bound(1000) < quantile_bound(100) < quantile_bound(10)

    def test_degenerate(self):
        assert quantile_bound(0) == 1.0


class TestMakeRule:
    def test_fixed(self):
        assert isinstance(make_rule("fixed", samples=10), FixedSamples)

    def test_fixed_needs_samples(self):
        with pytest.raises(ReproError):
            make_rule("fixed")

    def test_plateau(self):
        assert isinstance(make_rule("plateau"), CostPlateau)

    def test_quantile(self):
        rule = make_rule("quantile", quantile=0.01, confidence=0.9)
        assert isinstance(rule, QuantileTarget)
        assert rule.quantile == 0.01

    def test_unknown(self):
        with pytest.raises(ReproError):
            make_rule("entropy")
