"""Plan-shape strata and stratified sampling."""

import pytest

from repro.optimizer.optimizer import OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.sampledopt.strata import StratifiedSampler, rank_strata
from repro.workloads.synthetic import chain_query, clique_query


@pytest.fixture(scope="module")
def chain5_space():
    workload = chain_query(5, rows=5, seed=0)
    return ImplicitPlanSpace.from_sql(
        workload.catalog, workload.sql, options=OptimizerOptions()
    )


class TestRankStrata:
    def test_partitions_the_rank_space(self, chain5_space):
        strata = rank_strata(chain5_space, target=16)
        assert strata[0].lo == 0
        assert strata[-1].hi == chain5_space.count()
        for left, right in zip(strata, strata[1:]):
            assert left.hi == right.lo  # contiguous, no gaps or overlaps
        assert all(stratum.size > 0 for stratum in strata)

    def test_reaches_target_when_possible(self, chain5_space):
        strata = rank_strata(chain5_space, target=16)
        assert len(strata) >= 16

    def test_target_one_is_whole_space(self, chain5_space):
        strata = rank_strata(chain5_space, target=1)
        assert len(strata) == 1
        assert strata[0].size == chain5_space.count()

    def test_labels_are_operator_prefixes(self, chain5_space):
        strata = rank_strata(chain5_space, target=16)
        # every refined label is a /-joined chain of gid.local ids
        refined = [s for s in strata if s.label != "(root)"]
        assert refined
        for stratum in refined:
            for part in stratum.label.split("/"):
                gid, local = part.split(".")
                assert gid.isdigit() and local.isdigit()

    def test_plans_in_stratum_share_prefix(self, chain5_space):
        """All plans of a stratum start with the stratum's operator chain."""
        strata = rank_strata(chain5_space, target=8)
        widest = max(strata, key=lambda s: s.size)
        prefix = widest.label.split("/")
        for rank in (widest.lo, (widest.lo + widest.hi) // 2, widest.hi - 1):
            plan = chain5_space.unrank(rank)
            node = plan
            for expected in prefix:
                assert node.expr_id == expected
                if node.children:
                    node = node.children[-1]  # the slowest-varying slot

    def test_deep_strata_on_clique(self):
        workload = clique_query(6, rows=5, seed=0)
        space = ImplicitPlanSpace.from_sql(
            workload.catalog, workload.sql, options=OptimizerOptions()
        )
        strata = rank_strata(space, target=64)
        assert sum(stratum.size for stratum in strata) == space.count()


class TestStratifiedSampler:
    def test_allocation_is_proportional_and_exact(self, chain5_space):
        sampler = StratifiedSampler(chain5_space, seed=0, target=16)
        counts = sampler.allocate(100)
        assert sum(counts) == 100
        total = chain5_space.count()
        for stratum, count in zip(sampler.strata, counts):
            ideal = 100 * stratum.size / total
            assert abs(count - ideal) <= 1  # largest-remainder rounding

    def test_ranks_fall_in_their_strata(self, chain5_space):
        sampler = StratifiedSampler(chain5_space, seed=7, target=16)
        ranks = sampler.sample_ranks(200)
        assert len(ranks) == 200
        position = 0
        for stratum, count in zip(sampler.strata, sampler.allocate(200)):
            for rank in ranks[position : position + count]:
                assert stratum.lo <= rank < stratum.hi
            position += count

    def test_deterministic_per_seed(self, chain5_space):
        first = StratifiedSampler(chain5_space, seed=3).sample_ranks(50)
        second = StratifiedSampler(chain5_space, seed=3).sample_ranks(50)
        third = StratifiedSampler(chain5_space, seed=4).sample_ranks(50)
        assert first == second
        assert first != third

    def test_sample_returns_plans(self, chain5_space):
        plans = StratifiedSampler(chain5_space, seed=0).sample(5)
        assert len(plans) == 5
        for plan in plans:
            assert chain5_space.rank(plan) >= 0
