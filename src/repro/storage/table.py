"""Row-oriented in-memory tables.

The execution engine's scans read from these.  A :class:`DataTable` also
pre-computes *sorted views* for each index declared in the schema, which is
what :class:`~repro.algebra.physical.IndexScan` iterates — delivering rows
in index-key order, exactly the physical property the optimizer reasons
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import TableStats
from repro.errors import StorageError

__all__ = ["DataTable"]


def _sort_key_for(positions: tuple[int, ...]):
    def key(row: tuple) -> tuple:
        return tuple(row[p] for p in positions)

    return key


@dataclass
class DataTable:
    """Rows of one base table plus per-index sorted row orderings."""

    schema: TableSchema
    rows: list[tuple] = field(default_factory=list)
    _index_views: dict[str, list[tuple]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        arity = len(self.schema.columns)
        for row in self.rows:
            if len(row) != arity:
                raise StorageError(
                    f"row arity {len(row)} does not match table "
                    f"{self.schema.name!r} arity {arity}"
                )

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def insert(self, row: tuple) -> None:
        if len(row) != len(self.schema.columns):
            raise StorageError(
                f"row arity {len(row)} does not match table "
                f"{self.schema.name!r} arity {len(self.schema.columns)}"
            )
        self.rows.append(row)
        self._index_views.clear()

    def extend(self, rows: list[tuple]) -> None:
        for row in rows:
            self.insert(row)

    def scan(self) -> list[tuple]:
        """All rows in heap (insertion) order."""
        return self.rows

    def index_scan(self, index_name: str) -> list[tuple]:
        """All rows sorted by the named index's key columns.

        The sorted view is computed lazily once and cached; it simulates
        reading a sorted index without charging the executor a sort.
        """
        cached = self._index_views.get(index_name)
        if cached is not None:
            return cached
        for index in self.schema.indexes:
            if index.name == index_name:
                positions = tuple(
                    self.schema.column_position(col) for col in index.key
                )
                view = sorted(self.rows, key=_sort_key_for(positions))
                self._index_views[index_name] = view
                return view
        raise StorageError(
            f"table {self.schema.name!r} has no index {index_name!r}"
        )

    def collect_stats(self) -> TableStats:
        """Exact statistics over the current contents."""
        return TableStats.collect(self.rows, self.schema.column_names())
