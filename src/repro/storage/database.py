"""A named collection of in-memory tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import StorageError
from repro.storage.table import DataTable

__all__ = ["Database"]


@dataclass
class Database:
    """All base-table data for one database instance.

    ``catalog`` describes the schema; ``tables`` holds the rows.  The
    executor looks tables up here by (case-insensitive) name.
    """

    catalog: Catalog
    tables: dict[str, DataTable] = field(default_factory=dict)

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def add_table(self, table: DataTable) -> None:
        key = self._key(table.name)
        if key in self.tables:
            raise StorageError(f"table {table.name!r} already loaded")
        self.tables[key] = table

    def table(self, name: str) -> DataTable:
        try:
            return self.tables[self._key(name)]
        except KeyError:
            raise StorageError(f"no data loaded for table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return self._key(name) in self.tables

    def refresh_stats(self) -> None:
        """Replace catalog statistics with exact stats from loaded data.

        Useful when optimizing directly against the micro instance instead
        of the declared SF=1 statistics.
        """
        for key, table in self.tables.items():
            self.catalog.set_stats(key, table.collect_stats())
