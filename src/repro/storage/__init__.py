"""In-memory storage engine (system S3) and TPC-H data generator (S2)."""

from repro.storage.table import DataTable
from repro.storage.database import Database
from repro.storage.datagen import generate_tpch

__all__ = ["DataTable", "Database", "generate_tpch"]
