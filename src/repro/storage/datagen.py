"""Deterministic micro-scale TPC-H data generator.

The paper executes sampled plans against a real TPC-H database.  Plan
*result equivalence* (Section 4) does not depend on data volume, so for
execution we generate a tiny, referentially intact instance whose value
distributions mirror TPC-H closely enough that the benchmark queries
return non-empty results: real nation/region names (Q5's ``ASIA``, Q7's
``FRANCE``/``GERMANY``, Q8's ``AMERICA``), part types including
``ECONOMY ANODIZED STEEL`` (Q8), part names containing ``green`` (Q9), and
order/ship dates inside the 1992–1998 window.

Everything is driven by one seed; the same seed always yields the same
database.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.tpch import tpch_catalog
from repro.storage.database import Database
from repro.storage.table import DataTable
from repro.util.rng import make_rng, spawn_rng

__all__ = ["generate_tpch", "MICRO_ROWS", "NATIONS", "REGIONS"]

#: Region key -> name (TPC-H specification order).
REGIONS: list[str] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: The 25 TPC-H nations as (name, region key).
NATIONS: list[tuple[str, int]] = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

#: Default row counts for the micro instance.
MICRO_ROWS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 24,
    "customer": 36,
    "part": 30,
    "partsupp": 90,
    "orders": 80,
    "lineitem": 240,
}

_TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG"]

_MONTH_DAYS = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]


def _random_date(rng, lo_year: int = 1992, hi_year: int = 1998) -> str:
    year = rng.randint(lo_year, hi_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, _MONTH_DAYS[month - 1])
    return f"{year:04d}-{month:02d}-{day:02d}"


def _shift_date(date: str, rng, max_days: int = 60) -> str:
    """A date up to ``max_days`` later, staying inside the same year if easy."""
    year, month, day = int(date[:4]), int(date[5:7]), int(date[8:10])
    day += rng.randint(1, max_days)
    while day > _MONTH_DAYS[month - 1]:
        day -= _MONTH_DAYS[month - 1]
        month += 1
        if month > 12:
            month = 1
            year += 1
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_tpch(
    seed: int = 0,
    rows: dict[str, int] | None = None,
    catalog: Catalog | None = None,
) -> Database:
    """Generate a micro TPC-H database.

    ``rows`` overrides per-table row counts (defaults to :data:`MICRO_ROWS`;
    ``region``/``nation`` are always fully populated).  ``catalog`` defaults
    to the SF=1 catalog, so the optimizer plans as if the database were full
    size while execution touches only the micro rows — the same separation
    of concerns as in the paper's test setup.
    """
    sizes = dict(MICRO_ROWS)
    if rows:
        sizes.update(rows)
    if catalog is None:
        catalog = tpch_catalog(scale_factor=1.0)
    root = make_rng(seed)
    db = Database(catalog=catalog)

    region_rows = [
        (key, name, f"region {name.lower()}") for key, name in enumerate(REGIONS)
    ]
    db.add_table(DataTable(catalog.table("region"), region_rows))

    nation_rows = [
        (key, name, region_key, f"nation {name.lower()}")
        for key, (name, region_key) in enumerate(NATIONS)
    ]
    db.add_table(DataTable(catalog.table("nation"), nation_rows))

    n_supplier = sizes["supplier"]
    rng = spawn_rng(root, "supplier")
    supplier_rows = []
    for k in range(1, n_supplier + 1):
        nation_key = (k - 1) % len(NATIONS)
        supplier_rows.append(
            (
                k,
                f"Supplier#{k:09d}",
                f"addr s{k}",
                nation_key,
                f"{10 + nation_key}-{k:03d}-555",
                round(rng.uniform(-999.99, 9999.99), 2),
                f"supplier comment {k}",
            )
        )
    db.add_table(DataTable(catalog.table("supplier"), supplier_rows))

    n_customer = sizes["customer"]
    rng = spawn_rng(root, "customer")
    customer_rows = []
    for k in range(1, n_customer + 1):
        nation_key = rng.randrange(len(NATIONS))
        customer_rows.append(
            (
                k,
                f"Customer#{k:09d}",
                f"addr c{k}",
                nation_key,
                f"{10 + nation_key}-{k:03d}-777",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(_SEGMENTS),
                f"customer comment {k}",
            )
        )
    db.add_table(DataTable(catalog.table("customer"), customer_rows))

    n_part = sizes["part"]
    rng = spawn_rng(root, "part")
    part_rows = []
    for k in range(1, n_part + 1):
        color_a = _COLORS[rng.randrange(len(_COLORS))]
        color_b = _COLORS[rng.randrange(len(_COLORS))]
        ptype = " ".join(
            (
                rng.choice(_TYPE_SYLLABLE_1),
                rng.choice(_TYPE_SYLLABLE_2),
                rng.choice(_TYPE_SYLLABLE_3),
            )
        )
        part_rows.append(
            (
                k,
                f"{color_a} {color_b} part {k}",
                f"Manufacturer#{1 + k % 5}",
                f"Brand#{1 + k % 5}{1 + k % 5}",
                ptype,
                rng.randint(1, 50),
                rng.choice(_CONTAINERS),
                round(900 + k + rng.uniform(0, 100), 2),
                f"part comment {k}",
            )
        )
    db.add_table(DataTable(catalog.table("part"), part_rows))

    n_partsupp = sizes["partsupp"]
    rng = spawn_rng(root, "partsupp")
    seen_ps: set[tuple[int, int]] = set()
    partsupp_rows = []
    while len(partsupp_rows) < n_partsupp:
        pk = rng.randint(1, n_part)
        sk = rng.randint(1, n_supplier)
        if (pk, sk) in seen_ps:
            continue
        seen_ps.add((pk, sk))
        partsupp_rows.append(
            (
                pk,
                sk,
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
                f"partsupp comment {pk}/{sk}",
            )
        )
        if len(seen_ps) >= n_part * n_supplier:
            break
    db.add_table(DataTable(catalog.table("partsupp"), partsupp_rows))

    n_orders = sizes["orders"]
    rng = spawn_rng(root, "orders")
    orders_rows = []
    order_dates: dict[int, str] = {}
    for k in range(1, n_orders + 1):
        date = _random_date(rng, 1992, 1997)
        order_dates[k] = date
        orders_rows.append(
            (
                k,
                rng.randint(1, n_customer),
                rng.choice(["O", "F", "P"]),
                round(rng.uniform(800.0, 400_000.0), 2),
                date,
                rng.choice(_PRIORITIES),
                f"Clerk#{rng.randint(1, 20):09d}",
                0,
                f"order comment {k}",
            )
        )
    db.add_table(DataTable(catalog.table("orders"), orders_rows))

    n_lineitem = sizes["lineitem"]
    rng = spawn_rng(root, "lineitem")
    # Use (partkey, suppkey) pairs that exist in partsupp, like real TPC-H.
    ps_pairs = [(pk, sk) for pk, sk, *_ in partsupp_rows]
    lineitem_rows = []
    line_numbers: dict[int, int] = {}
    for _ in range(n_lineitem):
        okey = rng.randint(1, n_orders)
        line_numbers[okey] = line_numbers.get(okey, 0) + 1
        pk, sk = ps_pairs[rng.randrange(len(ps_pairs))]
        quantity = float(rng.randint(1, 50))
        extended = round(quantity * rng.uniform(900.0, 2100.0), 2)
        ship = _shift_date(order_dates[okey], rng, 120)
        commit = _shift_date(order_dates[okey], rng, 90)
        receipt = _shift_date(ship, rng, 30)
        lineitem_rows.append(
            (
                okey,
                pk,
                sk,
                line_numbers[okey],
                quantity,
                extended,
                round(rng.randint(0, 10) / 100.0, 2),
                round(rng.randint(0, 8) / 100.0, 2),
                rng.choice(["A", "N", "R"]),
                rng.choice(["O", "F"]),
                ship,
                commit,
                receipt,
                rng.choice(_SHIP_INSTRUCT),
                rng.choice(_SHIP_MODES),
                "line comment",
            )
        )
    db.add_table(DataTable(catalog.table("lineitem"), lineitem_rows))
    return db
