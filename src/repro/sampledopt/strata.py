"""Plan-shape strata: contiguous rank intervals of the implicit space.

Ranks are mixed-radix numbers: a candidate list splits ``[0, N)`` into
one contiguous block per operator row (prefix sums), and within a row the
*last* child slot varies slowest — so refining a row's block along that
slot again yields contiguous sub-blocks, one per candidate operator of
the child.  Recursing produces a partition of the rank space into
intervals keyed by an *operator prefix*: the chain of operator choices
along the slowest-varying spine (for joins, the top-most join splits —
i.e. a join-order prefix).  Plans inside one stratum share that prefix;
plans in different strata differ structurally, which is where most of the
cost variance lives.

:func:`rank_strata` builds the partition greedily (always refining the
largest stratum) until a target stratum count is reached;
:class:`StratifiedSampler` draws proportionally allocated uniform ranks
from it — self-weighting up to integer rounding (largest-remainder
apportionment), so distribution estimates stay directly comparable with
plain uniform sampling while each structural region is guaranteed its
share of the sample.

Only strata along the slowest-varying spine are rank-contiguous; census
strata ("all plans containing operator v") are unions of many intervals
and are served by the participation module instead.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.errors import PlanSpaceError
from repro.optimizer.plan import PlanNode
from repro.planspace.implicit.space import ImplicitPlanSpace
from repro.util.rng import make_rng

__all__ = ["Stratum", "rank_strata", "StratifiedSampler"]


@dataclass(frozen=True)
class Stratum:
    """One contiguous rank interval ``[lo, hi)`` of the plan space."""

    label: str
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


class _Node:
    """A refinable stratum: either a full candidate list (``row=None``)
    or one row of it, pending descent into its last child slot."""

    __slots__ = ("gid", "req", "row", "lo", "hi", "label", "depth")

    def __init__(self, gid, req, row, lo, hi, label, depth):
        self.gid = gid
        self.req = req
        self.row = row
        self.lo = lo
        self.hi = hi
        self.label = label
        self.depth = depth


def _expand(node: _Node, tables) -> list[_Node] | None:
    """Refine one stratum a single level; None = atomic."""
    if node.row is None:
        candidates = tables.candidates(node.gid, node.req)
        rows = candidates.rows
        if not rows:
            return None
        # hi - lo = total * span: each unit of this list's rank space
        # covers `span` full ranks (the faster-varying choices upstream)
        span = (node.hi - node.lo) // candidates.total
        out = []
        for pos, row in enumerate(rows):
            lo = node.lo + candidates.cumulative[pos] * span
            hi = node.lo + candidates.cumulative[pos + 1] * span
            label = (
                f"{node.label}/{node.gid}.{row.local_id}"
                if node.label
                else f"{node.gid}.{row.local_id}"
            )
            out.append(
                _Node(node.gid, node.req, row, lo, hi, label, node.depth + 1)
            )
        return out
    row = node.row
    if not row.slots:
        return None
    # descend into the slowest-varying (last) slot: its sub-rank has
    # stride prefix[-1], so each of its candidate rows owns a contiguous
    # sub-block of this row's interval
    child_gid, child_req = row.slots[-1]
    return [
        _Node(child_gid, child_req, None, node.lo, node.hi, node.label, node.depth)
    ]


def rank_strata(
    space: ImplicitPlanSpace,
    target: int = 64,
    max_strata: int = 4096,
    max_depth: int = 64,
) -> list[Stratum]:
    """Partition ``[0, N)`` into at least ``target`` contiguous strata
    (when the space allows it), refining the largest stratum first.

    ``max_strata`` bounds a single refinement that fans out wide (a
    clique's top join group has thousands of splits); ``max_depth``
    bounds the operator-prefix length.
    """
    total = space.count()
    if total <= 0:
        raise PlanSpaceError("cannot stratify an empty plan space")
    state = space.state
    tables = space.unranker.tables
    root = _Node(
        state.layout.root_gid, state.root_kid, None, 0, total, "", 0
    )
    # heap of refinable nodes, largest interval first (ties: FIFO)
    counter = 0
    heap = [(-total, counter, root)]
    done: list[_Node] = []
    leaves = 1
    while heap and leaves < target:
        _, _, node = heapq.heappop(heap)
        children = None
        if node.depth < max_depth:
            children = _expand(node, tables)
        if children is not None and leaves - 1 + len(children) > max_strata:
            children = None
        if children is None:
            done.append(node)
            continue
        leaves += len(children) - 1
        for child in children:
            counter += 1
            heapq.heappush(heap, (-(child.hi - child.lo), counter, child))
    done.extend(node for _, _, node in heap)
    strata = [
        Stratum(label=node.label or "(root)", lo=node.lo, hi=node.hi)
        for node in done
    ]
    strata.sort(key=lambda s: s.lo)
    assert strata[0].lo == 0 and strata[-1].hi == total
    return strata


class StratifiedSampler:
    """Proportionally allocated uniform ranks over plan-shape strata.

    A distinct sampler type with its own RNG stream (documented in
    :mod:`repro.util.rng`): for each ``sample_ranks(n)`` call the strata
    are visited in rank order and each stratum draws its allocation via
    ``rng.randrange(lo, hi)`` — deterministic per seed, but *not* the
    plain samplers' stream (stratification changes which ranks can
    follow which).
    """

    def __init__(
        self,
        space: ImplicitPlanSpace,
        seed: int | random.Random = 0,
        target: int = 64,
        strata: list[Stratum] | None = None,
    ):
        self.space = space
        self.rng = make_rng(seed)
        self.strata = (
            strata if strata is not None else rank_strata(space, target=target)
        )
        self.total = space.count()

    def allocate(self, n: int) -> list[int]:
        """Per-stratum sample counts for ``n`` total draws (proportional,
        largest-remainder apportionment; sums to exactly ``n``)."""
        if n < 0:
            raise ValueError("sample size must be non-negative")
        ideals = [n * stratum.size / self.total for stratum in self.strata]
        counts = [int(ideal) for ideal in ideals]
        short = n - sum(counts)
        by_remainder = sorted(
            range(len(ideals)),
            key=lambda i: (counts[i] - ideals[i], i),
        )
        for i in by_remainder[:short]:
            counts[i] += 1
        return counts

    def sample_ranks(self, n: int) -> list[int]:
        ranks = []
        randrange = self.rng.randrange
        for stratum, count in zip(self.strata, self.allocate(n)):
            for _ in range(count):
                ranks.append(randrange(stratum.lo, stratum.hi))
        return ranks

    def sample(self, n: int) -> list[PlanNode]:
        unrank = self.space.unrank
        return [unrank(rank) for rank in self.sample_ranks(n)]
