"""Cost-distribution analytics without the memo (paper Section 5 at
sizes the memo path cannot reach).

``experiments/distributions.py`` runs the full optimizer per query —
fine for TPC-H-sized memos, minutes-to-hours for clique12.  Here the
whole pipeline is memo-free: the implicit engine counts and samples, the
cost model batch-prices the sample, and costs are scaled either to a
caller-provided optimum (when one is computable) or to the best *known*
plan — by default the recombined best of the very sample being analyzed,
so the report is self-contained ("scaled-to-best factors").  The result
is the same :class:`CostDistribution` object the Table 1 / Figure 4
harness consumes, so every downstream statistic (quantiles,
``fraction_within`` curves, Gamma shape, skewness) works unchanged.
"""

from __future__ import annotations

import random

from repro.catalog.catalog import Catalog
from repro.errors import PlanSpaceError, ReproError
from repro.experiments.distributions import CostDistribution
from repro.planspace.implicit.space import ImplicitPlanSpace
from repro.sampledopt.costing import SampledPlanCoster
from repro.sampledopt.strata import StratifiedSampler
from repro.sql.binder import Binder
from repro.sql.parser import parse

__all__ = [
    "sampled_distribution",
    "distribution_report",
    "DEFAULT_QUANTILES",
    "DEFAULT_FACTORS",
]

DEFAULT_QUANTILES = (0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99)
DEFAULT_FACTORS = (1.5, 2.0, 5.0, 10.0, 100.0)


def sampled_distribution(
    catalog: Catalog,
    sql: str,
    query_name: str,
    sample_size: int = 1000,
    seed: int | random.Random = 0,
    options=None,
    stratified: bool = False,
    scale_to: float | None = None,
    space: ImplicitPlanSpace | None = None,
) -> CostDistribution:
    """Sample a query's cost distribution from the implicit engine.

    ``scale_to`` fixes the denominator (pass the materialized optimizer's
    ``best_cost`` to reproduce the paper's scaled-to-optimum numbers);
    when omitted the costs are scaled to the best plan *recombinable*
    from the sample itself (see :mod:`.search` — never worse than the
    best sampled plan), so large spaces need no memo at all.  With
    ``stratified=True`` the sample is proportionally allocated across
    plan-shape strata (variance reduction; a different — still
    deterministic — rank stream than plain sampling).
    """
    from repro.optimizer.optimizer import OptimizerOptions

    if sample_size <= 0:
        raise ReproError(
            f"distribution sample size must be positive, got {sample_size}"
        )
    if options is None:
        options = OptimizerOptions()
    if space is None:
        bound = Binder(catalog).bind(parse(sql))
        space = ImplicitPlanSpace.from_query(catalog, bound, options=options)
    coster = SampledPlanCoster(catalog, space, options.cost_params)
    if stratified:
        ranks = StratifiedSampler(space, seed=seed).sample_ranks(sample_size)
    else:
        ranks = space.sample_ranks(sample_size, seed=seed)
    plans, costs = coster.cost_ranks(ranks)

    if scale_to is None:
        from repro.sampledopt.search import FragmentPool

        pool = FragmentPool(space, coster)
        for plan in plans:
            pool.add_plan(plan)
        scale_to, _choice = pool.solve()
    if scale_to <= 0:
        raise PlanSpaceError(
            f"cannot scale costs to non-positive optimum {scale_to}"
        )
    return CostDistribution(
        query_name=query_name,
        allow_cross_products=options.allow_cross_products,
        total_plans=space.count(),
        best_cost=scale_to,
        scaled_costs=[cost / scale_to for cost in costs],
        seed=seed if isinstance(seed, int) else 0,
    )


def distribution_report(
    dist: CostDistribution,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    factors: tuple[float, ...] = DEFAULT_FACTORS,
    scaled_to_optimum: bool = False,
) -> str:
    """Human-readable analytics block for one distribution."""
    denominator = "optimum" if scaled_to_optimum else "best known plan"
    lines = [
        f"{dist.query_name} "
        f"({'with' if dist.allow_cross_products else 'no'} cross products): "
        f"N = {dist.total_plans:,} plans, sample = {dist.sample_size}",
        f"costs scaled to the {denominator} (cost {dist.best_cost:,.1f})",
        f"min {dist.minimum():.3f}x  median {dist.median():.3f}x  "
        f"mean {dist.mean():.3f}x  max {dist.maximum():.3f}x",
        "quantiles: "
        + "  ".join(f"p{int(q * 100):02d}={v:.2f}x" for q, v in dist.quantiles(list(quantiles))),
        "within factor: "
        + "  ".join(
            f"<={factor:g}x: {fraction:.1%}"
            for factor, fraction in dist.fraction_within_curve(list(factors))
        ),
    ]
    shape = dist.gamma_shape()
    if shape is not None:
        lines.append(f"gamma shape: {shape:.3f}")
    return "\n".join(lines)
