"""Memo-free plan costing over the implicit engine.

The materialized pipeline prices plans only after the whole physical memo
exists; here costing rides directly on the implicit tables: a sampled
``PlanNode`` already carries the group cardinality estimates the implicit
unranker computed lazily (the same values ``annotate_cardinalities``
would have stored on memo groups — parity is asserted by the equivalence
property suite), so pricing it is a pure :class:`CostModel` pass, and a
whole sampled batch goes through the one hot-path entry point
``CostModel.plan_costs``.

:class:`RowCoster` is the per-fragment variant used by the recombination
search: the *local* cost of one virtual operator row, computed from the
row's group cardinality and its child groups' cardinalities — no
``PlanNode`` is assembled at all.  Because cardinality is a group
property, every alternative subtree of the same ``(group, requirement)``
context feeds its parent the same row count, which is what makes
fragment-local costs composable (see :mod:`.search`).
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.plan import PlanNode
from repro.planspace.implicit.space import ImplicitPlanSpace
from repro.planspace.implicit.tables import Row, TableSet

__all__ = ["RowCoster", "SampledPlanCoster"]


class RowCoster:
    """Local costs of virtual operator rows, cached per ``(gid, local)``."""

    def __init__(self, tables: TableSet, cost_model: CostModel):
        self.tables = tables
        self.cost_model = cost_model
        self._local: dict[tuple[int, int], float] = {}

    def local_cost(self, gid: int, row: Row) -> float:
        """The row's own operator cost (children's costs not included)."""
        key = (gid, row.local_id)
        cached = self._local.get(key)
        if cached is not None:
            return cached
        tables = self.tables
        cost = self.cost_model.operator_cost(
            tables.operator(gid, row),
            tables.cardinality(gid),
            tuple(tables.cardinality(child_gid) for child_gid, _ in row.slots),
        )
        self._local[key] = cost
        return cost


class SampledPlanCoster:
    """Batch-cost sampled plans straight off an implicit space.

    Owns the :class:`CostModel` (built from the space's options so costs
    are comparable with the materialized optimizer's) and the
    :class:`RowCoster` the recombination search shares.
    """

    def __init__(
        self,
        catalog: Catalog,
        space: ImplicitPlanSpace,
        cost_params: CostParameters | None = None,
    ):
        self.space = space
        self.cost_model = CostModel(catalog, cost_params)
        self.rows = RowCoster(space.unranker.tables, self.cost_model)

    def cost(self, plan: PlanNode) -> float:
        return self.cost_model.plan_cost(plan)

    def cost_batch(self, plans: list[PlanNode]) -> list[float]:
        """Price a sampled batch (one ``plan_costs`` call, the hot path)."""
        return self.cost_model.plan_costs(plans)

    def cost_ranks(self, ranks: list[int]) -> tuple[list[PlanNode], list[float]]:
        """Unrank and price ``ranks``; returns (plans, costs) in order."""
        unrank = self.space.unrank
        plans = [unrank(rank) for rank in ranks]
        return plans, self.cost_batch(plans)
