"""Stopping rules for anytime sampled optimization.

The search draws batches of uniform plans and must decide when more
sampling stops paying for itself.  Three rules, in the spirit of the
sampling-based optimization literature:

* :class:`FixedSamples` — the paper's implicit rule: a predetermined
  sample size ``k`` ("a random sample of 10,000 plans").
* :class:`CostPlateau` — anytime/adaptive: stop after ``patience``
  consecutive batches whose best cost improved by less than ``tolerance``
  (relative).  The re-optimization view: more samples are worth their
  wall-clock only while they keep moving the incumbent.
* :class:`QuantileTarget` — the PAO-style probabilistic guarantee
  (Trummer & Koch, "Probably Approximately Optimal Query Optimization"):
  after ``k`` uniform samples the probability that none landed in the
  best ``q``-fraction of the space is ``(1-q)^k``, so
  ``k >= log(1-confidence) / log(1-q)`` samples make the best *sampled*
  plan a top-``q`` plan with the requested confidence.  The rule stops at
  exactly that ``k`` — and recombination (see :mod:`.search`) only ever
  improves on the guaranteed plan.

Rules see only costed batches; wall-clock budgets are enforced by the
search driver itself so every rule is budget-compatible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "StoppingRule",
    "FixedSamples",
    "CostPlateau",
    "QuantileTarget",
    "make_rule",
]


class StoppingRule:
    """Decides, after each costed batch, whether to keep sampling."""

    def start(self, total_plans: int) -> None:
        """Reset state for a fresh search over a space of ``total_plans``."""

    def update(self, samples: int, best_cost: float) -> bool:
        """Record one costed batch; True = stop.

        ``samples`` is the cumulative sample count, ``best_cost`` the best
        cost seen so far (the incumbent after recombination, so plateau
        detection sees every improvement the search can act on).
        """
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - trivial
        return type(self).__name__


@dataclass
class FixedSamples(StoppingRule):
    """Stop once ``k`` plans have been sampled and costed."""

    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ReproError(f"sample budget must be positive, got {self.k}")

    @property
    def required_samples(self) -> int:
        return self.k

    def update(self, samples: int, best_cost: float) -> bool:
        return samples >= self.k

    def describe(self) -> str:
        return f"fixed-k (k={self.k})"


class CostPlateau(StoppingRule):
    """Stop after ``patience`` batches without relative improvement
    greater than ``tolerance``; always take at least ``min_samples``."""

    def __init__(
        self,
        patience: int = 2,
        tolerance: float = 0.01,
        min_samples: int = 128,
    ):
        if patience < 1:
            raise ReproError("patience must be at least 1 batch")
        if tolerance < 0:
            raise ReproError("tolerance must be non-negative")
        self.patience = patience
        self.tolerance = tolerance
        self.min_samples = min_samples
        self._last_best = math.inf
        self._flat_batches = 0

    def start(self, total_plans: int) -> None:
        self._last_best = math.inf
        self._flat_batches = 0

    def update(self, samples: int, best_cost: float) -> bool:
        improved = best_cost < self._last_best * (1.0 - self.tolerance)
        self._flat_batches = 0 if improved else self._flat_batches + 1
        if best_cost < self._last_best:
            self._last_best = best_cost
        return (
            samples >= self.min_samples
            and self._flat_batches >= self.patience
        )

    def describe(self) -> str:
        return (
            f"cost-plateau (patience={self.patience}, "
            f"tolerance={self.tolerance:g}, min_samples={self.min_samples})"
        )


class QuantileTarget(StoppingRule):
    """Stop once the best sampled plan is in the best ``quantile``
    fraction of the space with probability ``confidence``."""

    def __init__(self, quantile: float = 1e-4, confidence: float = 0.95):
        if not 0.0 < quantile < 1.0:
            raise ReproError(f"quantile must be in (0, 1), got {quantile}")
        if not 0.0 < confidence < 1.0:
            raise ReproError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        self.quantile = quantile
        self.confidence = confidence

    @property
    def required_samples(self) -> int:
        """``k`` with ``1 - (1-q)^k >= confidence``."""
        return math.ceil(
            math.log(1.0 - self.confidence) / math.log(1.0 - self.quantile)
        )

    def update(self, samples: int, best_cost: float) -> bool:
        return samples >= self.required_samples

    def describe(self) -> str:
        return (
            f"quantile-target (q={self.quantile:g}, "
            f"confidence={self.confidence:g}, k={self.required_samples})"
        )


def quantile_bound(samples: int, confidence: float = 0.95) -> float:
    """The quality certificate ``k`` samples buy: with probability
    ``confidence`` the best of ``k`` uniform samples lies within the best
    ``q`` fraction of the space, where ``q = 1 - (1-confidence)^(1/k)``."""
    if samples <= 0:
        return 1.0
    return 1.0 - (1.0 - confidence) ** (1.0 / samples)


def make_rule(
    name: str,
    samples: int | None = None,
    quantile: float = 1e-4,
    confidence: float = 0.95,
) -> StoppingRule:
    """Build a rule from CLI-style arguments."""
    if name == "fixed":
        if samples is None:
            raise ReproError("the fixed rule needs an explicit sample count")
        return FixedSamples(samples)
    if name == "plateau":
        return CostPlateau()
    if name == "quantile":
        return QuantileTarget(quantile=quantile, confidence=confidence)
    raise ReproError(
        f"unknown stopping rule {name!r} (expected fixed, plateau or quantile)"
    )


# re-exported alongside the rules
__all__.append("quantile_bound")
