"""Best-of-k sampled optimization with fragment recombination.

The driver loop is anytime: draw a batch of uniform (optionally
stratified) ranks, unrank and batch-cost them, update the incumbent,
consult the stopping rule, repeat until the rule fires or the wall-clock
budget runs out.  Two incumbents are tracked:

* the **best sampled plan** — plain best-of-k, the quantity the paper's
  cost-distribution experiments (and the quantile-target guarantee)
  speak about;
* the **recombined plan** — the best plan assemblable from *fragments*
  of all sampled plans.  Plan cost decomposes per node, and a node's
  local cost depends on its children only through their *group*
  cardinalities — a group property, identical for every alternative
  subtree of the same ``(group, requirement)`` context.  Sampled subtrees
  for the same context are therefore freely interchangeable, and a
  dynamic program over the pool of sampled fragments finds the exact
  optimum of the *recombined* space — effectively best-of-``k^depth``
  for the price of best-of-``k``.  (This is the memo's own dynamic
  programming argument, run over the sampled sub-memo instead of the full
  one.)

The recombined cost is monotone in the pool, never worse than the best
sampled cost, and in practice lands within a small factor of the true
optimum after a few hundred samples even on clique-sized spaces whose
memos take minutes to build.
"""

from __future__ import annotations

import gc
import random
import time
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import PlanSpaceError, ReproError
from repro.obs.trace import active_tracer, phase as obs_phase
from repro.optimizer.plan import PlanNode
from repro.planspace.implicit.space import ImplicitPlanSpace
from repro.resilience.budget import validate_budget_s, validate_samples
from repro.resilience.faults import fault_point
from repro.sampledopt.costing import SampledPlanCoster
from repro.sampledopt.stopping import (
    CostPlateau,
    StoppingRule,
    quantile_bound,
)
from repro.sampledopt.strata import StratifiedSampler
from repro.sql.binder import Binder, BoundQuery
from repro.sql.parser import parse
from repro.util.rng import make_rng

__all__ = [
    "BatchPoint",
    "FragmentPool",
    "SampledOptimizationResult",
    "SampledOptimizer",
]

#: default per-batch sample count (one stopping-rule consultation each)
DEFAULT_BATCH_SIZE = 128
#: default cap on total samples (the plateau rule usually fires earlier)
DEFAULT_MAX_SAMPLES = 384


@dataclass
class BatchPoint:
    """One point of the anytime trajectory (after one costed batch)."""

    samples: int
    elapsed_s: float
    best_sampled_cost: float
    best_cost: float  # after recombination


class FragmentPool:
    """Sampled plan fragments, pooled by ``(group, requirement)`` context.

    ``add_plan`` walks a sampled plan and its virtual operator rows in
    lockstep, recording which rows have been observed in which context;
    ``solve`` runs the dynamic program and assembles the best recombined
    plan.  Both are iterative over explicit stacks, so chain-query plans
    of any depth are safe.
    """

    def __init__(self, space: ImplicitPlanSpace, coster: SampledPlanCoster):
        self.space = space
        self.tables = space.unranker.tables
        self.coster = coster
        state = space.state
        self.root_ctx = (state.layout.root_gid, state.root_kid)
        #: ctx -> {local_id: Row}
        self.fragments: dict[tuple, dict[int, object]] = {}

    def __len__(self) -> int:
        return sum(len(rows) for rows in self.fragments.values())

    def add_plan(self, plan: PlanNode) -> None:
        tables = self.tables
        fragments = self.fragments
        stack = [(plan, self.root_ctx)]
        while stack:
            node, ctx = stack.pop()
            row = tables.table(node.group_id).row_by_local[node.local_id]
            pooled = fragments.get(ctx)
            if pooled is None:
                fragments[ctx] = pooled = {}
            pooled[node.local_id] = row
            stack.extend(zip(node.children, row.slots))

    # ------------------------------------------------------------------
    def solve(self) -> tuple[float, dict[tuple, int]]:
        """The recombination DP: cheapest assemblable cost per context.

        Returns ``(best total cost at the root, ctx -> chosen local_id)``.
        Post-order over the context DAG with an explicit stack; each
        context is solved once per call.
        """
        fragments = self.fragments
        local_cost = self.coster.rows.local_cost
        best: dict[tuple, float] = {}
        choice: dict[tuple, int] = {}
        stack: list[tuple[tuple, bool]] = [(self.root_ctx, False)]
        while stack:
            ctx, ready = stack.pop()
            if ctx in best:
                continue
            rows = fragments.get(ctx)
            if rows is None:  # pragma: no cover - pool always covers slots
                raise PlanSpaceError(f"no sampled fragment for context {ctx}")
            if not ready:
                stack.append((ctx, True))
                for row in rows.values():
                    for slot in row.slots:
                        if slot not in best:
                            stack.append((slot, False))
                continue
            best_cost = None
            best_local = None
            gid = ctx[0]
            for local_id, row in rows.items():
                cost = local_cost(gid, row)
                for slot in row.slots:
                    cost += best[slot]
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_local = local_id
            best[ctx] = best_cost
            choice[ctx] = best_local
        return best[self.root_ctx], choice

    def assemble(self, choice: dict[tuple, int]) -> PlanNode:
        """Build the recombined plan from the DP's per-context choices."""
        tables = self.tables

        def build(ctx: tuple) -> PlanNode:
            gid = ctx[0]
            row = self.fragments[ctx][choice[ctx]]
            children = tuple(build(slot) for slot in row.slots)
            return PlanNode(
                op=tables.operator(gid, row),
                children=children,
                group_id=gid,
                local_id=choice[ctx],
                cardinality=tables.cardinality(gid),
            )

        return build(self.root_ctx)


@dataclass
class SampledOptimizationResult:
    """What one sampled-optimization run produced.

    Field-compatible with the materialized
    :class:`~repro.optimizer.optimizer.OptimizationResult` where it
    matters (``best_plan``, ``best_cost``, ``query``, ``options``,
    ``timings``, ``explain()``) so ``Session`` and the executor treat
    both interchangeably — plus the sampling-quality metadata the
    materialized result has no notion of.
    """

    best_plan: PlanNode
    best_cost: float
    query: BoundQuery
    options: object
    total_plans: int
    samples: int
    batches: int
    best_sampled_cost: float
    best_sampled_rank: int
    stopped_because: str
    rule: str
    seed: int | None
    stratified: bool
    #: confidence the run's rule asked for (0.95 unless a QuantileTarget
    #: said otherwise); the default level certificates are reported at
    confidence: float = 0.95
    history: list[BatchPoint] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    #: :class:`repro.resilience.degrade.ResilienceReport` when the run
    #: was served by a budgeted ``Session.optimize``; ``None`` otherwise
    resilience: object | None = None
    #: root :class:`repro.obs.trace.Span` when the run was traced;
    #: ``None`` otherwise
    trace: object | None = None

    @property
    def elapsed_s(self) -> float:
        return sum(self.timings.values())

    def quantile_certificate(self, confidence: float | None = None) -> float | None:
        """With probability ``confidence`` (default: the run's own), the
        best *sampled* plan is in the best ``q`` fraction of the space —
        recombination only improves on it.  The bound holds for i.i.d.
        uniform draws only, so stratified runs return ``None`` (strata
        allocation constrains the draws; no such guarantee exists)."""
        if self.stratified:
            return None
        if confidence is None:
            confidence = self.confidence
        return quantile_bound(self.samples, confidence)

    def explain(self) -> str:
        lines = [
            f"best cost: {self.best_cost:,.1f} (sampled; best pure sample "
            f"{self.best_sampled_cost:,.1f} of {self.samples} from "
            f"{self.total_plans:,} plans)",
            self.best_plan.render(),
        ]
        return "\n".join(lines)

    def describe(self) -> str:
        certificate = self.quantile_certificate()
        quality = (
            f" (top {certificate:.2e} of the space at "
            f"{self.confidence:.0%} confidence)"
            if certificate is not None
            else " (stratified draw: no i.i.d. quantile certificate)"
        )
        return (
            f"sampled optimization: {self.samples} samples in "
            f"{self.batches} batches ({self.rule}; stopped: "
            f"{self.stopped_because}); best sampled "
            f"{self.best_sampled_cost:,.1f}{quality}, "
            f"recombined {self.best_cost:,.1f}; {self.elapsed_s:.2f}s"
        )


class SampledOptimizer:
    """Memo-free anytime optimizer: uniform sampling + recombination."""

    def __init__(self, catalog: Catalog, options=None):
        from repro.optimizer.optimizer import OptimizerOptions

        self.catalog = catalog
        self.options = options if options is not None else OptimizerOptions()

    # ------------------------------------------------------------------
    def optimize_sql(self, sql: str, **kwargs) -> SampledOptimizationResult:
        with obs_phase("parse"):
            statement = parse(sql)
        with obs_phase("bind"):
            bound = Binder(self.catalog).bind(statement)
        return self.optimize(bound, **kwargs)

    def optimize(
        self,
        query: BoundQuery,
        samples: int | None = None,
        budget_s: float | None = None,
        rule: StoppingRule | None = None,
        seed: int | random.Random = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        stratified: bool | None = None,
        space: ImplicitPlanSpace | None = None,
        scope=None,
    ) -> SampledOptimizationResult:
        """See :meth:`_optimize`; the cycle collector is paused for the
        duration (as in ``Optimizer.optimize``): sampling allocates many
        short-lived tuples and acyclic ``PlanNode`` trees, and on a large
        heap — e.g. a memo from an earlier exhaustive run — generational
        passes only add pauses."""
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._optimize(
                query,
                samples=samples,
                budget_s=budget_s,
                rule=rule,
                seed=seed,
                batch_size=batch_size,
                stratified=stratified,
                space=space,
                scope=scope,
            )
        finally:
            if gc_was_enabled:
                gc.enable()

    def _optimize(
        self,
        query: BoundQuery,
        samples: int | None = None,
        budget_s: float | None = None,
        rule: StoppingRule | None = None,
        seed: int | random.Random = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        stratified: bool | None = None,
        space: ImplicitPlanSpace | None = None,
        scope=None,
    ) -> SampledOptimizationResult:
        """Sampled-optimize a bound query.

        ``samples`` caps the total draw (and is the fixed-k budget when
        no ``rule`` is given); ``budget_s`` is a wall-clock budget over
        the whole call including the implicit-space build; ``rule``
        decides when sampling stops paying (default: cost plateau).
        ``stratified`` draws each batch proportionally across plan-shape
        strata instead of globally uniformly — lower variance, guaranteed
        structural coverage, and faster unranking (plans of a stratum
        share group tables).  It defaults to on, *except* under a
        :class:`QuantileTarget` rule, whose top-``q`` guarantee holds for
        i.i.d. uniform draws only (asking for both explicitly is an
        error).  A pre-built ``space`` skips the build (for callers that
        already counted).
        """
        from repro.sampledopt.stopping import FixedSamples, QuantileTarget

        validate_samples(samples)
        validate_budget_s(budget_s)
        validate_samples(batch_size, name="batch_size")
        start = time.perf_counter()
        timings: dict[str, float] = {}
        with obs_phase("space") as span:
            if space is None:
                space = ImplicitPlanSpace.from_query(
                    self.catalog, query, options=self.options, scope=scope
                )
        timings["space"] = span.elapsed_s

        if rule is None:
            rule = (
                FixedSamples(samples)
                if samples is not None
                else CostPlateau()
            )
        needs_uniform = isinstance(rule, QuantileTarget)
        if stratified is None:
            stratified = not needs_uniform
        elif stratified and needs_uniform:
            raise ReproError(
                "the quantile-target rule's guarantee holds for i.i.d. "
                "uniform samples only; drop stratified=True (or use a "
                "fixed-k/plateau rule)"
            )
        if samples is not None:
            max_samples = samples
        else:
            # rules that imply a sample size (fixed-k, quantile-target)
            # override the default cap
            max_samples = getattr(rule, "required_samples", DEFAULT_MAX_SAMPLES)
        rule.start(space.count())

        coster = SampledPlanCoster(
            self.catalog, space, self.options.cost_params
        )
        pool = FragmentPool(space, coster)
        if stratified:
            sampler = StratifiedSampler(space, seed=seed)
            draw = sampler.sample_ranks
        else:
            plain = space.sampler(seed=seed)
            draw = plain.sample_ranks

        best_sampled_cost = float("inf")
        best_sampled_rank = -1
        best_cost = float("inf")
        history: list[BatchPoint] = []
        drawn = 0
        batches = 0
        sample_time = 0.0
        solve_time = 0.0
        deadline = None if budget_s is None else start + budget_s
        choice: dict[tuple, int] = {}
        total = space.count()
        while drawn < max_samples:
            batch = min(batch_size, max_samples - drawn)
            fault_point("sampled.batch", pool)
            if scope is not None:
                scope.checkpoint("sampled.batch", batch)
            tick = time.perf_counter()
            ranks = draw(batch)
            plans, costs = coster.cost_ranks(ranks)
            for rank, plan, cost in zip(ranks, plans, costs):
                pool.add_plan(plan)
                if cost < best_sampled_cost:
                    best_sampled_cost = cost
                    best_sampled_rank = rank
            drawn += len(ranks)
            batches += 1
            sample_time += time.perf_counter() - tick

            tick = time.perf_counter()
            best_cost, choice = pool.solve()
            solve_time += time.perf_counter() - tick
            history.append(
                BatchPoint(
                    samples=drawn,
                    elapsed_s=time.perf_counter() - start,
                    best_sampled_cost=best_sampled_cost,
                    best_cost=best_cost,
                )
            )
            if rule.update(drawn, best_cost):
                stopped = "rule"
                break
            if deadline is not None and time.perf_counter() >= deadline:
                stopped = "budget"
                break
        else:
            stopped = "samples"
        timings["sample"] = sample_time
        timings["recombine"] = solve_time
        tracer = active_tracer()
        if tracer is not None:
            # The sample/recombine phases interleave per batch, so their
            # spans attach post-hoc from the accumulated wall times — the
            # same numbers the timings dict reports.
            tracer.record(
                "sample",
                sample_time,
                counters={"samples": drawn, "batches": batches},
            )
            tracer.record(
                "recombine", solve_time, counters={"fragments": len(pool)}
            )

        with obs_phase("assemble") as span:
            best_plan = pool.assemble(choice)
        timings["assemble"] = span.elapsed_s

        return SampledOptimizationResult(
            best_plan=best_plan,
            best_cost=best_cost,
            query=query,
            options=self.options,
            total_plans=total,
            samples=drawn,
            batches=batches,
            best_sampled_cost=best_sampled_cost,
            best_sampled_rank=best_sampled_rank,
            stopped_because=stopped,
            rule=rule.describe(),
            seed=seed if isinstance(seed, int) else None,
            stratified=stratified,
            confidence=getattr(rule, "confidence", 0.95),
            history=history,
            timings=timings,
        )
