"""Sampling-driven optimization: the implicit engine as a serving path.

The paper's machinery (count, unrank, uniform sample) was built to
*study* plan spaces; this package turns it into an optimizer that never
materializes the physical memo:

* :mod:`.costing` — batch plan costing straight off the implicit engine
  (``CostModel.plan_costs`` over sampled ``PlanNode``\\ s, lazily cached
  group cardinalities) plus per-fragment local costs;
* :mod:`.search` — the best-of-k anytime optimizer: sample, batch-cost,
  recombine fragments with a dynamic program (exact over the sampled
  sub-memo), consult a stopping rule, repeat;
* :mod:`.stopping` — fixed-k, cost-plateau and PAO-style quantile-target
  stopping rules;
* :mod:`.strata` — plan-shape strata (contiguous rank intervals keyed by
  operator prefixes) and proportionally allocated stratified sampling;
* :mod:`.analytics` — memo-free cost-distribution reports (quantiles,
  scaled-to-best factors, ``fraction_within`` curves) at clique12-sized
  spaces.

Front doors: ``Session.optimize(sql, method="sampled", ...)``,
``repro optimize --sampled`` and ``repro distribution``.  See
``README.md`` in this directory for the recombination argument and the
RNG contract.
"""

from repro.sampledopt.analytics import (
    distribution_report,
    sampled_distribution,
)
from repro.sampledopt.costing import RowCoster, SampledPlanCoster
from repro.sampledopt.search import (
    BatchPoint,
    FragmentPool,
    SampledOptimizationResult,
    SampledOptimizer,
)
from repro.sampledopt.stopping import (
    CostPlateau,
    FixedSamples,
    QuantileTarget,
    StoppingRule,
    make_rule,
    quantile_bound,
)
from repro.sampledopt.strata import StratifiedSampler, Stratum, rank_strata

__all__ = [
    "BatchPoint",
    "CostPlateau",
    "FixedSamples",
    "FragmentPool",
    "QuantileTarget",
    "RowCoster",
    "SampledOptimizationResult",
    "SampledOptimizer",
    "SampledPlanCoster",
    "StoppingRule",
    "StratifiedSampler",
    "Stratum",
    "distribution_report",
    "make_rule",
    "quantile_bound",
    "rank_strata",
    "sampled_distribution",
]
