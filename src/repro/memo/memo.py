"""The memo: group lookup, expression insertion, duplicate elimination.

Following the paper, the memo "manages a system of groups" and "includes
routines that analyze the results of a rule application and assign it to
the groups, detect and eliminate duplicates, and create new groups".
Groups are identified by a canonical *logical key*: for scan/join-level
groups that key is the set of range variables covered (the Starburst
convention, equally valid for a transformation-based optimizer after full
exploration); for unary roots (aggregate/project/select) it is derived
from the operator fingerprint and child group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.logical import LogicalOperator
from repro.algebra.physical import PhysicalOperator
from repro.errors import MemoError
from repro.memo.group import Group, GroupExpr

__all__ = ["Memo"]


@dataclass
class Memo:
    """A compact encoding of the plan search space."""

    groups: list[Group] = field(default_factory=list)
    root_group_id: int | None = None
    _groups_by_key: dict[tuple, int] = field(default_factory=dict, repr=False)
    _expr_fingerprints: dict[tuple, tuple[int, int]] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    # groups
    # ------------------------------------------------------------------
    def group(self, gid: int) -> Group:
        try:
            return self.groups[gid]
        except IndexError:
            raise MemoError(f"no group {gid}") from None

    def root_group(self) -> Group:
        if self.root_group_id is None:
            raise MemoError("memo has no root group")
        return self.group(self.root_group_id)

    def set_root(self, gid: int) -> None:
        self.group(gid)  # validate
        self.root_group_id = gid

    def find_group(self, key: tuple) -> Group | None:
        gid = self._groups_by_key.get(key)
        return None if gid is None else self.groups[gid]

    def get_or_create_group(self, key: tuple, relations: frozenset[str]) -> Group:
        gid = self._groups_by_key.get(key)
        if gid is not None:
            group = self.groups[gid]
            if group.relations != relations:
                raise MemoError(
                    f"group key {key!r} reused with different relation set "
                    f"({sorted(group.relations)} vs {sorted(relations)})"
                )
            return group
        group = Group(gid=len(self.groups), key=key, relations=relations)
        self.groups.append(group)
        self._groups_by_key[key] = group.gid
        return group

    def group_for_relations(self, relations: frozenset[str]) -> Group | None:
        return self.find_group(("rels", relations))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def insert(
        self,
        op: LogicalOperator | PhysicalOperator,
        children: tuple[int, ...],
        group: Group,
    ) -> GroupExpr | None:
        """Insert ``op(children)`` into ``group``.

        Returns the new :class:`GroupExpr`, or ``None`` if an identical
        expression already exists anywhere in the memo (duplicate
        elimination).  Children must be existing groups.
        """
        for child in children:
            if not 0 <= child < len(self.groups):
                raise MemoError(f"child group {child} does not exist")
        fingerprint = (op.key(), children)
        existing = self._expr_fingerprints.get(fingerprint)
        if existing is not None:
            owner_gid, _ = existing
            if owner_gid != group.gid:
                raise MemoError(
                    f"expression {op.render()} already belongs to group {owner_gid}, "
                    f"cannot also insert into group {group.gid}"
                )
            return None
        expr = GroupExpr(
            op=op,
            children=children,
            group_id=group.gid,
            local_id=len(group.exprs) + 1,
        )
        group.exprs.append(expr)
        self._expr_fingerprints[fingerprint] = (group.gid, expr.local_id)
        return expr

    def expr(self, gid: int, local_id: int) -> GroupExpr:
        return self.group(gid).expr(local_id)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def expression_count(self) -> int:
        return sum(len(g.exprs) for g in self.groups)

    def logical_expression_count(self) -> int:
        return sum(len(g.logical_exprs()) for g in self.groups)

    def physical_expression_count(self) -> int:
        return sum(len(g.physical_exprs()) for g in self.groups)

    def render(self) -> str:
        """ASCII dump in the spirit of the paper's Figure 2."""
        lines = []
        for group in self.groups:
            marker = "  (root)" if group.gid == self.root_group_id else ""
            lines.append(group.render() + marker)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
