"""The memo: group lookup, expression insertion, duplicate elimination.

Following the paper, the memo "manages a system of groups" and "includes
routines that analyze the results of a rule application and assign it to
the groups, detect and eliminate duplicates, and create new groups".
Groups are identified by a canonical *logical key*: for scan/join-level
groups that key is the set of range variables covered (the Starburst
convention, equally valid for a transformation-based optimizer after full
exploration); for unary roots (aggregate/project/select) it is derived
from the operator fingerprint and child group.

When the memo is built by the optimizer it carries an
:class:`~repro.optimizer.bitset.AliasUniverse` and relation-set groups are
keyed ``("rels", mask)`` — an interned integer bitmask — rather than by
``frozenset[str]``.  ``Group.relations`` remains the derived frozenset
view, so every consumer of group identity below the key level
(implementation, best-plan search, the plan-space toolkit) is unaffected.
Hand-assembled memos without a universe keep the legacy frozenset keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field

from repro.algebra.logical import LogicalOperator
from repro.algebra.physical import PhysicalOperator
from repro.errors import MemoError
from repro.memo.group import Group, GroupExpr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.optimizer.bitset import AliasUniverse

__all__ = ["Memo"]


@dataclass
class Memo:
    """A compact encoding of the plan search space."""

    #: struct-of-arrays physical store when the memo was implemented by
    #: the columnar path (see :mod:`repro.memo.columnar`); plain class
    #: attribute default so object-path memos carry no extra field
    columnar = None
    #: struct-of-arrays *logical* store when exploration was batched
    #: (:func:`repro.memo.columnar.build_logical_store`); same class
    #: attribute convention.  Logical rows stay accurate for the memo's
    #: lifetime — nothing removes logical expressions, pruning included.
    columnar_logical = None

    groups: list[Group] = field(default_factory=list)
    root_group_id: int | None = None
    #: alias interner for mask-keyed relation groups (None for memos
    #: assembled by hand with frozenset keys)
    universe: "AliasUniverse | None" = None
    _groups_by_key: dict[tuple, int] = field(default_factory=dict, repr=False)
    #: mask -> gid shortcut for relation-set groups (avoids building a
    #: ("rels", mask) tuple per lookup on the exploration hot path)
    _rels_gid_by_mask: dict[int, int] = field(default_factory=dict, repr=False)
    _expr_fingerprints: dict[tuple, tuple[int, int]] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    # groups
    # ------------------------------------------------------------------
    def group(self, gid: int) -> Group:
        try:
            return self.groups[gid]
        except IndexError:
            raise MemoError(f"no group {gid}") from None

    def root_group(self) -> Group:
        if self.root_group_id is None:
            raise MemoError("memo has no root group")
        return self.group(self.root_group_id)

    def set_root(self, gid: int) -> None:
        self.group(gid)  # validate
        self.root_group_id = gid

    def find_group(self, key: tuple) -> Group | None:
        gid = self._groups_by_key.get(key)
        return None if gid is None else self.groups[gid]

    def get_or_create_group(
        self, key: tuple, relations: frozenset[str], mask: int | None = None
    ) -> Group:
        gid = self._groups_by_key.get(key)
        if gid is not None:
            group = self.groups[gid]
            if group.relations != relations:
                raise MemoError(
                    f"group key {key!r} reused with different relation set "
                    f"({sorted(group.relations)} vs {sorted(relations)})"
                )
            return group
        group = Group(gid=len(self.groups), key=key, relations=relations, mask=mask)
        self.groups.append(group)
        self._groups_by_key[key] = group.gid
        if mask is not None and key[0] == "rels":
            self._rels_gid_by_mask[mask] = group.gid
        return group

    def get_or_create_rels_group(self, mask: int) -> Group:
        """The ``("rels", mask)`` group, created with its derived relation
        view if missing.  Requires the memo's alias universe."""
        gid = self._rels_gid_by_mask.get(mask)
        if gid is not None:
            return self.groups[gid]
        if self.universe is None:
            raise MemoError("memo has no alias universe for mask-keyed groups")
        group = Group(
            gid=len(self.groups),
            key=("rels", mask),
            relations=self.universe.names(mask),
            mask=mask,
        )
        self.groups.append(group)
        self._groups_by_key[group.key] = group.gid
        self._rels_gid_by_mask[mask] = group.gid
        return group

    def group_for_mask(self, mask: int) -> Group | None:
        """The relation-set group for an alias bitmask, if present."""
        gid = self._rels_gid_by_mask.get(mask)
        return None if gid is None else self.groups[gid]

    def group_for_relations(self, relations: frozenset[str]) -> Group | None:
        if self.universe is not None:
            group = self.group_for_mask(self.universe.mask_of(relations))
            if group is not None:
                return group
            # Fall through: a caller may have used the legacy frozenset
            # key via the generic get_or_create_group.
        return self.find_group(("rels", relations))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def insert(
        self,
        op: LogicalOperator | PhysicalOperator,
        children: tuple[int, ...],
        group: Group,
    ) -> GroupExpr | None:
        """Insert ``op(children)`` into ``group``.

        Returns the new :class:`GroupExpr`, or ``None`` if an identical
        expression already exists anywhere in the memo (duplicate
        elimination).  Children must be existing groups.
        """
        group_count = len(self.groups)
        for child in children:
            if not 0 <= child < group_count:
                raise MemoError(f"child group {child} does not exist")
        gid = group.gid
        exprs = group.exprs
        entry = (gid, len(exprs) + 1)
        # One hash probe covers both duplicate detection and registration:
        # setdefault returns our own entry exactly when the slot was empty.
        fingerprint = (op.key(), children)
        prior = self._expr_fingerprints.setdefault(fingerprint, entry)
        if prior is not entry:
            if prior[0] != gid:
                raise MemoError(
                    f"expression {op.render()} already belongs to group {prior[0]}, "
                    f"cannot also insert into group {gid}"
                )
            return None
        try:
            expr = GroupExpr(op, children, gid, entry[1])
        except MemoError:
            del self._expr_fingerprints[fingerprint]
            raise
        exprs.append(expr)
        return expr

    def expr(self, gid: int, local_id: int) -> GroupExpr:
        return self.group(gid).expr(local_id)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def expression_count(self) -> int:
        """Total expression count.  Never materializes lazy (columnar)
        physical blocks — the per-group row counts answer it directly."""
        return sum(g.expr_count() for g in self.groups)

    def logical_expression_count(self) -> int:
        return sum(g.logical_expr_count() for g in self.groups)

    def physical_expression_count(self) -> int:
        return sum(g.physical_expr_count() for g in self.groups)

    def render(self) -> str:
        """ASCII dump in the spirit of the paper's Figure 2."""
        lines = []
        for group in self.groups:
            marker = "  (root)" if group.gid == self.root_group_id else ""
            lines.append(group.render() + marker)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
