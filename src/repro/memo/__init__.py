"""The MEMO structure (system S6).

A memo is a system of *groups*; each group holds logical and physical
*group expressions* whose children are references to other groups
(Section 2 of the paper, Figures 1 and 2).  A group stands for one
sub-goal of the query, and the memo as a whole is a compact encoding of
every candidate plan the optimizer considered — the structure the paper's
counting/unranking algorithms operate on.
"""

from repro.memo.group import Group, GroupExpr
from repro.memo.memo import Memo

__all__ = ["Group", "GroupExpr", "Memo"]
