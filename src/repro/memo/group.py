"""Groups and group expressions."""

from __future__ import annotations

from repro.algebra.logical import LogicalOperator
from repro.algebra.physical import PhysicalOperator
from repro.errors import MemoError

__all__ = ["GroupExpr", "Group"]


class GroupExpr:
    """One operator inside a group, with child *group* references.

    Mirrors the paper's rounded boxes: a unique identifier ``group.local``
    (e.g. ``7.7``) in the lower-left corner and the ordered child group
    numbers in the lower-right.  A hand-written slotted class rather than a
    dataclass: memos hold one instance per expression in the search space,
    easily 10^5 of them, and construction sits on the memo-insert hot path.
    ``is_physical``/``is_enforcer`` are plain attributes computed once —
    they are read in the hot loops of implementation, enforcer placement,
    and best-plan search.
    """

    __slots__ = ("op", "children", "group_id", "local_id", "is_physical", "is_enforcer")

    def __init__(
        self,
        op: LogicalOperator | PhysicalOperator,
        children: tuple[int, ...],
        group_id: int,
        local_id: int,
    ):
        if len(children) != op.arity:
            raise MemoError(
                f"operator {op.name} has arity {op.arity} "
                f"but {len(children)} children were supplied"
            )
        self.op = op
        self.children = children
        self.group_id = group_id
        self.local_id = local_id
        is_physical = isinstance(op, PhysicalOperator)
        self.is_physical = is_physical
        self.is_enforcer = is_physical and op.is_enforcer

    @property
    def id_str(self) -> str:
        """The paper's ``<group>.<operator>`` identifier, e.g. ``7.7``."""
        return f"{self.group_id}.{self.local_id}"

    def fingerprint(self) -> tuple:
        return (self.op.key(), self.children)

    def render(self) -> str:
        kids = ",".join(str(c) for c in self.children)
        suffix = f" [{kids}]" if kids else ""
        return f"{self.id_str}: {self.op.render()}{suffix}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class Group:
    """A set of equivalent expressions: one sub-goal of the query.

    ``key`` is the canonical logical identity of the group (for join-level
    groups: the set of range variables covered), which is how the memo
    detects that two transformation paths arrived at the same sub-goal.
    ``relations`` is the alias set covered by the group — the unit the
    no-cross-products rule and cardinality estimation reason over.

    ``exprs`` may be *partially lazy*: on the columnar optimization path
    (:mod:`repro.memo.columnar`) the explored logical joins and the
    physical expressions live in struct-of-arrays stores and are rebuilt
    as :class:`GroupExpr` objects only when a consumer first touches
    ``exprs``/``physical_exprs()`` (or, for the logical block alone,
    :meth:`logical_exprs`).  The ``_pending`` hook carries that rebuild:
    an object exposing ``__call__(group)`` (materialize everything, in
    logical-then-physical order), ``logical_count()``/``physical_count()``
    (non-materializing row counts), and ``materialize_logical(group)``
    (rebuild only the logical block, clearing ``_pending`` when nothing
    physical remains).  While a pending hook is installed, ``_exprs``
    holds only already-materialized *logical* expressions — physical
    expressions are never objects before the hook fires.
    """

    __slots__ = ("gid", "key", "relations", "mask", "cardinality", "_exprs", "_pending")

    def __init__(
        self,
        gid: int,
        key: tuple,
        relations: frozenset[str],
        mask: int | None = None,
        exprs: list[GroupExpr] | None = None,
        cardinality: float | None = None,
    ):
        self.gid = gid
        self.key = key
        self.relations = relations
        #: bitmask form of ``relations`` under the memo's alias universe;
        #: ``None`` for memos built without one (hand-assembled examples)
        self.mask = mask
        self._exprs = exprs if exprs is not None else []
        #: estimated output rows; filled in by the cardinality module
        self.cardinality = cardinality
        #: deferred physical materialization (columnar memos only)
        self._pending = None

    # ------------------------------------------------------------------
    @property
    def exprs(self) -> list[GroupExpr]:
        """All expressions, materializing any pending physical block."""
        pending = self._pending
        if pending is not None:
            self._pending = None
            pending(self)
        return self._exprs

    def expr_count(self) -> int:
        """Number of expressions, *without* materializing pending ones."""
        count = len(self._exprs)
        pending = self._pending
        if pending is not None:
            count += pending.logical_count() + pending.physical_count()
        return count

    def logical_expr_count(self) -> int:
        pending = self._pending
        if pending is not None:
            # While pending, ``_exprs`` holds only logical expressions.
            return len(self._exprs) + pending.logical_count()
        return sum(1 for e in self._exprs if not e.is_physical)

    def physical_expr_count(self) -> int:
        if self._pending is not None:
            return self._pending.physical_count()
        return sum(1 for e in self._exprs if e.is_physical)

    # ------------------------------------------------------------------
    def logical_exprs(self) -> list[GroupExpr]:
        """Logical expressions only — materializes a pending *logical*
        block, but never the physical one."""
        pending = self._pending
        if pending is not None:
            pending.materialize_logical(self)
        return [e for e in self._exprs if not e.is_physical]

    def physical_exprs(self) -> list[GroupExpr]:
        return [e for e in self.exprs if e.is_physical]

    def expr(self, local_id: int) -> GroupExpr:
        for expr in self.exprs:
            if expr.local_id == local_id:
                return expr
        raise MemoError(f"group {self.gid} has no expression {local_id}")

    def render(self) -> str:
        lines = [f"Group {self.gid}  rels={{{', '.join(sorted(self.relations))}}}"]
        lines.extend(f"  {expr.render()}" for expr in self.exprs)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Group(gid={self.gid}, key={self.key!r}, "
            f"exprs={self.expr_count()}, cardinality={self.cardinality})"
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
