"""Struct-of-arrays physical memo: the columnar optimization core.

The object memo stores one slotted :class:`~repro.memo.group.GroupExpr`
per physical alternative — for a 12-relation clique that is ~2.9 million
Python objects, and constructing them (operator dataclasses, fingerprint
tuples, duplicate-detection dict probes) dominates exact optimization.
This module stores the physical side of the memo as parallel integer
arrays instead:

====== ===================================================================
column meaning
====== ===================================================================
tag    operator kind (``TAG_*`` op-code)
gid    owning group id
c0/c1  child group ids (-1 when unused; note an index-lookup join has
       arity 1: ``c0`` is the outer input, ``a`` keeps the inner gid)
a/b    per-tag payload: interned sort-order ids (*kids*) for merge keys
       and delivered orders, or the ordinal into the group's generated
       operator list (scans, unary operators, index-lookup joins)
====== ===================================================================

Rows are emitted in exactly the order :func:`~repro.optimizer.
implementation.implement_memo` would have inserted expressions — group by
group, logical expression by logical expression, rule order within — so
``local_id`` arithmetic is positional: row ``r`` of group ``g`` has local
id ``logical_count(g) + (r - start(g)) + 1``.  ``Sort`` enforcers are not
rows; they are per-group kid lists in global requirement
first-occurrence order, with the local ids that follow the group's block.

Key identity is *bitmask* work, reused from the implicit engine
(:mod:`repro.planspace.implicit.edges`): the equi-key sequences of a join
``(left, right)`` are the oriented equality edges crossing the cut,
``FROM[left] & TO[right]``, decoded once per distinct cut and interned to
integer *kids*.  No predicate is walked and no key tuple is sorted per
expression.

The memo also has a *logical* columnar side
(:class:`ColumnarLogicalStore`, built by batched exploration): for every
relation-mask group of two or more aliases, the valid unordered csg–cmp
splits are two parallel child-gid columns (``sl``/``sr``, bucket order,
blocks contiguous per group in enumeration-universe order) plus the
group's initial left-deep orientation when the setup pass seeded one.
Both orientations of every split — minus the initial duplicate, exactly
what the object explorer's per-expression ``memo.insert`` loop would
have kept — are derived positionally, so a 12-relation clique's ~1M
logical joins are two ``array('i')`` buffers instead of a million
``GroupExpr``/``LogicalJoin`` constructions and fingerprint probes.

The object ``Memo``/``GroupExpr`` API stays the facade: every group gets
a ``_pending`` hook that rebuilds its :class:`GroupExpr` list on first
access (same operators, same order, same local ids — the shared rule
module guarantees identity, and the columnar property suite asserts it),
so the plan-space toolkit, pruning, and explain work unchanged.  The
hook materializes in logical-then-physical order, and
``Group.logical_exprs()`` fires only the logical half.  Counting
(`expression_count` and friends) answers from the arrays without
materializing anything.

Works with or without numpy: columns are ``array.array`` buffers; the
layered best-plan DP (:mod:`repro.optimizer.bestplan`) views them as
numpy arrays when available and falls back to pure-Python loops when not,
mirroring :mod:`repro.planspace.implicit.turbo` / ``counting``.
"""

from __future__ import annotations

from array import array

from repro.algebra.logical import LogicalGet, LogicalJoin
from repro.algebra.physical import Sort
from repro.errors import MemoError
from repro.memo.group import Group, GroupExpr
from repro.resilience.faults import fault_point
from repro.optimizer.rules import (
    ImplementationConfig,
    index_nl_join_implementations,
    join_implementations,
    join_physical_kinds,
    scan_implementations,
    unary_implementations,
)

__all__ = [
    "ColumnarLogicalStore",
    "ColumnarPhysicalStore",
    "ColumnarUnsupported",
    "build_columnar_store",
    "build_logical_store",
]

# Physical row op-codes.  Joins use the contiguous NLJ/HASH/MERGE band so
# the DP can mask them in one comparison.
TAG_TABLE_SCAN = 0
TAG_INDEX_SCAN = 1
TAG_NLJ = 2
TAG_HASH = 3
TAG_MERGE = 4
TAG_INLJ = 5
TAG_FILTER = 6
TAG_HASHAGG = 7
TAG_STREAMAGG = 8
TAG_PROJECT = 9

_JOIN_KIND_TAGS = {"nlj": TAG_NLJ, "hash": TAG_HASH, "merge": TAG_MERGE}

#: unary-operator tags in :func:`unary_implementations` class order
_UNARY_TAGS = {
    "PhysicalFilter": TAG_FILTER,
    "HashAggregate": TAG_HASHAGG,
    "StreamAggregate": TAG_STREAMAGG,
    "PhysicalProject": TAG_PROJECT,
}


class ColumnarUnsupported(Exception):
    """This memo/configuration cannot take the columnar path (caller
    falls back to the object implementation)."""


class _PendingExprs:
    """``Group._pending`` hook: materialize a group's deferred blocks.

    Carries up to two array stores — the logical join block (batched
    exploration) and the physical operator block (batched
    implementation).  Materialization is always logical-then-physical, so
    ``local_id`` arithmetic stays positional whichever half fires first.
    """

    __slots__ = ("gid", "logical", "physical")

    def __init__(
        self,
        gid: int,
        logical: "ColumnarLogicalStore | None" = None,
        physical: "ColumnarPhysicalStore | None" = None,
    ):
        self.gid = gid
        self.logical = logical
        self.physical = physical

    def __call__(self, group: Group) -> None:
        if self.logical is not None:
            self.logical.materialize_group(group)
            self.logical = None
        if self.physical is not None:
            self.physical.materialize_group(group)

    def logical_count(self) -> int:
        if self.logical is None:
            return 0
        return self.logical.pending_count(self.gid)

    def physical_count(self) -> int:
        if self.physical is None:
            return 0
        return self.physical.group_physical_count(self.gid)

    def materialize_logical(self, group: Group) -> None:
        """Rebuild only the logical block; keep the physical one lazy."""
        if self.logical is not None:
            self.logical.materialize_group(group)
            self.logical = None
            if self.physical is None:
                group._pending = None


class ColumnarLogicalStore:
    """Array-backed explored logical joins of one memo.

    Rows are the *unordered* valid splits of every relation-mask group —
    left side holding the subset's name-smallest alias, historical bucket
    order — as parallel child-gid columns.  Ordered orientations (what
    ``Group.exprs`` holds) are derived positionally: the group's initial
    left-deep expression first (it was inserted by setup and survives as
    the object prefix), then both orientations of each split minus that
    duplicate — byte-identical to the object explorer's insert stream.
    """

    def __init__(self, memo, graph, allow_cross_products: bool):
        self.memo = memo
        self.graph = graph
        self.allow_cross_products = allow_cross_products
        #: set by the builder once every block is emitted; an interrupted
        #: build leaves it False and the store can never attach
        self.complete = False
        #: unordered split child gids (left = name-smallest side)
        self.sl = array("i")
        self.sr = array("i")
        #: gid -> [start, end) split-row range, in emission order
        self._range_by_gid: dict[int, tuple[int, int]] = {}
        #: gid -> ordered (left_gid, right_gid) of the setup-seeded join
        self.initial_by_gid: dict[int, tuple[int, int]] = {}
        #: the enumeration universe the blocks were emitted over
        self.subset_masks: list[int] = []

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self.sl)

    def split_rows(self, gid: int) -> tuple[int, int] | None:
        """The group's split-row range, or ``None`` for non-join groups."""
        return self._range_by_gid.get(gid)

    def split_count(self, gid: int) -> int:
        rng = self._range_by_gid.get(gid)
        return 0 if rng is None else rng[1] - rng[0]

    def logical_join_count(self, gid: int) -> int:
        """Total logical expressions of the group (both orientations of
        every split; the initial expression is one of them)."""
        return 2 * self.split_count(gid)

    def pending_count(self, gid: int) -> int:
        """Rows the batched explorer added beyond the object prefix."""
        count = self.logical_join_count(gid)
        if count and gid in self.initial_by_gid:
            count -= 1
        return count

    def expression_total(self) -> int:
        """Logical joins the batched build contributed (the number the
        object explorer's insert loop would have reported)."""
        return 2 * self.row_count - len(self.initial_by_gid)

    # ------------------------------------------------------------------
    def explored_pairs(self, gid: int):
        """Ordered ``(left_gid, right_gid)`` orientations beyond the
        object prefix, in local-id order."""
        rng = self._range_by_gid.get(gid)
        if rng is None:
            return
        init = self.initial_by_gid.get(gid)
        sl, sr = self.sl, self.sr
        for row in range(rng[0], rng[1]):
            left, right = sl[row], sr[row]
            if (left, right) != init:
                yield (left, right)
            if (right, left) != init:
                yield (right, left)

    def ordered_pairs(self, gid: int):
        """All ordered orientations in local-id order: the initial
        left-deep expression first, then :meth:`explored_pairs`."""
        init = self.initial_by_gid.get(gid)
        if init is not None:
            yield init
        yield from self.explored_pairs(gid)

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install the pending-materialization hooks and register the
        store on the memo."""
        if not self.complete:
            raise MemoError(
                "refusing to attach an incomplete columnar logical store "
                "(the build was interrupted)"
            )
        memo = self.memo
        memo.columnar_logical = self
        groups = memo.groups
        for gid in self._range_by_gid:
            if self.pending_count(gid):
                groups[gid]._pending = _PendingExprs(gid, logical=self)

    def materialize_group(self, group: Group) -> None:
        """Append the group's explored logical joins — identical
        operators (interned per mask cut), order and local ids as the
        object explorer would have inserted.  Fingerprints are registered
        with the memo, so later ``memo.insert`` calls (a re-exploration,
        a transformation pass) deduplicate against rebuilt expressions
        exactly as they would against inserted ones."""
        exprs = group._exprs
        gid = group.gid
        local = len(exprs) + 1
        groups = self.memo.groups
        join_op = self.graph.join_operator_m
        fingerprints = self.memo._expr_fingerprints
        append = exprs.append
        for left, right in self.explored_pairs(gid):
            op = join_op(groups[left].mask, groups[right].mask)
            children = (left, right)
            append(GroupExpr(op, children, gid, local))
            fingerprints[(op.key(), children)] = (gid, local)
            local += 1


def build_logical_store(
    memo, graph, allow_cross_products: bool, scope=None
) -> ColumnarLogicalStore:
    """Batched exploration: emit whole per-subset csg–cmp buckets into a
    :class:`ColumnarLogicalStore`.

    Walks the enumeration universe in the object explorer's order,
    creating (or finding) each subset's group and appending its bucket as
    one block of child-gid columns — no per-expression ``memo.insert``,
    no ``GroupExpr``/fingerprint work.  Raises
    :class:`ColumnarUnsupported` (memo untouched beyond group creation)
    when the memo is not a freshly seeded one — a group already holding
    anything but its single setup-inserted left-deep join — so the caller
    can fall back to object exploration.
    """
    if memo.universe is None:
        raise ColumnarUnsupported("memo has no alias universe")
    store = ColumnarLogicalStore(memo, graph, allow_cross_products)
    subsets, buckets = graph.enumeration_universe(allow_cross_products)
    store.subset_masks = subsets

    get_group = memo.get_or_create_rels_group
    gid_of = memo._rels_gid_by_mask
    sl, sr = store.sl, store.sr
    range_by_gid = store._range_by_gid
    initial_by_gid = store.initial_by_gid
    block_l: list[int] = []
    block_r: list[int] = []
    checkpoint = scope.checkpoint if scope is not None else None
    for subset in subsets:
        if not subset & (subset - 1):
            continue
        fault_point("explore.batch", store)
        if checkpoint is not None:
            checkpoint("explore.batch", 2 * len(block_l))
        group = get_group(subset)
        gid = group.gid
        prefix = group._exprs
        init = None
        if prefix or group._pending is not None:
            if (
                group._pending is not None
                or len(prefix) > 1
                or type(prefix[0].op) is not LogicalJoin
            ):
                raise ColumnarUnsupported(
                    "batched exploration requires a freshly seeded memo"
                )
            init = prefix[0].children
            initial_by_gid[gid] = init
        if buckets is None:
            splits = graph.cross_splits_m(subset)
        else:
            splits = buckets.get(subset, ())
        block_l.clear()
        block_r.clear()
        init_seen = init is None
        for left, right in splits:
            left_gid = gid_of[left]
            right_gid = gid_of[right]
            block_l.append(left_gid)
            block_r.append(right_gid)
            if not init_seen and init in (
                (left_gid, right_gid),
                (right_gid, left_gid),
            ):
                init_seen = True
        if not init_seen:
            raise ColumnarUnsupported(
                f"initial join of group {gid} missing from its splits"
            )
        start = len(sl)
        sl.extend(block_l)
        sr.extend(block_r)
        range_by_gid[gid] = (start, len(sl))
    store.complete = True
    return store


class ColumnarPhysicalStore:
    """Array-backed physical expressions of one memo."""

    def __init__(self, memo, graph, catalog, config: ImplementationConfig, root_order):
        self.memo = memo
        self.graph = graph
        self.catalog = catalog
        self.config = config
        self.root_order = tuple(root_order)
        #: set by the builder once every group's rows are emitted; an
        #: interrupted build leaves it False and the store cannot attach
        self.complete = False

        # Oriented-equality-edge machinery, shared with the implicit
        # engine.  Deferred import: repro.planspace's package __init__
        # reaches back into repro.optimizer.
        from repro.planspace.implicit.edges import EdgeCatalog
        from repro.errors import PlanSpaceError

        try:
            self.edges = EdgeCatalog(graph)
        except PlanSpaceError as exc:  # >24 relations / >254 key columns
            raise ColumnarUnsupported(str(exc)) from None

        #: interned sort-order ids (kids) over packed key byte strings
        self._kid_of: dict[bytes, int] = {}
        self.kid_bytes: list[bytes] = []
        self._cut_kids: dict[int, tuple[int, int]] = {}

        # Parallel row columns (signed 32-bit ints on CPython/Linux).
        self.tag = array("i")
        self.gid = array("i")
        self.c0 = array("i")
        self.c1 = array("i")
        self.a = array("i")
        self.b = array("i")
        #: per-group row range: rows of group g are [start[g], start[g+1])
        self.group_start: list[int] = []
        #: logical expression count per group at build time (local-id base)
        self.logical_counts: list[int] = []

        #: per-group Sort enforcer kids, in global first-occurrence order
        self.sorts_by_gid: dict[int, list[int]] = {}
        #: all (gid, kid) requirement states, first-occurrence order —
        #: exactly the object path's enforcer-requirement dict
        self.requirements: list[tuple[int, int]] = []
        self.root_kid: int | None = None

        #: operator caches for lazy per-row materialization
        self._join_ops: dict[tuple[int, int], tuple] = {}
        self._inlj_ops: dict[tuple[int, int], list] = {}
        self._group_ops: dict[int, list] = {}
        #: enabled join-rule tags in rule order (set by the builder)
        self._keyed_tags: tuple[int, ...] = (TAG_NLJ, TAG_HASH, TAG_MERGE)

    # ------------------------------------------------------------------
    # kid interning
    # ------------------------------------------------------------------
    def kid(self, seq: bytes) -> int:
        k = self._kid_of.get(seq)
        if k is None:
            k = len(self.kid_bytes)
            self._kid_of[seq] = k
            self.kid_bytes.append(seq)
        return k

    def kid_of_columns(self, columns) -> int:
        return self.kid(self.edges.seq_bytes(tuple(columns)))

    def columns_of(self, kid: int):
        return self.edges.seq_columns(self.kid_bytes[kid])

    def cut_kids(self, bits: int) -> tuple[int, int]:
        pair = self._cut_kids.get(bits)
        if pair is None:
            left_seq, right_seq = self.edges.decode(bits)
            pair = (self.kid(left_seq), self.kid(right_seq))
            self._cut_kids[bits] = pair
        return pair

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self.tag)

    def sort_count(self) -> int:
        return sum(len(kids) for kids in self.sorts_by_gid.values())

    def physical_count(self) -> int:
        return self.row_count + self.sort_count()

    def group_rows(self, gid: int) -> tuple[int, int]:
        return self.group_start[gid], self.group_start[gid + 1]

    def group_physical_count(self, gid: int) -> int:
        start, end = self.group_rows(gid)
        sorts = self.sorts_by_gid.get(gid)
        return (end - start) + (len(sorts) if sorts else 0)

    def row_local_id(self, row: int) -> int:
        g = self.gid[row]
        return self.logical_counts[g] + (row - self.group_start[g]) + 1

    def sort_local_id(self, gid: int, position: int) -> int:
        start, end = self.group_rows(gid)
        return self.logical_counts[gid] + (end - start) + position + 1

    # ------------------------------------------------------------------
    # lazy operator materialization
    # ------------------------------------------------------------------
    def _mask_pair(self, row: int) -> tuple[int, int]:
        groups = self.memo.groups
        left = groups[self.c0[row]].mask
        tag = self.tag[row]
        right_gid = self.a[row] if tag == TAG_INLJ else self.c1[row]
        return left, groups[right_gid].mask

    def join_ops(self, left_mask: int, right_mask: int) -> tuple:
        """One orientation's generated join operators, in rule order —
        identical to what ``implement_memo`` inserts (same construction
        through the shared rule module)."""
        key = (left_mask, right_mask)
        ops = self._join_ops.get(key)
        if ops is None:
            universe = self.graph.universe
            ops = join_implementations(
                self.graph.join_predicate_m(left_mask, right_mask),
                universe.names(left_mask),
                universe.names(right_mask),
                self.config,
            ).ops
            self._join_ops[key] = ops
        return ops

    def inlj_ops(self, left_mask: int, right_mask: int) -> list:
        key = (left_mask, right_mask)
        ops = self._inlj_ops.get(key)
        if ops is None:
            universe = self.graph.universe
            predicate = self.graph.join_predicate_m(left_mask, right_mask)
            ji = join_implementations(
                predicate,
                universe.names(left_mask),
                universe.names(right_mask),
                self.config,
            )
            inner = self.memo.group_for_mask(right_mask)
            get = next(
                (
                    e.op
                    for e in inner.logical_exprs()
                    if isinstance(e.op, LogicalGet)
                ),
                None,
            )
            if get is None or not ji.left_keys:
                ops = []
            else:
                ops = index_nl_join_implementations(
                    get, self.catalog, predicate, ji.left_keys, ji.right_keys
                )
            self._inlj_ops[key] = ops
        return ops

    def group_ops(self, gid: int) -> list:
        """Scan / unary operator list of a leaf or tower group (ordinals
        in the ``a`` column index into it)."""
        ops = self._group_ops.get(gid)
        if ops is None:
            group = self.memo.groups[gid]
            op = group.logical_exprs()[0].op
            if isinstance(op, LogicalGet):
                ops = scan_implementations(op, self.catalog, self.config)
            else:
                ops = unary_implementations(op, self.config)
            self._group_ops[gid] = ops
        return ops

    def row_op(self, row: int):
        """The physical operator of one row, built on demand."""
        tag = self.tag[row]
        if tag in (TAG_NLJ, TAG_HASH, TAG_MERGE):
            left_mask, right_mask = self._mask_pair(row)
            ops = self.join_ops(left_mask, right_mask)
            # ``_keyed_tags`` is the enabled-rule tag order; a keyless
            # orientation generates the NLJ prefix only, whose position
            # is the same.
            return ops[self._keyed_tags.index(tag)]
        if tag == TAG_INLJ:
            left_mask, right_mask = self._mask_pair(row)
            return self.inlj_ops(left_mask, right_mask)[self.b[row]]
        if tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN) or tag in (
            TAG_FILTER,
            TAG_HASHAGG,
            TAG_STREAMAGG,
            TAG_PROJECT,
        ):
            return self.group_ops(self.gid[row])[self.a[row]]
        raise MemoError(f"unknown columnar row tag {tag}")

    def row_children(self, row: int) -> tuple[int, ...]:
        tag = self.tag[row]
        if tag in (TAG_NLJ, TAG_HASH, TAG_MERGE):
            return (self.c0[row], self.c1[row])
        if tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            return ()
        return (self.c0[row],)

    # ------------------------------------------------------------------
    # group materialization (the lazy facade)
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install the pending-materialization hooks on all groups,
        merging with any logical pending left by batched exploration."""
        if not self.complete:
            raise MemoError(
                "refusing to attach an incomplete columnar physical store "
                "(the build was interrupted)"
            )
        for group in self.memo.groups:
            pending = group._pending
            if pending is not None:
                pending.physical = self
            elif self.group_physical_count(group.gid):
                group._pending = _PendingExprs(group.gid, physical=self)

    def materialize_group(self, group: Group) -> None:
        """Rebuild the group's physical ``GroupExpr`` block — identical
        operators, order and local ids as ``implement_memo`` would have
        inserted (the columnar equivalence suite asserts byte identity)."""
        exprs = group._exprs
        gid = group.gid
        local = self.logical_counts[gid] + 1
        start, end = self.group_rows(gid)
        append = exprs.append
        for row in range(start, end):
            append(
                GroupExpr(self.row_op(row), self.row_children(row), gid, local)
            )
            local += 1
        sorts = self.sorts_by_gid.get(gid)
        if sorts:
            for kid in sorts:
                append(GroupExpr(Sort(self.columns_of(kid)), (gid,), gid, local))
                local += 1


def build_columnar_store(
    memo,
    graph,
    catalog,
    config: ImplementationConfig,
    root_order=(),
    scope=None,
) -> ColumnarPhysicalStore:
    """Populate a :class:`ColumnarPhysicalStore` by batched implementation.

    One pass over the logical memo, group by group; each group's operator
    block is accumulated in small per-group buffers and appended to the
    flat columns in one ``extend`` per column.  Raises
    :class:`ColumnarUnsupported` for memos the columnar path cannot
    represent (no alias universe / too many relations or key columns) —
    before any state is attached, so the caller can fall back cleanly.
    """
    for group in memo.groups:
        if group.mask is None and group.key[0] == "rels":
            raise ColumnarUnsupported("memo has unmasked relation groups")
    if memo.universe is None:
        raise ColumnarUnsupported("memo has no alias universe")

    store = ColumnarPhysicalStore(memo, graph, catalog, config, root_order)
    edges = store.edges
    from_mask = edges.from_mask
    to_mask = edges.to_mask
    cut_kids = store.cut_kids

    keyed_kinds, cross_kinds = join_physical_kinds(config)
    keyed_tags = tuple(_JOIN_KIND_TAGS[kind] for kind in keyed_kinds)
    cross_tags = tuple(_JOIN_KIND_TAGS[kind] for kind in cross_kinds)
    store._keyed_tags = keyed_tags
    n_keyed = len(keyed_tags)
    n_cross = len(cross_tags)
    enable_inlj = config.enable_index_nl_join

    groups = memo.groups
    tag_col, gid_col = store.tag, store.gid
    c0_col, c1_col = store.c0, store.c1
    a_col, b_col = store.a, store.b
    group_start = store.group_start
    logical_counts = store.logical_counts
    #: merge-requirement stream, (gid, kid) interleaved left/right in
    #: emission order — the object path's inline requirement collection
    merge_reqs: list[tuple[int, int]] = []

    # Per-group staging buffers, flushed with one extend per column.
    g_tag: list[int] = []
    g_c0: list[int] = []
    g_c1: list[int] = []
    g_a: list[int] = []
    g_b: list[int] = []

    logical_store = memo.columnar_logical
    checkpoint = scope.checkpoint if scope is not None else None
    for group in groups:
        fault_point("implement.columnar", store)
        if checkpoint is not None:
            checkpoint("implement.columnar", len(g_tag))
        group_start.append(len(tag_col))
        gid = group.gid
        pairs = None
        first = None
        if logical_store is not None and logical_store.split_rows(gid) is not None:
            # Batched exploration left this group's logical joins in the
            # arrays: feed the ordered child-gid stream straight through
            # without rebuilding (or ever having built) GroupExprs.
            n_logical = logical_store.logical_join_count(gid)
            logical_counts.append(n_logical)
            if not n_logical:
                continue
            pairs = logical_store.ordered_pairs(gid)
        else:
            exprs = group.logical_exprs()
            logical_counts.append(len(group._exprs))
            if not exprs:
                continue
            first = exprs[0].op
            if type(first) is LogicalJoin:
                pairs = (expr.children for expr in exprs)
        g_tag.clear()
        g_c0.clear()
        g_c1.clear()
        g_a.clear()
        g_b.clear()
        if pairs is not None:
            for l_gid, r_gid in pairs:
                l_mask = groups[l_gid].mask
                r_mask = groups[r_gid].mask
                bits = from_mask(l_mask) & to_mask(r_mask)
                if bits:
                    lk, rk = cut_kids(bits)
                    g_tag.extend(keyed_tags)
                    g_c0.extend((l_gid,) * n_keyed)
                    g_c1.extend((r_gid,) * n_keyed)
                    g_a.extend((lk,) * n_keyed)
                    g_b.extend((rk,) * n_keyed)
                    if "merge" in keyed_kinds:
                        merge_reqs.append((l_gid, lk))
                        merge_reqs.append((r_gid, rk))
                    if enable_inlj and not r_mask & (r_mask - 1):
                        for pos in range(len(store.inlj_ops(l_mask, r_mask))):
                            g_tag.append(TAG_INLJ)
                            g_c0.append(l_gid)
                            g_c1.append(-1)
                            g_a.append(r_gid)
                            g_b.append(pos)
                elif n_cross:
                    g_tag.extend(cross_tags)
                    g_c0.extend((l_gid,) * n_cross)
                    g_c1.extend((r_gid,) * n_cross)
                    g_a.extend((-1,) * n_cross)
                    g_b.extend((-1,) * n_cross)
        elif isinstance(first, LogicalGet):
            for ordinal, scan in enumerate(store.group_ops(gid)):
                order = scan.delivered_order()
                g_tag.append(TAG_INDEX_SCAN if order else TAG_TABLE_SCAN)
                g_c0.append(-1)
                g_c1.append(-1)
                g_a.append(ordinal)
                g_b.append(store.kid_of_columns(order) if order else -1)
        else:
            child = exprs[0].children[0]
            for ordinal, phys in enumerate(store.group_ops(gid)):
                tag = _UNARY_TAGS.get(type(phys).__name__)
                if tag is None:  # pragma: no cover - defensive
                    raise ColumnarUnsupported(
                        f"no columnar tag for operator {phys.name}"
                    )
                order = phys.delivered_order()
                g_tag.append(tag)
                g_c0.append(child)
                g_c1.append(-1)
                g_a.append(ordinal)
                g_b.append(store.kid_of_columns(order) if order else -1)
        tag_col.extend(g_tag)
        gid_col.extend((gid,) * len(g_tag))
        c0_col.extend(g_c0)
        c1_col.extend(g_c1)
        a_col.extend(g_a)
        b_col.extend(g_b)
    group_start.append(len(tag_col))

    # ------------------------------------------------------------------
    # requirement registration, in the object path's exact order: the
    # interleaved merge stream first, then the enforcer scan's non-join
    # requirements (stream aggregates, in group order), then ORDER BY.
    # Stream aggregates live only in unary tower groups, so the scan
    # skips relation-set groups (the bulk of the rows) entirely.
    # ------------------------------------------------------------------
    seen: dict[tuple[int, int], None] = {}
    record = seen.setdefault
    for req in merge_reqs:
        record(req)
    for group in groups:
        if group.key[0] == "rels":
            continue
        start, end = store.group_rows(group.gid)
        for row in range(start, end):
            if tag_col[row] == TAG_STREAMAGG and b_col[row] >= 0:
                record((c0_col[row], b_col[row]))
    if store.root_order:
        store.root_kid = store.kid_of_columns(store.root_order)
        if memo.root_group_id is not None:
            record((memo.root_group_id, store.root_kid))
    store.requirements = list(seen)

    if config.enable_sort_enforcers:
        sorts_by_gid = store.sorts_by_gid
        for req_gid, kid in store.requirements:
            sorts_by_gid.setdefault(req_gid, []).append(kid)
    store.complete = True
    return store
