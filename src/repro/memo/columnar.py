"""Struct-of-arrays physical memo: the columnar optimization core.

The object memo stores one slotted :class:`~repro.memo.group.GroupExpr`
per physical alternative — for a 12-relation clique that is ~2.9 million
Python objects, and constructing them (operator dataclasses, fingerprint
tuples, duplicate-detection dict probes) dominates exact optimization.
This module stores the physical side of the memo as parallel integer
arrays instead:

====== ===================================================================
column meaning
====== ===================================================================
tag    operator kind (``TAG_*`` op-code)
gid    owning group id
c0/c1  child group ids (-1 when unused; note an index-lookup join has
       arity 1: ``c0`` is the outer input, ``a`` keeps the inner gid)
a/b    per-tag payload: interned sort-order ids (*kids*) for merge keys
       and delivered orders, or the ordinal into the group's generated
       operator list (scans, unary operators, index-lookup joins)
====== ===================================================================

Rows are emitted in exactly the order :func:`~repro.optimizer.
implementation.implement_memo` would have inserted expressions — group by
group, logical expression by logical expression, rule order within — so
``local_id`` arithmetic is positional: row ``r`` of group ``g`` has local
id ``logical_count(g) + (r - start(g)) + 1``.  ``Sort`` enforcers are not
rows; they are per-group kid lists in global requirement
first-occurrence order, with the local ids that follow the group's block.

Key identity is *bitmask* work, reused from the implicit engine
(:mod:`repro.planspace.implicit.edges`): the equi-key sequences of a join
``(left, right)`` are the oriented equality edges crossing the cut,
``FROM[left] & TO[right]``, decoded once per distinct cut and interned to
integer *kids*.  No predicate is walked and no key tuple is sorted per
expression.

The memo also has a *logical* columnar side
(:class:`ColumnarLogicalStore`, built by batched exploration): for every
relation-mask group of two or more aliases, the valid unordered csg–cmp
splits are two parallel child-gid columns (``sl``/``sr``, bucket order,
blocks contiguous per group in enumeration-universe order) plus the
group's initial left-deep orientation when the setup pass seeded one.
Both orientations of every split — minus the initial duplicate, exactly
what the object explorer's per-expression ``memo.insert`` loop would
have kept — are derived positionally, so a 12-relation clique's ~1M
logical joins are two ``array('i')`` buffers instead of a million
``GroupExpr``/``LogicalJoin`` constructions and fingerprint probes.

The object ``Memo``/``GroupExpr`` API stays the facade: every group gets
a ``_pending`` hook that rebuilds its :class:`GroupExpr` list on first
access (same operators, same order, same local ids — the shared rule
module guarantees identity, and the columnar property suite asserts it),
so the plan-space toolkit, pruning, and explain work unchanged.  The
hook materializes in logical-then-physical order, and
``Group.logical_exprs()`` fires only the logical half.  Counting
(`expression_count` and friends) answers from the arrays without
materializing anything.

Works with or without numpy: columns are ``array.array`` buffers; the
layered best-plan DP (:mod:`repro.optimizer.bestplan`) views them as
numpy arrays when available and falls back to pure-Python loops when not,
mirroring :mod:`repro.planspace.implicit.turbo` / ``counting``.
"""

from __future__ import annotations

from array import array

from repro.algebra.logical import LogicalGet, LogicalJoin
from repro.algebra.physical import Sort
from repro.errors import MemoError
from repro.kernel import active_numpy
from repro.kernel.vector import (
    HashCollision,
    decode_bit_rows,
    first_occurrence_order,
    intern_rows,
    lex_unique_rows,
    union_words_by_mask,
)
from repro.memo.group import Group, GroupExpr
from repro.resilience.faults import fault_point
from repro.optimizer.rules import (
    ImplementationConfig,
    index_nl_join_implementations,
    join_implementations,
    join_physical_kinds,
    scan_implementations,
    unary_implementations,
)

__all__ = [
    "ColumnarLogicalStore",
    "ColumnarPhysicalStore",
    "ColumnarUnsupported",
    "build_columnar_store",
    "build_logical_store",
    "replay_logical_store",
]

# Physical row op-codes.  Joins use the contiguous NLJ/HASH/MERGE band so
# the DP can mask them in one comparison.
TAG_TABLE_SCAN = 0
TAG_INDEX_SCAN = 1
TAG_NLJ = 2
TAG_HASH = 3
TAG_MERGE = 4
TAG_INLJ = 5
TAG_FILTER = 6
TAG_HASHAGG = 7
TAG_STREAMAGG = 8
TAG_PROJECT = 9

_JOIN_KIND_TAGS = {"nlj": TAG_NLJ, "hash": TAG_HASH, "merge": TAG_MERGE}

#: unary-operator tags in :func:`unary_implementations` class order
_UNARY_TAGS = {
    "PhysicalFilter": TAG_FILTER,
    "HashAggregate": TAG_HASHAGG,
    "StreamAggregate": TAG_STREAMAGG,
    "PhysicalProject": TAG_PROJECT,
}


class ColumnarUnsupported(Exception):
    """This memo/configuration cannot take the columnar path (caller
    falls back to the object implementation)."""


class _PendingExprs:
    """``Group._pending`` hook: materialize a group's deferred blocks.

    Carries up to two array stores — the logical join block (batched
    exploration) and the physical operator block (batched
    implementation).  Materialization is always logical-then-physical, so
    ``local_id`` arithmetic stays positional whichever half fires first.
    """

    __slots__ = ("gid", "logical", "physical")

    def __init__(
        self,
        gid: int,
        logical: "ColumnarLogicalStore | None" = None,
        physical: "ColumnarPhysicalStore | None" = None,
    ):
        self.gid = gid
        self.logical = logical
        self.physical = physical

    def __call__(self, group: Group) -> None:
        if self.logical is not None:
            self.logical.materialize_group(group)
            self.logical = None
        if self.physical is not None:
            self.physical.materialize_group(group)

    def logical_count(self) -> int:
        if self.logical is None:
            return 0
        return self.logical.pending_count(self.gid)

    def physical_count(self) -> int:
        if self.physical is None:
            return 0
        return self.physical.group_physical_count(self.gid)

    def materialize_logical(self, group: Group) -> None:
        """Rebuild only the logical block; keep the physical one lazy."""
        if self.logical is not None:
            self.logical.materialize_group(group)
            self.logical = None
            if self.physical is None:
                group._pending = None


class ColumnarLogicalStore:
    """Array-backed explored logical joins of one memo.

    Rows are the *unordered* valid splits of every relation-mask group —
    left side holding the subset's name-smallest alias, historical bucket
    order — as parallel child-gid columns.  Ordered orientations (what
    ``Group.exprs`` holds) are derived positionally: the group's initial
    left-deep expression first (it was inserted by setup and survives as
    the object prefix), then both orientations of each split minus that
    duplicate — byte-identical to the object explorer's insert stream.
    """

    def __init__(self, memo, graph, allow_cross_products: bool):
        self.memo = memo
        self.graph = graph
        self.allow_cross_products = allow_cross_products
        #: set by the builder once every block is emitted; an interrupted
        #: build leaves it False and the store can never attach
        self.complete = False
        #: unordered split child gids (left = name-smallest side)
        self.sl = array("i")
        self.sr = array("i")
        #: gid -> [start, end) split-row range, in emission order
        self._range_by_gid: dict[int, tuple[int, int]] = {}
        #: gid -> ordered (left_gid, right_gid) of the setup-seeded join
        self.initial_by_gid: dict[int, tuple[int, int]] = {}
        #: the enumeration universe the blocks were emitted over
        self.subset_masks: list[int] = []
        #: subset mask -> gid at build time (every mask of the universe,
        #: leaves included) — the determinism witness template replay
        #: (:func:`replay_logical_store`) verifies against
        self.gid_by_mask: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self.sl)

    def split_rows(self, gid: int) -> tuple[int, int] | None:
        """The group's split-row range, or ``None`` for non-join groups."""
        return self._range_by_gid.get(gid)

    def split_count(self, gid: int) -> int:
        rng = self._range_by_gid.get(gid)
        return 0 if rng is None else rng[1] - rng[0]

    def logical_join_count(self, gid: int) -> int:
        """Total logical expressions of the group (both orientations of
        every split; the initial expression is one of them)."""
        return 2 * self.split_count(gid)

    def pending_count(self, gid: int) -> int:
        """Rows the batched explorer added beyond the object prefix."""
        count = self.logical_join_count(gid)
        if count and gid in self.initial_by_gid:
            count -= 1
        return count

    def expression_total(self) -> int:
        """Logical joins the batched build contributed (the number the
        object explorer's insert loop would have reported)."""
        return 2 * self.row_count - len(self.initial_by_gid)

    # ------------------------------------------------------------------
    def explored_pairs(self, gid: int):
        """Ordered ``(left_gid, right_gid)`` orientations beyond the
        object prefix, in local-id order."""
        rng = self._range_by_gid.get(gid)
        if rng is None:
            return
        init = self.initial_by_gid.get(gid)
        sl, sr = self.sl, self.sr
        for row in range(rng[0], rng[1]):
            left, right = sl[row], sr[row]
            if (left, right) != init:
                yield (left, right)
            if (right, left) != init:
                yield (right, left)

    def ordered_pairs(self, gid: int):
        """All ordered orientations in local-id order: the initial
        left-deep expression first, then :meth:`explored_pairs`."""
        init = self.initial_by_gid.get(gid)
        if init is not None:
            yield init
        yield from self.explored_pairs(gid)

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install the pending-materialization hooks and register the
        store on the memo."""
        if not self.complete:
            raise MemoError(
                "refusing to attach an incomplete columnar logical store "
                "(the build was interrupted)"
            )
        memo = self.memo
        memo.columnar_logical = self
        groups = memo.groups
        for gid in self._range_by_gid:
            if self.pending_count(gid):
                groups[gid]._pending = _PendingExprs(gid, logical=self)

    def materialize_group(self, group: Group) -> None:
        """Append the group's explored logical joins — identical
        operators (interned per mask cut), order and local ids as the
        object explorer would have inserted.  Fingerprints are registered
        with the memo, so later ``memo.insert`` calls (a re-exploration,
        a transformation pass) deduplicate against rebuilt expressions
        exactly as they would against inserted ones."""
        exprs = group._exprs
        gid = group.gid
        local = len(exprs) + 1
        groups = self.memo.groups
        join_op = self.graph.join_operator_m
        fingerprints = self.memo._expr_fingerprints
        append = exprs.append
        for left, right in self.explored_pairs(gid):
            op = join_op(groups[left].mask, groups[right].mask)
            children = (left, right)
            append(GroupExpr(op, children, gid, local))
            fingerprints[(op.key(), children)] = (gid, local)
            local += 1


def build_logical_store(
    memo, graph, allow_cross_products: bool, scope=None
) -> ColumnarLogicalStore:
    """Batched exploration: emit whole per-subset csg–cmp buckets into a
    :class:`ColumnarLogicalStore`.

    Walks the enumeration universe in the object explorer's order,
    creating (or finding) each subset's group and appending its bucket as
    one block of child-gid columns — no per-expression ``memo.insert``,
    no ``GroupExpr``/fingerprint work.  Raises
    :class:`ColumnarUnsupported` (memo untouched beyond group creation)
    when the memo is not a freshly seeded one — a group already holding
    anything but its single setup-inserted left-deep join — so the caller
    can fall back to object exploration.
    """
    if memo.universe is None:
        raise ColumnarUnsupported("memo has no alias universe")
    store = ColumnarLogicalStore(memo, graph, allow_cross_products)
    subsets, buckets = graph.enumeration_universe(allow_cross_products)
    store.subset_masks = subsets

    get_group = memo.get_or_create_rels_group
    gid_of = memo._rels_gid_by_mask
    sl, sr = store.sl, store.sr
    range_by_gid = store._range_by_gid
    initial_by_gid = store.initial_by_gid
    block_l: list[int] = []
    block_r: list[int] = []
    checkpoint = scope.checkpoint if scope is not None else None
    for subset in subsets:
        if not subset & (subset - 1):
            continue
        fault_point("explore.batch", store)
        if checkpoint is not None:
            checkpoint("explore.batch", 2 * len(block_l))
        group = get_group(subset)
        gid = group.gid
        prefix = group._exprs
        init = None
        if prefix or group._pending is not None:
            if (
                group._pending is not None
                or len(prefix) > 1
                or type(prefix[0].op) is not LogicalJoin
            ):
                raise ColumnarUnsupported(
                    "batched exploration requires a freshly seeded memo"
                )
            init = prefix[0].children
            initial_by_gid[gid] = init
        if buckets is None:
            splits = graph.cross_splits_m(subset)
        else:
            splits = buckets.get(subset, ())
        block_l.clear()
        block_r.clear()
        init_seen = init is None
        for left, right in splits:
            left_gid = gid_of[left]
            right_gid = gid_of[right]
            block_l.append(left_gid)
            block_r.append(right_gid)
            if not init_seen and init in (
                (left_gid, right_gid),
                (right_gid, left_gid),
            ):
                init_seen = True
        if not init_seen:
            raise ColumnarUnsupported(
                f"initial join of group {gid} missing from its splits"
            )
        start = len(sl)
        sl.extend(block_l)
        sr.extend(block_r)
        range_by_gid[gid] = (start, len(sl))
    store.gid_by_mask = dict(gid_of)
    store.complete = True
    return store


def replay_logical_store(
    memo, graph, allow_cross_products: bool, template
) -> ColumnarLogicalStore:
    """Rebuild an explored logical store from cached template arrays.

    ``template`` is a detached snapshot of a prior, completed
    :class:`ColumnarLogicalStore` for the *same query template* (same
    join graph shape, any literal values) — any object exposing
    ``universe_order``, ``allow_cross_products``, ``subset_masks``,
    ``sl``/``sr``, ``range_by_gid``, ``initial_by_gid`` and
    ``gid_by_mask`` (see ``repro.serving.cache.TemplateArtifacts``).
    Group creation in :func:`build_logical_store` is deterministic
    (setup seeds groups in a fixed order, then subsets are created in
    enumeration-universe order), so replaying the creation over a
    freshly seeded memo reproduces identical group ids and the cached
    child-gid columns can be shared read-only — no enumeration, no
    split computation.

    Every assumption is verified cheaply (gid assignment, setup-seeded
    initial joins, cross-product mode); any drift raises
    :class:`ColumnarUnsupported` with the memo untouched beyond group
    creation, so the caller falls back to normal exploration.
    """
    if memo.universe is None:
        raise ColumnarUnsupported("memo has no alias universe")
    if template.allow_cross_products != allow_cross_products:
        raise ColumnarUnsupported("template cached under a different join mode")
    if tuple(memo.universe.order) != tuple(template.universe_order):
        raise ColumnarUnsupported("template cached under a different universe")
    store = ColumnarLogicalStore(memo, graph, allow_cross_products)
    get_group = memo.get_or_create_rels_group
    range_by_gid = template.range_by_gid
    initial_by_gid = template.initial_by_gid
    gid_by_mask = template.gid_by_mask
    for subset in template.subset_masks:
        group = get_group(subset)
        gid = group.gid
        if gid_by_mask.get(subset) != gid:
            raise ColumnarUnsupported("replayed group ids drifted from template")
        if not subset & (subset - 1):
            continue
        prefix = group._exprs
        init = initial_by_gid.get(gid)
        if group._pending is not None or len(prefix) > (0 if init is None else 1):
            raise ColumnarUnsupported(
                "template replay requires a freshly seeded memo"
            )
        if init is not None:
            if (
                not prefix
                or type(prefix[0].op) is not LogicalJoin
                or prefix[0].children != init
            ):
                raise ColumnarUnsupported(
                    "setup-seeded joins drifted from template"
                )
        elif prefix:
            raise ColumnarUnsupported("setup-seeded joins drifted from template")
        if gid not in range_by_gid:
            raise ColumnarUnsupported("template split ranges drifted")
    # Share the immutable columns/tables; the store only ever reads them.
    store.sl = template.sl
    store.sr = template.sr
    store._range_by_gid = range_by_gid
    store.initial_by_gid = initial_by_gid
    store.subset_masks = template.subset_masks
    store.gid_by_mask = gid_by_mask
    store.complete = True
    return store


class ColumnarPhysicalStore:
    """Array-backed physical expressions of one memo."""

    def __init__(
        self,
        memo,
        graph,
        catalog,
        config: ImplementationConfig,
        root_order,
        edges=None,
    ):
        self.memo = memo
        self.graph = graph
        self.catalog = catalog
        self.config = config
        self.root_order = tuple(root_order)
        #: set by the builder once every group's rows are emitted; an
        #: interrupted build leaves it False and the store cannot attach
        self.complete = False

        # Oriented-equality-edge machinery, shared with the implicit
        # engine.  Deferred import: repro.planspace's package __init__
        # reaches back into repro.optimizer.
        from repro.planspace.implicit.edges import EdgeCatalog
        from repro.planspace.implicit.keys import KeyTable
        from repro.errors import PlanSpaceError

        # A cache-supplied edge catalog (template replay) skips the
        # per-query equality analysis; it must already be bound to this
        # request's graph (see EdgeCatalog.clone).
        if edges is not None and edges.graph is graph:
            self.edges = edges
        else:
            try:
                self.edges = EdgeCatalog(graph)
            except PlanSpaceError as exc:  # >24 relations / >254 key columns
                raise ColumnarUnsupported(str(exc)) from None

        #: interned sort-order ids (kids) over packed key byte strings —
        #: the implicit engine's hybrid table: dict-backed for scalar
        #: builds, a preloaded lex-sorted byte matrix (row = kid = lex
        #: rank) when the vectorized emitter interned the cut universe
        self._keys = KeyTable(self.edges)
        self.kid_bytes = self._keys.kid_bytes

        # Parallel row columns (signed 32-bit ints on CPython/Linux).
        self.tag = array("i")
        self.gid = array("i")
        self.c0 = array("i")
        self.c1 = array("i")
        self.a = array("i")
        self.b = array("i")
        #: per-group row range: rows of group g are [start[g], start[g+1])
        self.group_start: list[int] = []
        #: logical expression count per group at build time (local-id base)
        self.logical_counts: list[int] = []

        #: all (gid, kid) requirement states, first-occurrence order —
        #: exactly the object path's enforcer-requirement dict.  The
        #: vectorized build keeps the stream as int64 columns and the
        #: tuple list (plus the per-group ``sorts_by_gid`` view) only
        #: materializes on demand.
        self._requirements: list[tuple[int, int]] | None = []
        self._req_np = None
        self._req_gid = None
        self._req_kid = None
        self._sorts_by_gid: dict[int, list[int]] | None = None
        self._sort_counts: list[int] | None = None
        #: fused build→DP handoff: per merge row (in row order) the
        #: dense state ids of its two child requirements; vector builds
        #: only (``None`` after a scalar build)
        self._merge_sid0 = None
        self._merge_sid1 = None
        self.root_kid: int | None = None

        #: operator caches for lazy per-row materialization
        self._join_ops: dict[tuple[int, int], tuple] = {}
        self._inlj_ops: dict[tuple[int, int], list] = {}
        self._group_ops: dict[int, list] = {}
        #: enabled join-rule tags in rule order (set by the builder)
        self._keyed_tags: tuple[int, ...] = (TAG_NLJ, TAG_HASH, TAG_MERGE)

    # ------------------------------------------------------------------
    # kid interning (delegated to the shared hybrid key table)
    # ------------------------------------------------------------------
    def kid(self, seq: bytes) -> int:
        return self._keys.kid(seq)

    def kid_of_columns(self, columns) -> int:
        return self._keys.kid(self.edges.seq_bytes(tuple(columns)))

    def columns_of(self, kid: int):
        return self._keys.columns_of(kid)

    def cut_kids(self, bits: int) -> tuple[int, int]:
        return self._keys.cut_kids(bits)

    # ------------------------------------------------------------------
    # requirement states
    # ------------------------------------------------------------------
    @property
    def requirements(self) -> list[tuple[int, int]]:
        if self._requirements is None:
            self._requirements = list(
                zip(self._req_gid.tolist(), self._req_kid.tolist())
            )
        return self._requirements

    @requirements.setter
    def requirements(self, value) -> None:
        self._requirements = value
        self._req_np = self._req_gid = self._req_kid = None
        self._sorts_by_gid = None
        self._sort_counts = None
        self._merge_sid0 = self._merge_sid1 = None

    def set_requirement_arrays(self, np, req_gid, req_kid) -> None:
        """Adopt the vectorized build's requirement stream (int64 gid/kid
        columns, global first-occurrence order) without materializing the
        tuple list."""
        self._req_np = np
        self._req_gid = req_gid
        self._req_kid = req_kid
        self._requirements = None
        self._sorts_by_gid = None
        self._sort_counts = None

    def requirement_count(self) -> int:
        if self._requirements is not None:
            return len(self._requirements)
        return len(self._req_gid)

    def requirement_arrays(self, np):
        """``(gid, kid)`` int64 requirement columns, first-occurrence
        order — the vectorized build's columns when present, else built
        from the tuple list."""
        if self._req_gid is not None:
            return self._req_gid, self._req_kid
        reqs = self._requirements
        gid = np.fromiter((r[0] for r in reqs), np.int64, len(reqs))
        kid = np.fromiter((r[1] for r in reqs), np.int64, len(reqs))
        return gid, kid

    @property
    def sorts_by_gid(self) -> dict[int, list[int]]:
        """gid -> ``Sort`` enforcer kids in global requirement
        first-occurrence order, materialized lazily from the stream."""
        if self._sorts_by_gid is None:
            by_gid: dict[int, list[int]] = {}
            if self.config.enable_sort_enforcers:
                for gid, kid in self.requirements:
                    by_gid.setdefault(gid, []).append(kid)
            self._sorts_by_gid = by_gid
        return self._sorts_by_gid

    def group_sorts(self, gid: int) -> list[int]:
        """One group's enforcer kids without materializing the full map."""
        if self._sorts_by_gid is not None:
            return self._sorts_by_gid.get(gid, [])
        if not self.config.enable_sort_enforcers:
            return []
        if self._req_gid is not None:
            return self._req_kid[self._req_gid == gid].tolist()
        return [kid for g, kid in self._requirements if g == gid]

    def _group_sort_counts(self) -> list[int]:
        if self._sort_counts is None:
            n = len(self.group_start) - 1
            counts = [0] * n
            if self.config.enable_sort_enforcers:
                if self._req_np is not None:
                    counts = self._req_np.bincount(
                        self._req_gid, minlength=n
                    ).tolist()
                else:
                    for gid, _kid in self.requirements:
                        counts[gid] += 1
            self._sort_counts = counts
        return self._sort_counts

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self.tag)

    def sort_count(self) -> int:
        if not self.config.enable_sort_enforcers:
            return 0
        return self.requirement_count()

    def physical_count(self) -> int:
        return self.row_count + self.sort_count()

    def group_rows(self, gid: int) -> tuple[int, int]:
        return self.group_start[gid], self.group_start[gid + 1]

    def group_physical_count(self, gid: int) -> int:
        start, end = self.group_rows(gid)
        return (end - start) + self._group_sort_counts()[gid]

    def row_local_id(self, row: int) -> int:
        g = self.gid[row]
        return self.logical_counts[g] + (row - self.group_start[g]) + 1

    def sort_local_id(self, gid: int, position: int) -> int:
        start, end = self.group_rows(gid)
        return self.logical_counts[gid] + (end - start) + position + 1

    # ------------------------------------------------------------------
    # lazy operator materialization
    # ------------------------------------------------------------------
    def _mask_pair(self, row: int) -> tuple[int, int]:
        groups = self.memo.groups
        left = groups[self.c0[row]].mask
        tag = self.tag[row]
        right_gid = self.a[row] if tag == TAG_INLJ else self.c1[row]
        return left, groups[right_gid].mask

    def join_ops(self, left_mask: int, right_mask: int) -> tuple:
        """One orientation's generated join operators, in rule order —
        identical to what ``implement_memo`` inserts (same construction
        through the shared rule module)."""
        key = (left_mask, right_mask)
        ops = self._join_ops.get(key)
        if ops is None:
            universe = self.graph.universe
            ops = join_implementations(
                self.graph.join_predicate_m(left_mask, right_mask),
                universe.names(left_mask),
                universe.names(right_mask),
                self.config,
            ).ops
            self._join_ops[key] = ops
        return ops

    def inlj_ops(self, left_mask: int, right_mask: int) -> list:
        key = (left_mask, right_mask)
        ops = self._inlj_ops.get(key)
        if ops is None:
            universe = self.graph.universe
            predicate = self.graph.join_predicate_m(left_mask, right_mask)
            ji = join_implementations(
                predicate,
                universe.names(left_mask),
                universe.names(right_mask),
                self.config,
            )
            inner = self.memo.group_for_mask(right_mask)
            get = next(
                (
                    e.op
                    for e in inner.logical_exprs()
                    if isinstance(e.op, LogicalGet)
                ),
                None,
            )
            if get is None or not ji.left_keys:
                ops = []
            else:
                ops = index_nl_join_implementations(
                    get, self.catalog, predicate, ji.left_keys, ji.right_keys
                )
            self._inlj_ops[key] = ops
        return ops

    def group_ops(self, gid: int) -> list:
        """Scan / unary operator list of a leaf or tower group (ordinals
        in the ``a`` column index into it)."""
        ops = self._group_ops.get(gid)
        if ops is None:
            group = self.memo.groups[gid]
            op = group.logical_exprs()[0].op
            if isinstance(op, LogicalGet):
                ops = scan_implementations(op, self.catalog, self.config)
            else:
                ops = unary_implementations(op, self.config)
            self._group_ops[gid] = ops
        return ops

    def row_op(self, row: int):
        """The physical operator of one row, built on demand."""
        tag = self.tag[row]
        if tag in (TAG_NLJ, TAG_HASH, TAG_MERGE):
            left_mask, right_mask = self._mask_pair(row)
            ops = self.join_ops(left_mask, right_mask)
            # ``_keyed_tags`` is the enabled-rule tag order; a keyless
            # orientation generates the NLJ prefix only, whose position
            # is the same.
            return ops[self._keyed_tags.index(tag)]
        if tag == TAG_INLJ:
            left_mask, right_mask = self._mask_pair(row)
            return self.inlj_ops(left_mask, right_mask)[self.b[row]]
        if tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN) or tag in (
            TAG_FILTER,
            TAG_HASHAGG,
            TAG_STREAMAGG,
            TAG_PROJECT,
        ):
            return self.group_ops(self.gid[row])[self.a[row]]
        raise MemoError(f"unknown columnar row tag {tag}")

    def row_children(self, row: int) -> tuple[int, ...]:
        tag = self.tag[row]
        if tag in (TAG_NLJ, TAG_HASH, TAG_MERGE):
            return (self.c0[row], self.c1[row])
        if tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            return ()
        return (self.c0[row],)

    # ------------------------------------------------------------------
    # group materialization (the lazy facade)
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install the pending-materialization hooks on all groups,
        merging with any logical pending left by batched exploration."""
        if not self.complete:
            raise MemoError(
                "refusing to attach an incomplete columnar physical store "
                "(the build was interrupted)"
            )
        for group in self.memo.groups:
            pending = group._pending
            if pending is not None:
                pending.physical = self
            elif self.group_physical_count(group.gid):
                group._pending = _PendingExprs(group.gid, physical=self)

    def materialize_group(self, group: Group) -> None:
        """Rebuild the group's physical ``GroupExpr`` block — identical
        operators, order and local ids as ``implement_memo`` would have
        inserted (the columnar equivalence suite asserts byte identity)."""
        exprs = group._exprs
        gid = group.gid
        local = self.logical_counts[gid] + 1
        start, end = self.group_rows(gid)
        append = exprs.append
        for row in range(start, end):
            append(
                GroupExpr(self.row_op(row), self.row_children(row), gid, local)
            )
            local += 1
        for kid in self.group_sorts(gid):
            append(GroupExpr(Sort(self.columns_of(kid)), (gid,), gid, local))
            local += 1


def build_columnar_store(
    memo,
    graph,
    catalog,
    config: ImplementationConfig,
    root_order=(),
    scope=None,
    edges=None,
) -> ColumnarPhysicalStore:
    """Populate a :class:`ColumnarPhysicalStore` by batched implementation.

    With a vectorizing kernel backend (:func:`repro.kernel.active_numpy`)
    and a complete batched-explored logical store, the join rows of every
    group are emitted in one whole-bucket array pass
    (:func:`_emit_rows_vectorized`); otherwise — and for leaf/tower groups
    always — each group's operator block is accumulated in small
    per-group buffers and appended to the flat columns in one ``extend``
    per column (:func:`_emit_rows_scalar`, the reference loop).  Raises
    :class:`ColumnarUnsupported` for memos the columnar path cannot
    represent (no alias universe / too many relations or key columns) —
    before any state is attached, so the caller can fall back cleanly.
    """
    for group in memo.groups:
        if group.mask is None and group.key[0] == "rels":
            raise ColumnarUnsupported("memo has unmasked relation groups")
    if memo.universe is None:
        raise ColumnarUnsupported("memo has no alias universe")

    store = ColumnarPhysicalStore(memo, graph, catalog, config, root_order, edges)

    keyed_kinds, cross_kinds = join_physical_kinds(config)
    keyed_tags = tuple(_JOIN_KIND_TAGS[kind] for kind in keyed_kinds)
    cross_tags = tuple(_JOIN_KIND_TAGS[kind] for kind in cross_kinds)
    store._keyed_tags = keyed_tags

    logical_store = memo.columnar_logical
    np = active_numpy()
    req_arrays = None
    if (
        np is not None
        and logical_store is not None
        and logical_store.complete
        and not config.enable_index_nl_join
        and store.tag.itemsize == 4
    ):
        req_arrays = _emit_rows_vectorized(
            np, store, logical_store, keyed_kinds, keyed_tags, cross_tags, scope
        )

    # ------------------------------------------------------------------
    # requirement registration, in the object path's exact order: the
    # interleaved merge stream first, then the enforcer scan's non-join
    # requirements (stream aggregates, in group order), then ORDER BY.
    # ------------------------------------------------------------------
    if req_arrays is None:
        merge_reqs = _emit_rows_scalar(
            store, logical_store, keyed_kinds, keyed_tags, cross_tags, scope
        )
        seen: dict[tuple[int, int], None] = {}
        record = seen.setdefault
        for req in merge_reqs:
            record(req)
        _record_tail_requirements(store, record)
        store.requirements = list(seen)
    else:
        req_gid, req_kid = req_arrays
        codes = np.sort((req_gid << np.int64(32)) | req_kid)
        extra: dict[tuple[int, int], None] = {}

        def record(pair):
            code = (pair[0] << 32) | pair[1]
            i = int(np.searchsorted(codes, code))
            if i < len(codes) and int(codes[i]) == code:
                return  # already in the merge stream
            extra.setdefault(pair, None)

        _record_tail_requirements(store, record)
        if extra:
            req_gid = np.concatenate(
                [
                    req_gid,
                    np.fromiter((g for g, _k in extra), np.int64, len(extra)),
                ]
            )
            req_kid = np.concatenate(
                [
                    req_kid,
                    np.fromiter((k for _g, k in extra), np.int64, len(extra)),
                ]
            )
        store.set_requirement_arrays(np, req_gid, req_kid)

    store.complete = True
    return store


def _emit_leaf_rows(store, gid, g_tag, g_c0, g_c1, g_a, g_b) -> None:
    """Scan rows of one base-relation group (scalar, both build paths)."""
    for ordinal, scan in enumerate(store.group_ops(gid)):
        order = scan.delivered_order()
        g_tag.append(TAG_INDEX_SCAN if order else TAG_TABLE_SCAN)
        g_c0.append(-1)
        g_c1.append(-1)
        g_a.append(ordinal)
        g_b.append(store.kid_of_columns(order) if order else -1)


def _emit_tower_rows(store, gid, child, g_tag, g_c0, g_c1, g_a, g_b) -> None:
    """Unary-operator rows of one tower group (scalar, both build paths)."""
    for ordinal, phys in enumerate(store.group_ops(gid)):
        tag = _UNARY_TAGS.get(type(phys).__name__)
        if tag is None:  # pragma: no cover - defensive
            raise ColumnarUnsupported(f"no columnar tag for operator {phys.name}")
        order = phys.delivered_order()
        g_tag.append(tag)
        g_c0.append(child)
        g_c1.append(-1)
        g_a.append(ordinal)
        g_b.append(store.kid_of_columns(order) if order else -1)


def _record_tail_requirements(store, record) -> None:
    """The enforcer scan's non-merge requirements, in the object path's
    order: stream-aggregate GROUP BYs (group order, and stream aggregates
    live only in unary tower groups, so the scan skips relation-set
    groups — the bulk of the rows — entirely), then ORDER BY."""
    memo = store.memo
    tag_col, c0_col, b_col = store.tag, store.c0, store.b
    for group in memo.groups:
        if group.key[0] == "rels":
            continue
        start, end = store.group_rows(group.gid)
        for row in range(start, end):
            if tag_col[row] == TAG_STREAMAGG and b_col[row] >= 0:
                record((c0_col[row], b_col[row]))
    if store.root_order:
        store.root_kid = store.kid_of_columns(store.root_order)
        if memo.root_group_id is not None:
            record((memo.root_group_id, store.root_kid))


def _emit_rows_scalar(
    store, logical_store, keyed_kinds, keyed_tags, cross_tags, scope
) -> list[tuple[int, int]]:
    """The reference per-group emission loop (any backend, any config).

    Returns the merge-requirement stream: (gid, kid) interleaved
    left/right in emission order — the object path's inline requirement
    collection.
    """
    memo = store.memo
    config = store.config
    edges = store.edges
    from_mask = edges.from_mask
    to_mask = edges.to_mask
    cut_kids = store.cut_kids
    n_keyed = len(keyed_tags)
    n_cross = len(cross_tags)
    enable_inlj = config.enable_index_nl_join

    groups = memo.groups
    tag_col, gid_col = store.tag, store.gid
    c0_col, c1_col = store.c0, store.c1
    a_col, b_col = store.a, store.b
    group_start = store.group_start
    logical_counts = store.logical_counts
    merge_reqs: list[tuple[int, int]] = []

    # Per-group staging buffers, flushed with one extend per column.
    g_tag: list[int] = []
    g_c0: list[int] = []
    g_c1: list[int] = []
    g_a: list[int] = []
    g_b: list[int] = []

    checkpoint = scope.checkpoint if scope is not None else None
    for group in groups:
        fault_point("implement.columnar", store)
        if checkpoint is not None:
            checkpoint("implement.columnar", len(g_tag))
        group_start.append(len(tag_col))
        gid = group.gid
        pairs = None
        first = None
        if logical_store is not None and logical_store.split_rows(gid) is not None:
            # Batched exploration left this group's logical joins in the
            # arrays: feed the ordered child-gid stream straight through
            # without rebuilding (or ever having built) GroupExprs.
            n_logical = logical_store.logical_join_count(gid)
            logical_counts.append(n_logical)
            if not n_logical:
                continue
            pairs = logical_store.ordered_pairs(gid)
        else:
            exprs = group.logical_exprs()
            logical_counts.append(len(group._exprs))
            if not exprs:
                continue
            first = exprs[0].op
            if type(first) is LogicalJoin:
                pairs = (expr.children for expr in exprs)
        g_tag.clear()
        g_c0.clear()
        g_c1.clear()
        g_a.clear()
        g_b.clear()
        if pairs is not None:
            for l_gid, r_gid in pairs:
                l_mask = groups[l_gid].mask
                r_mask = groups[r_gid].mask
                bits = from_mask(l_mask) & to_mask(r_mask)
                if bits:
                    lk, rk = cut_kids(bits)
                    g_tag.extend(keyed_tags)
                    g_c0.extend((l_gid,) * n_keyed)
                    g_c1.extend((r_gid,) * n_keyed)
                    g_a.extend((lk,) * n_keyed)
                    g_b.extend((rk,) * n_keyed)
                    if "merge" in keyed_kinds:
                        merge_reqs.append((l_gid, lk))
                        merge_reqs.append((r_gid, rk))
                    if enable_inlj and not r_mask & (r_mask - 1):
                        for pos in range(len(store.inlj_ops(l_mask, r_mask))):
                            g_tag.append(TAG_INLJ)
                            g_c0.append(l_gid)
                            g_c1.append(-1)
                            g_a.append(r_gid)
                            g_b.append(pos)
                elif n_cross:
                    g_tag.extend(cross_tags)
                    g_c0.extend((l_gid,) * n_cross)
                    g_c1.extend((r_gid,) * n_cross)
                    g_a.extend((-1,) * n_cross)
                    g_b.extend((-1,) * n_cross)
        elif isinstance(first, LogicalGet):
            _emit_leaf_rows(store, gid, g_tag, g_c0, g_c1, g_a, g_b)
        else:
            _emit_tower_rows(
                store, gid, exprs[0].children[0], g_tag, g_c0, g_c1, g_a, g_b
            )
        tag_col.extend(g_tag)
        gid_col.extend((gid,) * len(g_tag))
        c0_col.extend(g_c0)
        c1_col.extend(g_c1)
        a_col.extend(g_a)
        b_col.extend(g_b)
    group_start.append(len(tag_col))
    return merge_reqs


#: per-group emission kinds of the vectorized build plan
_VEC, _LEAF, _TOWER, _EMPTY = 0, 1, 2, 3

_WORD_MASK = 0xFFFFFFFFFFFFFFFF


def _emit_rows_vectorized(
    np, store, logical_store, keyed_kinds, keyed_tags, cross_tags, scope
):
    """Whole-bucket join emission over the columnar logical store.

    Computes every join group's rows as one array pipeline — the ordered
    orientation stream positionally from the ``sl``/``sr`` split columns,
    cut bitmasks through per-gid FROM/TO word tables, kids by interning
    the decoded cut-key universe into a lex-sorted matrix the store's key
    table adopts — then walks the groups once in gid order, splicing
    vector block slices between the scalar leaf/tower emissions.

    Returns the deduplicated merge-requirement stream as ``(gid, kid)``
    int64 columns in first-occurrence order, or ``None`` when this memo
    needs the scalar loop (an object-explored join group, or an
    astronomically-unlikely hash collision while interning).
    """
    memo = store.memo
    groups = memo.groups
    edges = store.edges
    E = edges.edge_count
    checkpoint = scope.checkpoint if scope is not None else None

    # One classification pass in gid order.  An object-explored join
    # group (no split range) would interleave its merge requirements into
    # the middle of the vectorized stream, so its presence sends the
    # whole build down the scalar path.
    plan: list[tuple[int, int, int]] = []  # (kind, logical_count, payload)
    join_gids: list[int] = []
    join_ranges: list[tuple[int, int]] = []
    for group in groups:
        gid = group.gid
        rng = logical_store.split_rows(gid)
        if rng is not None:
            n_logical = logical_store.logical_join_count(gid)
            if n_logical:
                plan.append((_VEC, n_logical, -1))
                join_gids.append(gid)
                join_ranges.append(rng)
            else:
                plan.append((_EMPTY, n_logical, -1))
            continue
        exprs = group.logical_exprs()
        n_logical = len(group._exprs)
        if not exprs:
            plan.append((_EMPTY, n_logical, -1))
            continue
        first = exprs[0].op
        if type(first) is LogicalJoin:
            return None
        if isinstance(first, LogicalGet):
            plan.append((_LEAF, n_logical, -1))
        else:
            plan.append((_TOWER, n_logical, exprs[0].children[0]))

    # ------------------------------------------------------------------
    # ordered-pair stream: both orientations of every split interleaved
    # in bucket order, gathered group-major, each setup-seeded initial
    # orientation rolled to the front of its block — positionally
    # identical to ColumnarLogicalStore.ordered_pairs per group.
    # ------------------------------------------------------------------
    sl_np = np.frombuffer(logical_store.sl, dtype=np.int32).astype(np.int64)
    sr_np = np.frombuffer(logical_store.sr, dtype=np.int32).astype(np.int64)
    if join_ranges:
        split_idx = np.concatenate(
            [np.arange(s, e, dtype=np.int64) for s, e in join_ranges]
        )
    else:
        split_idx = np.zeros(0, np.int64)
    gl = sl_np[split_idx]
    gr = sr_np[split_idx]
    S = len(split_idx)
    P = 2 * S
    pl = np.empty(P, np.int64)
    pr = np.empty(P, np.int64)
    pl[0::2] = gl
    pr[0::2] = gr
    pl[1::2] = gr
    pr[1::2] = gl
    pair_counts = np.zeros(len(join_gids), np.int64)
    for i, (s, e) in enumerate(join_ranges):
        pair_counts[i] = 2 * (e - s)
    pair_start = np.zeros(len(join_gids) + 1, np.int64)
    np.cumsum(pair_counts, out=pair_start[1:])
    initial = logical_store.initial_by_gid
    if initial:
        pos_of_gid = {gid: i for i, gid in enumerate(join_gids)}
        for gid, (il, ir) in initial.items():
            i = pos_of_gid.get(gid)
            if i is None:
                continue
            s = int(pair_start[i])
            e = int(pair_start[i + 1])
            hits = np.nonzero((pl[s:e] == il) & (pr[s:e] == ir))[0]
            if not len(hits):  # pragma: no cover - build_logical_store checks
                return None
            j = int(hits[0])
            if j:
                pl[s : s + j + 1] = np.roll(pl[s : s + j + 1], 1)
                pr[s : s + j + 1] = np.roll(pr[s : s + j + 1], 1)
    if checkpoint is not None:
        checkpoint("implement.columnar", P)

    # ------------------------------------------------------------------
    # cut bitmasks: per-gid FROM/TO unions over the per-alias oriented
    # edge masks, packed into uint64 word rows
    # ------------------------------------------------------------------
    n_alias = edges.universe.size
    W = max(1, (E + 63) // 64)
    from_words = np.zeros((n_alias, W), np.uint64)
    to_words = np.zeros((n_alias, W), np.uint64)
    for i in range(n_alias):
        fb = edges.from_bits[i]
        tb = edges.to_bits[i]
        for w in range(W):
            from_words[i, w] = (fb >> (64 * w)) & _WORD_MASK
            to_words[i, w] = (tb >> (64 * w)) & _WORD_MASK
    mask_arr = np.fromiter(
        (group.mask or 0 for group in groups), np.int64, len(groups)
    )
    from_by_gid = union_words_by_mask(np, from_words, mask_arr, n_alias)
    to_by_gid = union_words_by_mask(np, to_words, mask_arr, n_alias)
    cut_words = from_by_gid[pl] & to_by_gid[pr]
    keyed = (cut_words != 0).any(axis=1)

    # ------------------------------------------------------------------
    # kids: intern the distinct cuts, decode each once, intern the
    # decoded key universe into a lex-sorted matrix (row = kid = lex
    # rank) and hand it to the store's key table
    # ------------------------------------------------------------------
    n_keyed = len(keyed_tags)
    n_cross = len(cross_tags)
    kc = int(keyed.sum())
    lk_pair = np.full(P, -1, np.int64)
    rk_pair = np.full(P, -1, np.int64)
    if kc:
        keyed_cuts = cut_words[keyed]
        try:
            cut_ids, cut_rep = intern_rows(np, keyed_cuts)
        except HashCollision:  # pragma: no cover - astronomically rare
            return None
        uniq_cuts = keyed_cuts[cut_rep]
        lcol_lut = np.frombuffer(edges.left_col, dtype=np.uint8)
        rcol_lut = np.frombuffer(edges.right_col, dtype=np.uint8)
        left_chunks, right_chunks, chunk_maxlens = decode_bit_rows(
            np,
            uniq_cuts,
            E,
            lcol_lut,
            rcol_lut,
            on_chunk=(
                (lambda: checkpoint("implement.columnar", 0))
                if checkpoint is not None
                else None
            ),
        )
        maxlen = max(chunk_maxlens, default=1)

        def padded(mat, width):
            if mat.shape[1] == width:
                return mat
            out = np.zeros((mat.shape[0], width), np.uint8)
            out[:, : mat.shape[1]] = mat
            return out

        stacked = np.concatenate(
            [padded(m, maxlen) for m in left_chunks]
            + [padded(m, maxlen) for m in right_chunks],
            axis=0,
        )
        # One lexsort interns and ranks the whole key universe at once:
        # distinct rows in lex order (row = kid = lex rank) plus every
        # stacked row's kid — exact, no hash-collision retry needed.
        kid_mat, kid_of_row = lex_unique_rows(np, stacked)
        kid_lengths = (kid_mat != 0).sum(axis=1).astype(np.int64)
        store._keys.preload(kid_mat, kid_lengths)
        U = len(uniq_cuts)
        lk_pair[keyed] = kid_of_row[:U][cut_ids]
        rk_pair[keyed] = kid_of_row[U:][cut_ids]
    if checkpoint is not None:
        checkpoint("implement.columnar", kc)

    # ------------------------------------------------------------------
    # merge-requirement stream: (gid, kid) interleaved left/right per
    # keyed pair in emission order, deduplicated to first occurrences
    # ------------------------------------------------------------------
    if "merge" in keyed_kinds and kc:
        mcodes = np.empty(2 * kc, np.int64)
        mcodes[0::2] = (pl[keyed] << np.int64(32)) | lk_pair[keyed]
        mcodes[1::2] = (pr[keyed] << np.int64(32)) | rk_pair[keyed]
        uniq_sorted, first, inverse = np.unique(
            mcodes, return_index=True, return_inverse=True
        )
        forder = np.argsort(first, kind="stable")
        uniq_codes = uniq_sorted[forder]
        req_gid = (uniq_codes >> np.int64(32)).astype(np.int64)
        req_kid = (uniq_codes & np.int64(0xFFFFFFFF)).astype(np.int64)
        # Fused implement→DP handoff: each merge row's child states as
        # dense state ids (positions in the first-occurrence stream),
        # one pair per keyed ordered pair in emission order.  The
        # best-plan DP consumes these directly instead of re-deriving
        # them by binary search over the requirement codes.
        perm = np.empty(len(forder), np.int64)
        perm[forder] = np.arange(len(forder), dtype=np.int64)
        sid_stream = perm[inverse]
        store._merge_sid0 = sid_stream[0::2].copy()
        store._merge_sid1 = sid_stream[1::2].copy()
    else:
        req_gid = np.zeros(0, np.int64)
        req_kid = np.zeros(0, np.int64)

    # ------------------------------------------------------------------
    # row expansion: each keyed pair becomes the enabled-join-rule tag
    # pattern, each keyless pair the cross pattern
    # ------------------------------------------------------------------
    cnt = np.where(keyed, n_keyed, n_cross).astype(np.int64)
    row_start = np.zeros(P + 1, np.int64)
    np.cumsum(cnt, out=row_start[1:])
    total = int(row_start[-1])
    rep = np.repeat(np.arange(P, dtype=np.int64), cnt)
    off = np.arange(total, dtype=np.int64) - np.repeat(row_start[:-1], cnt)
    pat_len = max(n_keyed, n_cross, 1)
    keyed_pat = np.zeros(pat_len, np.int64)
    keyed_pat[:n_keyed] = keyed_tags
    cross_pat = np.zeros(pat_len, np.int64)
    cross_pat[:n_cross] = cross_tags
    keyed_rep = keyed[rep]
    tag32 = np.where(keyed_rep, keyed_pat[off], cross_pat[off]).astype(np.int32)
    c032 = pl[rep].astype(np.int32)
    c132 = pr[rep].astype(np.int32)
    a32 = np.where(keyed_rep, lk_pair[rep], -1).astype(np.int32)
    b32 = np.where(keyed_rep, rk_pair[rep], -1).astype(np.int32)
    group_row_counts = row_start[pair_start[1:]] - row_start[pair_start[:-1]]
    gid32 = np.repeat(
        np.asarray(join_gids, dtype=np.int64), group_row_counts
    ).astype(np.int32)

    # ------------------------------------------------------------------
    # final assembly: one walk in gid order, splicing vector block
    # slices between the scalar leaf/tower emissions
    # ------------------------------------------------------------------
    tag_col, gid_col = store.tag, store.gid
    c0_col, c1_col = store.c0, store.c1
    a_col, b_col = store.a, store.b
    group_start = store.group_start
    logical_counts = store.logical_counts
    g_tag: list[int] = []
    g_c0: list[int] = []
    g_c1: list[int] = []
    g_a: list[int] = []
    g_b: list[int] = []
    vec_i = 0
    # Contiguous runs of vector groups splice as ONE slice per column:
    # the vector rows are laid out group-major in gid order, so a run of
    # _VEC (and row-less _EMPTY) groups occupies one contiguous span.
    # ``pend0:pend1`` is the span not yet copied into the columns.
    pend0 = pend1 = 0

    def _flush_vec():
        nonlocal pend0
        if pend1 > pend0:
            # memoryview splice: no intermediate bytes copy
            tag_col.frombytes(tag32[pend0:pend1].data.cast("B"))
            gid_col.frombytes(gid32[pend0:pend1].data.cast("B"))
            c0_col.frombytes(c032[pend0:pend1].data.cast("B"))
            c1_col.frombytes(c132[pend0:pend1].data.cast("B"))
            a_col.frombytes(a32[pend0:pend1].data.cast("B"))
            b_col.frombytes(b32[pend0:pend1].data.cast("B"))
        pend0 = pend1

    for (kind, n_logical, payload), group in zip(plan, groups):
        fault_point("implement.columnar", store)
        if checkpoint is not None:
            checkpoint("implement.columnar", len(g_tag))
        group_start.append(len(tag_col) + (pend1 - pend0))
        logical_counts.append(n_logical)
        if kind == _VEC:
            assert int(row_start[pair_start[vec_i]]) == pend1
            pend1 = int(row_start[pair_start[vec_i + 1]])
            vec_i += 1
            continue
        if kind == _EMPTY:
            continue
        _flush_vec()
        g_tag.clear()
        g_c0.clear()
        g_c1.clear()
        g_a.clear()
        g_b.clear()
        if kind == _LEAF:
            _emit_leaf_rows(store, group.gid, g_tag, g_c0, g_c1, g_a, g_b)
        else:
            _emit_tower_rows(
                store, group.gid, payload, g_tag, g_c0, g_c1, g_a, g_b
            )
        tag_col.extend(g_tag)
        gid_col.extend((group.gid,) * len(g_tag))
        c0_col.extend(g_c0)
        c1_col.extend(g_c1)
        a_col.extend(g_a)
        b_col.extend(g_b)
    _flush_vec()
    group_start.append(len(tag_col))
    return req_gid, req_kid
