"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CatalogError(ReproError):
    """Schema or statistics problem (unknown table, duplicate column, ...)."""


class StorageError(ReproError):
    """In-memory storage engine problem (arity mismatch, unknown table)."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class LexerError(SqlError):
    """Invalid token in the SQL input."""


class ParseError(SqlError):
    """SQL input does not conform to the grammar."""


class BindError(SqlError):
    """Name resolution failure (unknown table/column, ambiguous column)."""


class AlgebraError(ReproError):
    """Malformed operator tree or scalar expression."""


class MemoError(ReproError):
    """MEMO structure invariant violation."""


class OptimizerError(ReproError):
    """Optimization failed (no implementation satisfies the requirement...)."""


class PlanSpaceError(ReproError):
    """Plan-space construction, counting, or unranking failure."""


class RankOutOfRangeError(PlanSpaceError):
    """Requested rank is outside ``0..N-1``."""

    def __init__(self, rank: int, count: int):
        self.rank = rank
        self.count = count
        super().__init__(f"rank {rank} out of range for a space of {count} plans")


class BudgetError(ReproError):
    """Base class for budget problems: invalid budget arguments as well
    as budgets exhausted mid-optimization (see the subclasses)."""


class TimeoutExceeded(BudgetError):
    """A wall-clock deadline expired before the work completed."""

    def __init__(self, message: str, deadline_s: float | None = None):
        self.deadline_s = deadline_s
        super().__init__(message)


class ResourceExhausted(BudgetError):
    """A resource ceiling (memo expressions, memory, executor rows) was
    hit before the work completed."""

    def __init__(self, message: str, resource: str | None = None):
        self.resource = resource
        super().__init__(message)


class Cancelled(ReproError):
    """The caller cancelled the operation via a CancellationToken."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class ValidationError(ReproError):
    """The validation harness detected mismatching plan results."""
