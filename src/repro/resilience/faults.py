"""Deterministic fault injection for resilience testing.

Production hot loops call :func:`fault_point` with a *site* name (e.g.
``"explore.batch"``).  In normal operation the call is two attribute
loads and a ``None`` compare — effectively free.  Under
:func:`inject`, a :class:`FaultInjector` counts hits per site and, on
the configured Nth hit, performs the configured action:

``raise``
    raise :class:`InjectedFault` (a plain ``RuntimeError`` subclass on
    purpose: production code must not special-case injected faults, so
    they must not be :class:`~repro.errors.ReproError`);
``delay``
    sleep ``delay_s`` seconds, then continue — models a stall, used to
    prove deadline checkpoints fire even when a phase goes slow;
``corrupt``
    call the site's ``context`` mutator (sites that support corruption
    pass a callable) — models in-flight state damage.

Everything is deterministic: hits are counted per site in call order,
no randomness, so a failing matrix case replays exactly.

The registry below (:data:`FAULT_SITES`) is the contract between the
production code and the test matrix: adding a ``fault_point`` to a hot
loop means adding its name here, and ``tests/resilience`` iterates the
registry so new sites are exercised automatically.

This module lives under ``repro.resilience`` (not ``repro.testing``) so
production modules can import it without dragging test helpers in;
``repro.testing.faults`` re-exports it as the public harness entry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "inject",
]

#: site name -> description.  The resilience test matrix iterates this.
FAULT_SITES: dict[str, str] = {
    "explore.batch": "per-subset during columnar logical store build",
    "explore.object": "per-subset during object-path exploration",
    "implement.columnar": "per-group during columnar physical store build",
    "implement.object": "per-expression during object-path implementation",
    "bestplan.layer": "per join layer / group in the columnar best-plan DP",
    "bestplan.object": "per-group in the object-path best-plan search",
    "implicit.count": "per-phase inside implicit plan-space counting",
    "sampled.batch": "per-batch in the sampled optimizer loop",
    "execute.operator": "per-operator result in the plan executor",
}


class InjectedFault(RuntimeError):
    """Raised by a ``raise``-mode fault.  Deliberately *not* a
    ``ReproError``: resilience code paths must recover from arbitrary
    exceptions, not just the library's own taxonomy."""


@dataclass
class FaultSpec:
    """One armed fault: fire at ``site`` on the ``nth`` hit (1-based)."""

    site: str
    action: str = "raise"  # "raise" | "delay" | "corrupt"
    nth: int = 1
    delay_s: float = 0.0
    corrupt: Callable[[object], None] | None = None

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: "
                + ", ".join(sorted(FAULT_SITES))
            )
        if self.action not in ("raise", "delay", "corrupt"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.action == "corrupt" and self.corrupt is None:
            raise ValueError("corrupt action needs a corrupt callable")


@dataclass
class FaultInjector:
    """Counts fault-point hits and fires armed specs deterministically."""

    specs: tuple[FaultSpec, ...]
    hits: dict[str, int] = field(default_factory=dict)
    fired: list[str] = field(default_factory=list)

    def on_hit(self, site: str, context: object | None) -> None:
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for spec in self.specs:
            if spec.site != site or spec.nth != count:
                continue
            self.fired.append(f"{site}#{count}:{spec.action}")
            if spec.action == "raise":
                raise InjectedFault(f"injected fault at {site} (hit {count})")
            if spec.action == "delay":
                time.sleep(spec.delay_s)
            elif spec.action == "corrupt" and context is not None:
                spec.corrupt(context)  # type: ignore[misc]


#: the currently armed injector; ``None`` in production (the fast path).
_ACTIVE: FaultInjector | None = None


def fault_point(site: str, context: object | None = None) -> None:
    """Production hook.  Free when no injector is armed."""
    injector = _ACTIVE
    if injector is not None:
        injector.on_hit(site, context)


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[FaultInjector]:
    """Arm ``specs`` for the duration of the ``with`` block.

    Nested use is rejected — deterministic replay relies on a single
    counter stream.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("fault injection is already active")
    injector = FaultInjector(specs=tuple(specs))
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
