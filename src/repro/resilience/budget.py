"""Unified optimization budgets and cooperative cancellation.

A :class:`Budget` bounds one optimization attempt along three axes — a
monotonic wall-clock deadline, a memo-expression ceiling, and a process
peak-memory ceiling — and a :class:`CancellationToken` lets another
thread abort it.  Both are consulted through a :class:`BudgetScope`,
whose :meth:`~BudgetScope.checkpoint` is threaded through every hot loop
of the optimizer (exploration subsets, implementation group blocks,
best-plan layers, implicit-count phases, sampled batches).  Checkpoints
are *cooperative*: nothing is interrupted between them, so cancellation
and deadline latency are bounded by the work done between two
checkpoints — batch granularity, never a whole phase.

The contract every checkpointed loop honours:

* a checkpoint either returns or raises one of the budget errors
  (:class:`~repro.errors.Cancelled`,
  :class:`~repro.errors.TimeoutExceeded`,
  :class:`~repro.errors.ResourceExhausted`);
* when it raises, the structure under construction is abandoned — the
  caller must leave shared state (the memo) either untouched, complete,
  or visibly detached (see ``Optimizer._optimize``'s stale-store guard);
* checkpoints are cheap enough to call per batch: one monotonic clock
  read plus two integer compares on the common path.

Budget argument validation is shared (:func:`validate_budget_s`,
:func:`validate_samples`) so the exact and sampled paths reject bad
budgets identically, with the same :class:`~repro.errors.BudgetError`
taxonomy, before any optimization work is spent.
"""

from __future__ import annotations

import math
import threading
import time

from repro.errors import (
    BudgetError,
    Cancelled,
    ResourceExhausted,
    TimeoutExceeded,
)

__all__ = [
    "Budget",
    "BudgetScope",
    "CancellationToken",
    "validate_budget_s",
    "validate_samples",
]


def validate_budget_s(value: float | None, name: str = "budget_s") -> float | None:
    """Validate a wall-clock budget argument (shared by exact and
    sampled paths): ``None`` means unbounded; otherwise it must be a
    positive finite number of seconds."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BudgetError(
            f"{name} must be a number of seconds, got {value!r}"
        )
    if not math.isfinite(value) or value <= 0:
        raise BudgetError(
            f"{name} must be positive and finite, got {value!r}"
        )
    return float(value)


def validate_samples(value: int | None, name: str = "samples") -> int | None:
    """Validate a sample-count budget: ``None`` means rule-driven;
    otherwise a positive integer."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BudgetError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise BudgetError(f"{name} must be positive, got {value}")
    return value


def _positive_int(value: int | None, name: str) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BudgetError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise BudgetError(f"{name} must be positive, got {value}")
    return value


def _peak_rss_mb() -> float | None:
    """Process peak RSS in MiB, or ``None`` where unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss_kb / 1024.0


class CancellationToken:
    """A thread-safe cancellation flag.

    The owner calls :meth:`cancel` (from any thread); the optimization
    observes it at the next checkpoint and raises
    :class:`~repro.errors.Cancelled`.  Tokens are one-shot: once
    cancelled they stay cancelled.
    """

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise Cancelled("operation cancelled by caller")


class Budget:
    """Resource bounds for one optimization attempt.

    ``deadline_s`` is a wall-clock budget measured on the monotonic
    clock from :meth:`start` (so system clock adjustments cannot expire
    or extend it).  ``max_expressions`` bounds the number of memo
    expressions (logical + physical, counted as hot loops report units).
    ``max_memory_mb`` bounds process peak RSS in MiB — a coarse but
    dependable guard against a memo blowing up the heap.
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        max_expressions: int | None = None,
        max_memory_mb: float | None = None,
    ):
        self.deadline_s = validate_budget_s(deadline_s, "deadline_s")
        self.max_expressions = _positive_int(max_expressions, "max_expressions")
        if max_memory_mb is not None:
            validate_budget_s(max_memory_mb, "max_memory_mb")  # positive finite
        self.max_memory_mb = max_memory_mb
        self._started_at: float | None = None
        self._deadline_at: float | None = None
        self.expressions = 0

    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Begin the clock (idempotent: the first call pins the epoch)."""
        if self._started_at is None:
            self._started_at = time.monotonic()
            if self.deadline_s is not None:
                self._deadline_at = self._started_at + self.deadline_s
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    def elapsed_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def remaining_s(self) -> float | None:
        """Seconds left on the deadline (``None`` when unbounded); never
        negative."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def expired(self) -> bool:
        return (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        )

    def reset_expressions(self) -> None:
        """Reset the expression counter (the degradation ladder applies
        the ceiling per tier attempt; the deadline stays global)."""
        self.expressions = 0

    # ------------------------------------------------------------------
    def check(self, site: str = "", units: int = 0) -> None:
        """Raise if any bound is exhausted; account ``units`` expressions."""
        if units:
            self.expressions += units
        deadline_at = self._deadline_at
        if deadline_at is not None and time.monotonic() >= deadline_at:
            raise TimeoutExceeded(
                f"optimization deadline of {self.deadline_s:g}s expired"
                + (f" (at {site})" if site else ""),
                deadline_s=self.deadline_s,
            )
        if (
            self.max_expressions is not None
            and self.expressions > self.max_expressions
        ):
            raise ResourceExhausted(
                f"memo expression ceiling of {self.max_expressions} exceeded "
                f"({self.expressions} seen"
                + (f", at {site})" if site else ")"),
                resource="expressions",
            )
        if self.max_memory_mb is not None:
            rss = _peak_rss_mb()
            if rss is not None and rss > self.max_memory_mb:
                raise ResourceExhausted(
                    f"memory ceiling of {self.max_memory_mb:g} MiB exceeded "
                    f"(peak RSS {rss:.0f} MiB"
                    + (f", at {site})" if site else ")"),
                    resource="memory",
                )


class BudgetScope:
    """What the hot loops actually carry: budget + token + observer.

    ``checkpoint(site, units)`` feeds the observer first (an enabled
    :class:`~repro.obs.metrics.Metrics` registry turns every poll into
    ``<site>.polls``/``<site>.units`` counters — observation rides the
    checkpoints the loops already carry), then raises
    :class:`~repro.errors.Cancelled` (cancellation wins over an expired
    deadline), then delegates to the budget's bound checks.  A scope
    with neither budget, token nor observer is never constructed by
    ``Session`` — callers pass ``None`` and the loops skip the call
    entirely, so the unobserved, unbudgeted path stays byte-identical
    to the historical one.
    """

    __slots__ = ("budget", "token", "observer")

    def __init__(
        self,
        budget: Budget | None = None,
        token: CancellationToken | None = None,
        observer=None,
    ):
        self.budget = budget
        self.token = token
        #: anything with ``record_checkpoint(site, units)``; fed before
        #: the bound checks so cancelled/expired runs are still counted
        self.observer = observer
        if budget is not None:
            budget.start()

    def checkpoint(self, site: str = "", units: int = 0) -> None:
        observer = self.observer
        if observer is not None:
            observer.record_checkpoint(site, units)
        token = self.token
        if token is not None and token.cancelled:
            raise Cancelled(
                "operation cancelled by caller"
                + (f" (at {site})" if site else "")
            )
        if self.budget is not None:
            self.budget.check(site, units)

    def remaining_s(self) -> float | None:
        if self.budget is None:
            return None
        return self.budget.remaining_s()
