"""Deadline-aware resilient optimization.

Public surface:

* :mod:`repro.resilience.budget` — :class:`Budget`,
  :class:`CancellationToken`, :class:`BudgetScope`, shared budget
  argument validators;
* :mod:`repro.resilience.faults` — deterministic fault injection
  (:func:`fault_point`, :func:`inject`, the :data:`FAULT_SITES`
  registry);
* :mod:`repro.resilience.degrade` — the degradation ladder
  (:func:`optimize_resilient`, :class:`DegradationPolicy`,
  :class:`ResilienceReport`);
* :mod:`repro.resilience.heuristic` — the greedy left-deep last-resort
  tier (:func:`optimize_heuristic`).

``degrade`` and ``heuristic`` import the optimizer stack, which itself
imports this package for :func:`fault_point` — so they are exposed
lazily here rather than at import time.
"""

from __future__ import annotations

from repro.resilience.budget import (
    Budget,
    BudgetScope,
    CancellationToken,
    validate_budget_s,
    validate_samples,
)
from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    fault_point,
    inject,
)

__all__ = [
    "Budget",
    "BudgetScope",
    "CancellationToken",
    "DegradationPolicy",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "ResilienceReport",
    "fault_point",
    "inject",
    "optimize_heuristic",
    "optimize_resilient",
    "validate_budget_s",
    "validate_samples",
]

_LAZY = {
    "DegradationPolicy": "repro.resilience.degrade",
    "ResilienceReport": "repro.resilience.degrade",
    "optimize_resilient": "repro.resilience.degrade",
    "optimize_heuristic": "repro.resilience.heuristic",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
