"""The last-resort tier: a greedy left-deep plan, no search.

When every budgeted tier of the degradation ladder has been exhausted
the session still owes the caller an executable plan.  This module
produces one without *any* search: quantifiers are greedily ordered
smallest-estimated-table first (connectivity-permitting, so the
no-cross-products policy is honoured), the initial left-deep memo is
built exactly as the exact path would, and the plan is read out of that
un-explored memo — implementation rules, cardinality annotation, and
the best-plan extraction still run, but over the single join order, so
the whole tier costs milliseconds even on queries whose full search
space takes minutes.

The result is a genuine :class:`~repro.optimizer.optimizer.OptimizationResult`
(``engine="heuristic"``): it renders, costs finitely, and executes
through the same machinery as any exact plan.  No budget is enforced
inside this tier — it must always succeed, and it is cheap enough that
enforcement would only add a failure mode.
"""

from __future__ import annotations

import dataclasses
import time

from repro.catalog.catalog import Catalog
from repro.optimizer.annotate import annotate_cardinalities
from repro.optimizer.bestplan import find_best_plan
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.implementation import implement_memo
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.optimizer import OptimizationResult, OptimizerOptions
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import BoundQuery

__all__ = ["greedy_quantifier_order", "optimize_heuristic"]


def greedy_quantifier_order(
    catalog: Catalog, query: BoundQuery, allow_cross_products: bool
) -> tuple:
    """Quantifiers reordered smallest-table-first, connectivity-first.

    The classic greedy join heuristic: start from the smallest estimated
    base table and repeatedly append the smallest remaining quantifier
    that shares a join predicate with the prefix (falling back to the
    smallest disconnected one when cross products are allowed, or when
    nothing connects — in which case the downstream memo setup reports
    the disconnected graph exactly as the exact path would).
    """
    quantifiers = list(query.quantifiers)
    if len(quantifiers) <= 1:
        return tuple(quantifiers)
    graph = JoinGraph(
        aliases=query.aliases(), conjuncts=list(query.where_conjuncts)
    )

    def rows_of(q) -> float:
        return catalog.table_stats(q.table).row_count

    remaining = sorted(quantifiers, key=lambda q: (rows_of(q), q.alias))
    order = [remaining.pop(0)]
    prefix = graph.mask_of([order[0].alias])
    while remaining:
        pick = None
        if not allow_cross_products or len(remaining) > 1:
            for i, q in enumerate(remaining):
                bit = graph.mask_of([q.alias])
                if graph.applicable_conjuncts_m(prefix, bit):
                    pick = i
                    break
        if pick is None:
            # Nothing connects: take the smallest and let build_initial_memo
            # apply the cross-product policy (error when disallowed).
            pick = 0
        q = remaining.pop(pick)
        order.append(q)
        prefix |= graph.mask_of([q.alias])
    return tuple(order)


def optimize_heuristic(
    catalog: Catalog,
    query: BoundQuery,
    options: OptimizerOptions | None = None,
) -> OptimizationResult:
    """One greedy left-deep plan, costed and executable — no exploration."""
    if options is None:
        options = OptimizerOptions()
    timings: dict[str, float] = {}

    start = time.perf_counter()
    ordered = dataclasses.replace(
        query,
        quantifiers=greedy_quantifier_order(
            catalog, query, options.allow_cross_products
        ),
    )
    setup = build_initial_memo(ordered, options.allow_cross_products)
    memo, graph = setup.memo, setup.graph
    timings["setup"] = time.perf_counter() - start

    # No exploration: the memo holds exactly the greedy join order.  The
    # implementation pass still offers every physical operator for it,
    # and the best-plan DP picks the cheapest — so within the single
    # join shape the plan is optimal.
    start = time.perf_counter()
    implement_memo(
        memo, catalog, options.implementation, root_order=query.order_by
    )
    timings["implement"] = time.perf_counter() - start

    start = time.perf_counter()
    estimator = CardinalityEstimator(catalog, ordered)
    annotate_cardinalities(memo, graph, estimator)
    timings["annotate"] = time.perf_counter() - start

    cost_model = CostModel(catalog, options.cost_params)
    start = time.perf_counter()
    best_plan, best_cost = find_best_plan(
        memo, cost_model, required_order=query.order_by
    )
    timings["bestplan"] = time.perf_counter() - start

    return OptimizationResult(
        memo=memo,
        query=ordered,
        graph=graph,
        best_plan=best_plan,
        best_cost=best_cost,
        root_order=query.order_by,
        cost_model=cost_model,
        estimator=estimator,
        options=options,
        timings=timings,
        engine="heuristic",
        fallback_reason="greedy left-deep tier (no exploration)",
    )
