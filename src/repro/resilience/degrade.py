"""Graceful degradation: exact → sampled → greedy, under one budget.

:func:`optimize_resilient` serves an executable plan from the best tier
the budget allows:

1. **exact** — the full memo-based optimization, given
   ``exact_fraction`` of the remaining deadline (so a too-tight deadline
   leaves room for the fallbacks instead of being consumed whole);
2. **sampled** — stratified sampled optimization with recombination
   (the paper's memo-free engine), given everything still remaining;
3. **heuristic** — the greedy left-deep tier, unbudgeted: it costs
   milliseconds and must always succeed.

Each tier runs under its own child :class:`~repro.resilience.budget.Budget`
carved out of the shared deadline; expression/memory ceilings are
re-applied per tier (a fresh expression counter each attempt — the
deadline alone is global).  A tier that raises any exception — budget,
cancellation, or an arbitrary fault — is recorded and the ladder moves
on; with ``on_budget="raise"`` the first budget error propagates
instead.  Cancellation degrades straight to the heuristic tier (the
sampled tier would observe the same cancelled token at its first
checkpoint), as does a breached *memory* ceiling (peak RSS never
shrinks, so re-trying a cheaper tier under the same ceiling cannot
pass).

Every serve attaches a :class:`ResilienceReport` (served tier, trigger,
per-tier attempts with elapsed times) to the result's ``resilience``
attribute.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import (
    BudgetError,
    Cancelled,
    ResourceExhausted,
    TimeoutExceeded,
)
from repro.obs.trace import phase as obs_phase
from repro.resilience.budget import Budget, BudgetScope, CancellationToken
from repro.sql.binder import BoundQuery

__all__ = ["DegradationPolicy", "ResilienceReport", "TierAttempt", "optimize_resilient"]

#: ladder order; the report's ``tier`` is always one of these
TIERS = ("exact", "sampled", "heuristic")


@dataclass
class TierAttempt:
    """One tier's outcome within a resilient optimization."""

    tier: str
    outcome: str  # "served" | "timeout" | "cancelled" | "resource" | "error" | "skipped"
    elapsed_s: float = 0.0
    detail: str | None = None

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "outcome": self.outcome,
            "elapsed_s": self.elapsed_s,
            "detail": self.detail,
        }


@dataclass
class ResilienceReport:
    """How a budgeted optimization was served."""

    tier: str  # the tier that produced the plan
    trigger: str | None  # why degradation happened; None when exact served
    deadline_s: float | None
    elapsed_s: float
    attempts: list[TierAttempt] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.tier != "exact"

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "trigger": self.trigger,
            "deadline_s": self.deadline_s,
            "elapsed_s": self.elapsed_s,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    def describe(self) -> str:
        deadline = (
            f"{self.deadline_s:g}s deadline"
            if self.deadline_s is not None
            else "no deadline"
        )
        path = " -> ".join(
            f"{a.tier}:{a.outcome}({a.elapsed_s:.2f}s)" for a in self.attempts
        )
        cause = f", trigger {self.trigger}" if self.trigger else ""
        return (
            f"served from the {self.tier} tier under {deadline} "
            f"in {self.elapsed_s:.2f}s{cause} [{path}]"
        )


@dataclass(frozen=True)
class DegradationPolicy:
    """Knobs of the ladder.

    ``exact_fraction`` caps the exact tier's share of the remaining
    deadline so the fallbacks keep a reserve.  ``min_tier_s`` skips the
    sampled tier outright when less wall clock than this remains (its
    space build would only burn the reserve).  ``sampled_seed`` and
    ``sampled_batch_size`` make the sampled tier deterministic and
    checkpoint-friendly.
    """

    exact_fraction: float = 0.5
    min_tier_s: float = 0.02
    sampled_seed: int = 0
    sampled_batch_size: int = 64

    def __post_init__(self):
        if not 0.0 < self.exact_fraction <= 1.0:
            raise BudgetError(
                f"exact_fraction must be in (0, 1], got {self.exact_fraction!r}"
            )


def _classify(exc: BaseException) -> str:
    if isinstance(exc, Cancelled):
        return "cancelled"
    if isinstance(exc, TimeoutExceeded):
        return "timeout"
    if isinstance(exc, ResourceExhausted):
        return "resource"
    return "error"


def _child_scope(
    budget: Budget,
    token: CancellationToken | None,
    deadline_fraction: float | None,
    observer=None,
) -> BudgetScope:
    """A per-tier scope: its own deadline slice and a fresh expression
    counter, sharing the parent's ceilings, the cancellation token, and
    the metrics observer."""
    remaining = budget.remaining_s()
    deadline = None
    if remaining is not None:
        share = remaining if deadline_fraction is None else remaining * deadline_fraction
        # An already-expired parent still yields a constructible child:
        # the first checkpoint raises TimeoutExceeded.
        deadline = max(share, 1e-9)
    child = Budget(
        deadline_s=deadline,
        max_expressions=budget.max_expressions,
        max_memory_mb=budget.max_memory_mb,
    )
    return BudgetScope(child, token, observer=observer)


def optimize_resilient(
    catalog: Catalog,
    query: BoundQuery,
    options=None,
    budget: Budget | None = None,
    token: CancellationToken | None = None,
    on_budget: str = "degrade",
    policy: DegradationPolicy | None = None,
    observer=None,
    ledger=None,
    artifacts=None,
):
    """Optimize under ``budget``; degrade through the tiers as needed.

    Returns an :class:`~repro.optimizer.optimizer.OptimizationResult`
    (exact / heuristic tier) or a
    :class:`~repro.sampledopt.search.SampledOptimizationResult` (sampled
    tier), with ``result.resilience`` set either way.  With
    ``on_budget="raise"`` the first budget error (or cancellation)
    propagates instead of degrading; non-budget faults still degrade —
    a broken tier is not the caller's deadline policy's business.
    ``observer`` (a :class:`~repro.obs.metrics.Metrics` registry) rides
    the per-tier scopes' checkpoints and counts degradation triggers.
    ``ledger`` (a :class:`~repro.obs.feedback.CardinalityLedger`)
    feedback-recosts the exact tier; the sampled and heuristic tiers
    ignore it (their estimators are rebuilt from catalog statistics).
    ``artifacts`` (a :class:`~repro.serving.cache.TemplateArtifacts`
    bundle) likewise feeds the exact tier only — the sampled and
    heuristic tiers never run exploration, so a cached logical template
    buys them nothing.
    """
    # Deferred imports: this module is reachable from repro.resilience,
    # which the optimizer stack imports for fault_point.
    from repro.optimizer.optimizer import Optimizer, OptimizerOptions
    from repro.resilience.heuristic import optimize_heuristic
    from repro.sampledopt.search import SampledOptimizer

    if on_budget not in ("degrade", "raise"):
        raise BudgetError(
            f'on_budget must be "degrade" or "raise", got {on_budget!r}'
        )
    if options is None:
        options = OptimizerOptions()
    if budget is None:
        budget = Budget()
    if policy is None:
        policy = DegradationPolicy()
    budget.start()

    attempts: list[TierAttempt] = []
    trigger: str | None = None
    skip_sampled_reason: str | None = None

    def finish(result, tier: str, tier_started: float):
        attempts.append(
            TierAttempt(
                tier=tier,
                outcome="served",
                elapsed_s=time.perf_counter() - tier_started,
            )
        )
        result.resilience = ResilienceReport(
            tier=tier,
            trigger=trigger,
            deadline_s=budget.deadline_s,
            elapsed_s=budget.elapsed_s(),
            attempts=attempts,
        )
        return result

    # ------------------------------------------------------------ exact
    started = time.perf_counter()
    has_fallback_budget = budget.deadline_s is not None
    scope = _child_scope(
        budget,
        token,
        policy.exact_fraction if has_fallback_budget else None,
        observer,
    )
    try:
        with obs_phase("tier.exact"):
            result = Optimizer(catalog, options).optimize(
                query, scope=scope, ledger=ledger, artifacts=artifacts
            )
    except Exception as exc:
        outcome = _classify(exc)
        if on_budget == "raise" and isinstance(exc, (BudgetError, Cancelled)):
            raise
        attempts.append(
            TierAttempt(
                tier="exact",
                outcome=outcome,
                elapsed_s=time.perf_counter() - started,
                detail=repr(exc),
            )
        )
        trigger = outcome
        if observer is not None:
            observer.inc("degrade.triggers")
        if outcome == "cancelled":
            skip_sampled_reason = "cancellation token is set"
        elif (
            isinstance(exc, ResourceExhausted) and exc.resource == "memory"
        ):
            skip_sampled_reason = "peak RSS already over the ceiling"
    else:
        return finish(result, "exact", started)

    # ---------------------------------------------------------- sampled
    started = time.perf_counter()
    remaining = budget.remaining_s()
    if skip_sampled_reason is None and remaining is not None:
        if remaining < policy.min_tier_s:
            skip_sampled_reason = (
                f"{remaining:.3f}s left, under the {policy.min_tier_s:g}s floor"
            )
    if skip_sampled_reason is not None:
        attempts.append(
            TierAttempt(
                tier="sampled", outcome="skipped", detail=skip_sampled_reason
            )
        )
    else:
        scope = _child_scope(budget, token, None, observer)
        try:
            with obs_phase("tier.sampled"):
                result = SampledOptimizer(catalog, options).optimize(
                    query,
                    budget_s=remaining,
                    seed=policy.sampled_seed,
                    batch_size=policy.sampled_batch_size,
                    stratified=True,
                    scope=scope,
                )
        except Exception as exc:
            outcome = _classify(exc)
            if on_budget == "raise" and isinstance(exc, (BudgetError, Cancelled)):
                raise
            attempts.append(
                TierAttempt(
                    tier="sampled",
                    outcome=outcome,
                    elapsed_s=time.perf_counter() - started,
                    detail=repr(exc),
                )
            )
            trigger = outcome
            if observer is not None:
                observer.inc("degrade.triggers")
        else:
            return finish(result, "sampled", started)

    # -------------------------------------------------------- heuristic
    # Unbudgeted by design: always serves.
    started = time.perf_counter()
    with obs_phase("tier.heuristic"):
        result = optimize_heuristic(catalog, query, options)
    return finish(result, "heuristic", started)
