"""SQL front end (system S4).

A small SQL dialect sufficient for the paper's evaluation queries:
``SELECT`` lists with arithmetic and aggregates, multi-table ``FROM`` with
aliases, conjunctive ``WHERE`` (with ``BETWEEN``/``LIKE``/``IN``),
``GROUP BY``, ``ORDER BY`` — plus the paper's Section 4 language extension
``OPTION (USEPLAN n)`` that forces execution of plan number ``n``.
"""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.ast import (
    QueryOptions,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.parser import Parser, parse
from repro.sql.binder import Binder, BoundQuery, Quantifier, bind

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "QueryOptions",
    "SelectItem",
    "SelectStatement",
    "TableRef",
    "Parser",
    "parse",
    "Binder",
    "BoundQuery",
    "Quantifier",
    "bind",
]
