"""Recursive-descent parser for the SELECT dialect.

Grammar (informal)::

    query      :=  SELECT select_list FROM from_list
                   [WHERE expr] [GROUP BY columns] [ORDER BY columns]
                   [OPTION '(' USEPLAN integer ')']
    select_list := '*' | select_item (',' select_item)*
    select_item := expr [AS ident]
    from_list  :=  table_ref (',' table_ref)*
    table_ref  :=  ident [[AS] ident]
    expr       :=  or_expr
    or_expr    :=  and_expr (OR and_expr)*
    and_expr   :=  not_expr (AND not_expr)*
    not_expr   :=  [NOT] predicate
    predicate  :=  additive [comp additive | [NOT] BETWEEN additive AND additive
                   | [NOT] LIKE string | [NOT] IN '(' literals ')'
                   | IS [NOT] NULL]
    additive   :=  term (('+'|'-') term)*
    term       :=  factor (('*'|'/') factor)*
    factor     :=  '-' factor | primary
    primary    :=  literal | column | aggregate | '(' expr ')'
    aggregate  :=  (SUM|COUNT|AVG|MIN|MAX) '(' ('*' | expr) ')'
    column     :=  ident ['.' ident]
"""

from __future__ import annotations

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    Scalar,
    UnaryMinus,
)
from repro.errors import ParseError
from repro.sql.ast import (
    OrderItem,
    QueryOptions,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = ["Parser", "parse"]

_COMP_OPS = {
    "=": CompOp.EQ,
    "<>": CompOp.NE,
    "<": CompOp.LT,
    "<=": CompOp.LE,
    ">": CompOp.GT,
    ">=": CompOp.GE,
}

_AGG_FUNCS = {
    "SUM": AggFunc.SUM,
    "COUNT": AggFunc.COUNT,
    "AVG": AggFunc.AVG,
    "MIN": AggFunc.MIN,
    "MAX": AggFunc.MAX,
}


class Parser:
    """Parses one SELECT statement from a token stream."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word}, found {token.value!r}")
        return self._advance()

    def _expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != punct:
            raise self._error(f"expected {punct!r}, found {token.value!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {token.value!r}")
        return self._advance().value

    def _match_keyword(self, *words: str) -> Token | None:
        token = self._peek()
        for word in words:
            if token.is_keyword(word):
                return self._advance()
        return None

    def _match_punct(self, punct: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == punct:
            return self._advance()
        return None

    def _match_operator(self, *ops: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    # ------------------------------------------------------------------
    # statement
    # ------------------------------------------------------------------
    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        select_items = self._parse_select_list()
        self._expect_keyword("FROM")
        from_tables = self._parse_from_list()

        where: Scalar | None = None
        if self._match_keyword("WHERE"):
            where = self.parse_expr()

        group_by: tuple[ColumnId, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(item.column for item in self._parse_column_list())

        order_by: tuple[OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_column_list()

        options = self._parse_options()

        token = self._peek()
        if token.type is not TokenType.EOF:
            raise self._error(f"unexpected trailing input {token.value!r}")
        return SelectStatement(
            select_items=select_items,
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            order_by=order_by,
            options=options,
        )

    def _parse_select_list(self) -> tuple[SelectItem, ...]:
        if self._match_operator("*"):
            return (SelectItem(expr=None, star=True),)
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias: str | None = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_from_list(self) -> tuple[TableRef, ...]:
        tables = [self._parse_table_ref()]
        while self._match_punct(","):
            tables.append(self._parse_table_ref())
        return tuple(tables)

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_ident()
        alias: str | None = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(table=table, alias=alias)

    def _parse_column_list(self) -> tuple[OrderItem, ...]:
        items = [OrderItem(self._parse_column_id())]
        while self._match_punct(","):
            items.append(OrderItem(self._parse_column_id()))
        return tuple(items)

    def _parse_column_id(self) -> ColumnId:
        first = self._expect_ident()
        if self._match_punct("."):
            second = self._expect_ident()
            return ColumnId(alias=first, column=second)
        return ColumnId(alias="", column=first)

    def _parse_options(self) -> QueryOptions:
        if not self._match_keyword("OPTION"):
            return QueryOptions()
        self._expect_punct("(")
        self._expect_keyword("USEPLAN")
        token = self._peek()
        if token.type is not TokenType.INTEGER:
            raise self._error(
                f"USEPLAN expects an integer plan number, found {token.value!r}"
            )
        self._advance()
        self._expect_punct(")")
        return QueryOptions(useplan=int(token.value))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> Scalar:
        return self._parse_or()

    def _parse_or(self) -> Scalar:
        args = [self._parse_and()]
        while self._match_keyword("OR"):
            args.append(self._parse_and())
        if len(args) == 1:
            return args[0]
        return BoolExpr(BoolOp.OR, tuple(args))

    def _parse_and(self) -> Scalar:
        args = [self._parse_not()]
        while self._match_keyword("AND"):
            args.append(self._parse_not())
        if len(args) == 1:
            return args[0]
        return BoolExpr(BoolOp.AND, tuple(args))

    def _parse_not(self) -> Scalar:
        if self._match_keyword("NOT"):
            return BoolExpr(BoolOp.NOT, (self._parse_not(),))
        return self._parse_predicate()

    def _parse_predicate(self) -> Scalar:
        left = self._parse_additive()

        negated = bool(self._match_keyword("NOT"))

        op_token = self._match_operator(*(_COMP_OPS.keys()))
        if op_token is not None:
            if negated:
                raise self._error("NOT must precede BETWEEN/LIKE/IN here")
            right = self._parse_additive()
            return Comparison(_COMP_OPS[op_token.value], left, right)

        if self._match_keyword("BETWEEN"):
            lo = self._parse_additive()
            self._expect_keyword("AND")
            hi = self._parse_additive()
            between = BoolExpr(
                BoolOp.AND,
                (
                    Comparison(CompOp.GE, left, lo),
                    Comparison(CompOp.LE, left, hi),
                ),
            )
            if negated:
                return BoolExpr(BoolOp.NOT, (between,))
            return between

        if self._match_keyword("LIKE"):
            token = self._peek()
            if token.type is not TokenType.STRING:
                raise self._error("LIKE expects a string pattern")
            self._advance()
            return Like(left, token.value, negated=negated)

        if self._match_keyword("IN"):
            self._expect_punct("(")
            values = [self._parse_literal_value()]
            while self._match_punct(","):
                values.append(self._parse_literal_value())
            self._expect_punct(")")
            return InList(left, tuple(values), negated=negated)

        if self._match_keyword("IS"):
            is_not = bool(self._match_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, negated=is_not)

        if negated:
            raise self._error("expected BETWEEN, LIKE, or IN after NOT")
        return left

    def _parse_literal_value(self) -> int | float | str:
        token = self._peek()
        if token.type is TokenType.INTEGER:
            self._advance()
            return int(token.value)
        if token.type is TokenType.FLOAT:
            self._advance()
            return float(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        raise self._error(f"expected a literal, found {token.value!r}")

    def _parse_additive(self) -> Scalar:
        left = self._parse_term()
        while True:
            token = self._match_operator("+", "-")
            if token is None:
                return left
            right = self._parse_term()
            left = Arithmetic(token.value, left, right)

    def _parse_term(self) -> Scalar:
        left = self._parse_factor()
        while True:
            token = self._match_operator("*", "/")
            if token is None:
                return left
            right = self._parse_factor()
            left = Arithmetic(token.value, left, right)

    def _parse_factor(self) -> Scalar:
        if self._match_operator("-"):
            return UnaryMinus(self._parse_factor())
        return self._parse_primary()

    def _parse_primary(self) -> Scalar:
        token = self._peek()

        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)

        if token.type is TokenType.KEYWORD and token.value in _AGG_FUNCS:
            func = _AGG_FUNCS[self._advance().value]
            self._expect_punct("(")
            if self._match_operator("*"):
                call = AggregateCall(func, None)
            else:
                call = AggregateCall(func, self.parse_expr())
            self._expect_punct(")")
            return call

        if token.type is TokenType.KEYWORD and token.value == "NULL":
            self._advance()
            return Literal(None)

        if self._match_punct("("):
            inner = self.parse_expr()
            self._expect_punct(")")
            return inner

        if token.type is TokenType.IDENT:
            return ColumnRef(self._parse_column_id())

        raise self._error(f"unexpected token {token.value!r} in expression")


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse_statement()
