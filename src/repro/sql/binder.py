"""Name resolution: parsed statement + catalog -> bound query.

The binder

* resolves FROM entries against the catalog and assigns unique aliases;
* qualifies every column reference (resolving unqualified names to the
  unique table that has the column, SQL-style);
* pushes single-table WHERE conjuncts down to their range variable and
  keeps the remaining conjuncts as join/residual predicates;
* classifies the query as aggregate or plain projection and validates the
  SELECT list against the GROUP BY clause.

The result, :class:`BoundQuery`, is the optimizer's input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import (
    AggregateCall,
    Arithmetic,
    BoolExpr,
    ColumnId,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Scalar,
    UnaryMinus,
    make_conjunction,
    split_conjuncts,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.errors import BindError
from repro.sql.ast import QueryOptions, SelectStatement

__all__ = ["Quantifier", "BoundQuery", "Binder", "bind"]


@dataclass(frozen=True)
class Quantifier:
    """One range variable: an alias ranging over a base table."""

    alias: str
    schema: TableSchema

    @property
    def table(self) -> str:
        return self.schema.name


@dataclass
class BoundQuery:
    """A fully resolved query, ready for optimization.

    ``where_conjuncts`` holds only multi-table conjuncts (join edges and
    residual predicates); single-table conjuncts have been pushed into
    ``pushed_filters``.
    """

    quantifiers: tuple[Quantifier, ...]
    pushed_filters: dict[str, Scalar | None]
    where_conjuncts: tuple[Scalar, ...]
    select_outputs: tuple[tuple[str, Scalar], ...]
    group_by: tuple[ColumnId, ...]
    aggregates: tuple[tuple[str, AggregateCall], ...]
    order_by: tuple[ColumnId, ...]
    options: QueryOptions = field(default_factory=QueryOptions)

    @property
    def is_aggregate_query(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by)

    def quantifier(self, alias: str) -> Quantifier:
        for quantifier in self.quantifiers:
            if quantifier.alias == alias:
                return quantifier
        raise BindError(f"unknown alias {alias!r}")

    def aliases(self) -> frozenset[str]:
        return frozenset(q.alias for q in self.quantifiers)


def _rewrite(expr: Scalar, resolve) -> Scalar:
    """Rebuild ``expr`` with every ColumnRef passed through ``resolve``."""
    if isinstance(expr, ColumnRef):
        return ColumnRef(resolve(expr.column_id))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, _rewrite(expr.left, resolve), _rewrite(expr.right, resolve)
        )
    if isinstance(expr, BoolExpr):
        return BoolExpr(expr.op, tuple(_rewrite(a, resolve) for a in expr.args))
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op, _rewrite(expr.left, resolve), _rewrite(expr.right, resolve)
        )
    if isinstance(expr, UnaryMinus):
        return UnaryMinus(_rewrite(expr.arg, resolve))
    if isinstance(expr, Like):
        return Like(_rewrite(expr.arg, resolve), expr.pattern, expr.negated)
    if isinstance(expr, InList):
        return InList(_rewrite(expr.arg, resolve), expr.values, expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_rewrite(expr.arg, resolve), expr.negated)
    if isinstance(expr, AggregateCall):
        arg = None if expr.arg is None else _rewrite(expr.arg, resolve)
        return AggregateCall(expr.func, arg)
    raise BindError(f"cannot bind expression node {type(expr).__name__}")


def _contains_aggregate(expr: Scalar) -> bool:
    if isinstance(expr, AggregateCall):
        return True
    return any(_contains_aggregate(child) for child in expr.children())


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    def bind(self, statement: SelectStatement) -> BoundQuery:
        quantifiers = self._bind_from(statement)
        by_alias = {q.alias: q for q in quantifiers}

        def resolve(column_id: ColumnId) -> ColumnId:
            return self._resolve_column(column_id, by_alias)

        where = (
            None if statement.where is None else _rewrite(statement.where, resolve)
        )
        pushed, join_conjuncts = self._place_conjuncts(where, by_alias)

        group_by = tuple(resolve(c) for c in statement.group_by)
        select_outputs, aggregates = self._bind_select(
            statement, resolve, group_by, quantifiers
        )
        order_by = self._bind_order_by(statement, resolve, select_outputs)

        return BoundQuery(
            quantifiers=quantifiers,
            pushed_filters=pushed,
            where_conjuncts=tuple(join_conjuncts),
            select_outputs=select_outputs,
            group_by=group_by,
            aggregates=aggregates,
            order_by=order_by,
            options=statement.options,
        )

    # ------------------------------------------------------------------
    def _bind_from(self, statement: SelectStatement) -> tuple[Quantifier, ...]:
        if not statement.from_tables:
            raise BindError("FROM list must not be empty")
        quantifiers: list[Quantifier] = []
        seen: set[str] = set()
        for ref in statement.from_tables:
            if not self.catalog.has_table(ref.table):
                raise BindError(f"unknown table {ref.table!r}")
            alias = ref.effective_alias().lower()
            if alias in seen:
                raise BindError(f"duplicate range variable {alias!r}")
            seen.add(alias)
            quantifiers.append(Quantifier(alias=alias, schema=self.catalog.table(ref.table)))
        return tuple(quantifiers)

    def _resolve_column(
        self, column_id: ColumnId, by_alias: dict[str, Quantifier]
    ) -> ColumnId:
        name = column_id.column.lower()
        if column_id.alias:
            alias = column_id.alias.lower()
            quantifier = by_alias.get(alias)
            if quantifier is None:
                raise BindError(f"unknown range variable {column_id.alias!r}")
            if not quantifier.schema.has_column(name):
                raise BindError(
                    f"table {quantifier.table!r} (alias {alias!r}) has no column {name!r}"
                )
            return ColumnId(alias=alias, column=name)
        candidates = [
            q for q in by_alias.values() if q.schema.has_column(name)
        ]
        if not candidates:
            raise BindError(f"unknown column {column_id.column!r}")
        if len(candidates) > 1:
            aliases = ", ".join(sorted(q.alias for q in candidates))
            raise BindError(
                f"ambiguous column {column_id.column!r} (candidates: {aliases})"
            )
        return ColumnId(alias=candidates[0].alias, column=name)

    # ------------------------------------------------------------------
    def _place_conjuncts(
        self, where: Scalar | None, by_alias: dict[str, Quantifier]
    ) -> tuple[dict[str, Scalar | None], list[Scalar]]:
        pushed_lists: dict[str, list[Scalar]] = {alias: [] for alias in by_alias}
        join_conjuncts: list[Scalar] = []
        for conjunct in split_conjuncts(where):
            if _contains_aggregate(conjunct):
                raise BindError("aggregate functions are not allowed in WHERE")
            aliases = {c.alias for c in conjunct.references()}
            if len(aliases) == 1:
                pushed_lists[next(iter(aliases))].append(conjunct)
            else:
                # Multi-table conjuncts (and degenerate constant predicates)
                # stay above the scans.
                join_conjuncts.append(conjunct)
        pushed: dict[str, Scalar | None] = {
            alias: make_conjunction(conjuncts)
            for alias, conjuncts in pushed_lists.items()
        }
        return pushed, join_conjuncts

    # ------------------------------------------------------------------
    def _bind_select(
        self,
        statement: SelectStatement,
        resolve,
        group_by: tuple[ColumnId, ...],
        quantifiers: tuple[Quantifier, ...],
    ) -> tuple[tuple[tuple[str, Scalar], ...], tuple[tuple[str, AggregateCall], ...]]:
        outputs: list[tuple[str, Scalar]] = []
        aggregates: list[tuple[str, AggregateCall]] = []
        used_names: set[str] = set()

        def fresh_name(base: str) -> str:
            name = base
            suffix = 1
            while name in used_names:
                suffix += 1
                name = f"{base}_{suffix}"
            used_names.add(name)
            return name

        items = statement.select_items
        if len(items) == 1 and items[0].star:
            for quantifier in quantifiers:
                for column in quantifier.schema.columns:
                    name = fresh_name(column.name)
                    outputs.append(
                        (name, ColumnRef(ColumnId(quantifier.alias, column.name)))
                    )
            if group_by:
                raise BindError("SELECT * cannot be combined with GROUP BY")
            return tuple(outputs), ()

        any_aggregate = any(
            item.expr is not None and _contains_aggregate(item.expr) for item in items
        )
        is_aggregate_query = any_aggregate or bool(group_by)

        for position, item in enumerate(items):
            if item.star:
                raise BindError("'*' must be the only select item")
            expr = _rewrite(item.expr, resolve)
            if isinstance(expr, AggregateCall):
                if expr.arg is not None and _contains_aggregate(expr.arg):
                    raise BindError("nested aggregate functions are not allowed")
                name = fresh_name(item.alias or f"agg_{position + 1}")
                aggregates.append((name, expr))
                outputs.append((name, ColumnRef(ColumnId("", name))))
                continue
            if _contains_aggregate(expr):
                raise BindError(
                    "aggregates must be top-level select items "
                    "(arithmetic over aggregates is not supported)"
                )
            if is_aggregate_query:
                if not isinstance(expr, ColumnRef) or expr.column_id not in group_by:
                    raise BindError(
                        f"select item {expr.render()!r} must be a GROUP BY column "
                        "in an aggregate query"
                    )
            base = item.alias or (
                expr.column_id.column if isinstance(expr, ColumnRef) else f"col_{position + 1}"
            )
            outputs.append((fresh_name(base), expr))

        if is_aggregate_query and not aggregates:
            raise BindError("GROUP BY query must compute at least one aggregate")
        return tuple(outputs), tuple(aggregates)

    # ------------------------------------------------------------------
    def _bind_order_by(
        self,
        statement: SelectStatement,
        resolve,
        select_outputs: tuple[tuple[str, Scalar], ...],
    ) -> tuple[ColumnId, ...]:
        """ORDER BY entries always bind to *output* columns.

        The final plan operator is a projection, so the root Sort enforcer
        can only sort on columns the projection emits.  A base column in
        ORDER BY therefore has to appear in the select list (directly or
        via an alias); anything else is an error.
        """
        names = {name for name, _ in select_outputs}
        base_to_output = {
            expr.column_id: name
            for name, expr in select_outputs
            if isinstance(expr, ColumnRef)
        }
        order: list[ColumnId] = []
        for item in statement.order_by:
            if not item.column.alias and item.column.column in names:
                order.append(ColumnId("", item.column.column))
                continue
            resolved = resolve(item.column)
            output_name = base_to_output.get(resolved)
            if output_name is None:
                raise BindError(
                    f"ORDER BY column {item.column.render()!r} must appear "
                    "in the select list"
                )
            order.append(ColumnId("", output_name))
        return tuple(order)


def bind(statement: SelectStatement, catalog: Catalog) -> BoundQuery:
    """Bind ``statement`` against ``catalog``."""
    return Binder(catalog).bind(statement)
