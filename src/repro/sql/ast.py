"""Abstract syntax for SELECT statements.

Expressions inside the AST reuse the algebra's :class:`Scalar` nodes with
*unbound* column references (``ColumnId`` whose alias may be empty when the
query text left the column unqualified); the binder resolves them in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import ColumnId, Scalar

__all__ = ["TableRef", "SelectItem", "QueryOptions", "SelectStatement", "OrderItem"]


@dataclass(frozen=True)
class TableRef:
    """One entry of the FROM list: a table with an optional alias."""

    table: str
    alias: str | None = None

    def effective_alias(self) -> str:
        return self.alias if self.alias else self.table


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list; ``alias`` is the AS name if given,
    ``star`` marks ``SELECT *``."""

    expr: Scalar | None
    alias: str | None = None
    star: bool = False


@dataclass(frozen=True)
class OrderItem:
    """One entry of the ORDER BY list (ascending only)."""

    column: ColumnId


@dataclass(frozen=True)
class QueryOptions:
    """The paper's SQL extension: ``OPTION (USEPLAN n)`` selects plan ``n``
    out of the counted space for execution (Section 4)."""

    useplan: int | None = None

    def render(self) -> str:
        if self.useplan is None:
            return ""
        return f" OPTION (USEPLAN {self.useplan})"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed, unbound SELECT statement."""

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: Scalar | None = None
    group_by: tuple[ColumnId, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    options: QueryOptions = field(default_factory=QueryOptions)
