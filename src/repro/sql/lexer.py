"""SQL lexer: text -> token stream, with line/column tracking."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError

__all__ = ["TokenType", "Token", "Lexer", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"  # = <> < <= > >= + - * /
    PUNCT = "punct"  # ( ) , .
    EOF = "eof"


#: Reserved words, stored uppercase.  Anything else is an identifier.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "OPTION",
        "AS", "AND", "OR", "NOT", "BETWEEN", "LIKE", "IN", "IS", "NULL",
        "USEPLAN", "ASC", "DESC", "DISTINCT",
        "SUM", "COUNT", "AVG", "MIN", "MAX",
    }
)

_OPERATORS = ("<>", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "!=")
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{self.type.value}:{self.value!r}@{self.line}:{self.column}"


class Lexer:
    """A hand-rolled single-pass lexer."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", line, column)
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch == "'":
            return self._lex_string(line, column)
        for op in _OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                value = "<>" if op == "!=" else op
                return Token(TokenType.OPERATOR, value, line, column)
        if ch in _PUNCT:
            self._advance()
            return Token(TokenType.PUNCT, ch, line, column)
        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENT, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start : self.pos]
        return Token(
            TokenType.FLOAT if is_float else TokenType.INTEGER, text, line, column
        )

    def _lex_string(self, line: int, column: int) -> Token:
        # Opening quote.
        self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexerError("unterminated string literal", line, column)
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.STRING, "".join(parts), line, column)
            parts.append(ch)
            self._advance()


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into a token list ending with an EOF token."""
    return Lexer(text).tokens()
