"""Row schemas: which columns a plan node's output rows carry, in order."""

from __future__ import annotations

from repro.algebra.expressions import ColumnId
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.optimizer.plan import PlanNode

__all__ = ["output_schema", "schema_positions"]

RowSchema = tuple[ColumnId, ...]


def output_schema(plan: PlanNode, catalog: Catalog) -> RowSchema:
    """The ordered column ids of ``plan``'s output rows."""
    op = plan.op

    if isinstance(op, (TableScan, IndexScan)):
        schema = catalog.table(op.table)
        return tuple(ColumnId(op.alias, col.name) for col in schema.columns)

    if isinstance(op, (PhysicalFilter, Sort)):
        return output_schema(plan.children[0], catalog)

    if isinstance(op, (NestedLoopJoin, HashJoin, MergeJoin)):
        left = output_schema(plan.children[0], catalog)
        right = output_schema(plan.children[1], catalog)
        return left + right

    if isinstance(op, IndexNestedLoopJoin):
        outer = output_schema(plan.children[0], catalog)
        inner_schema = catalog.table(op.inner_table)
        inner = tuple(
            ColumnId(op.inner_alias, col.name) for col in inner_schema.columns
        )
        return outer + inner

    if isinstance(op, (HashAggregate, StreamAggregate)):
        return tuple(op.group_by) + tuple(
            ColumnId("", name) for name, _ in op.aggregates
        )

    if isinstance(op, PhysicalProject):
        return tuple(ColumnId("", name) for name, _ in op.outputs)

    raise ExecutionError(f"no output schema rule for operator {op.name}")


def schema_positions(schema: RowSchema) -> dict[ColumnId, int]:
    return {column: i for i, column in enumerate(schema)}
