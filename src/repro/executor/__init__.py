"""The execution engine (system S9).

Executes physical plans against an in-memory :class:`~repro.storage.Database`.
Every physical operator the optimizer can emit has an implementation here;
the paper's verification methodology (Section 4) depends on *all* plans of
a query being executable, not just the optimizer's favourite.
"""

from repro.executor.scalar import compile_scalar, like_matcher
from repro.executor.schema import output_schema, schema_positions
from repro.executor.executor import PlanExecutor, QueryResult, execute_plan

__all__ = [
    "compile_scalar",
    "like_matcher",
    "output_schema",
    "schema_positions",
    "PlanExecutor",
    "QueryResult",
    "execute_plan",
]
