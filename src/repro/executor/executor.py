"""Plan execution.

A straightforward materializing executor: each operator consumes its
children's row lists and produces its own.  At the micro data scale used
for validation, materialization is simpler and just as fast as a pull
iterator pipeline, and it keeps the merge-join and aggregate logic easy
to audit — which matters, since the validation harness's whole point is
that independent implementations cross-check each other.

``PlanExecutor`` can optionally *verify* the sort-order contracts of
merge join and stream aggregate at runtime (``check_orders=True``): if
the optimizer ever wires an unsorted child below an order-requiring
operator, execution fails loudly instead of silently producing wrong
results.  This is the kind of defect the paper's methodology is designed
to expose.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.algebra.expressions import AggFunc, AggregateCall, ColumnId
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.errors import ExecutionError, ResourceExhausted
from repro.executor.scalar import compile_predicate, compile_scalar
from repro.obs.analyze import ExecutionStats, OperatorStats
from repro.resilience.faults import fault_point
from repro.executor.schema import RowSchema, output_schema
from repro.optimizer.plan import PlanNode
from repro.storage.database import Database

__all__ = ["QueryResult", "PlanExecutor", "execute_plan"]


@dataclass
class QueryResult:
    """Rows plus column names, as a client would see them.

    ``stats`` is populated only by an instrumented execution
    (``collect_stats=True``): a tree of per-operator
    :class:`~repro.obs.analyze.OperatorStats` — rows in/out, wall time,
    actual cardinality — mirroring the executed plan.
    """

    columns: list[str]
    rows: list[tuple]
    stats: ExecutionStats | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order (for order-insensitive comparison)."""
        return sorted(self.rows, key=repr)

    def render(self, limit: int = 20) -> str:
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        for row in self.rows[:limit]:
            lines.append(" | ".join(str(v) for v in row))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


def _column_label(column: ColumnId) -> str:
    return column.column if not column.alias else f"{column.alias}.{column.column}"


class _Accumulator:
    """State for one aggregate call within one group."""

    __slots__ = ("func", "count", "total", "minimum", "maximum")

    def __init__(self, func: AggFunc):
        self.func = func
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def add(self, value) -> None:
        if value is None:
            return
        self.count += 1
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self.total += value
        elif self.func is AggFunc.MIN:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func is AggFunc.MAX:
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self):
        if self.func is AggFunc.COUNT:
            return self.count
        if self.count == 0:
            return None
        if self.func is AggFunc.SUM:
            return self.total
        if self.func is AggFunc.AVG:
            return self.total / self.count
        if self.func is AggFunc.MIN:
            return self.minimum
        return self.maximum


class PlanExecutor:
    """Executes physical plans against a database."""

    def __init__(
        self,
        database: Database,
        check_orders: bool = False,
        max_rows: int | None = None,
    ):
        self.database = database
        self.catalog = database.catalog
        self.check_orders = check_orders
        #: runaway guard: no operator may produce more than this many
        #: rows (``None`` = unbounded); a cross-product explosion raises
        #: ResourceExhausted instead of eating the heap
        self.max_rows = max_rows
        #: per-operator stats collection: ``None`` on the fast path, a
        #: stack of open :class:`OperatorStats` frames while instrumented
        self._stats_stack: list[OperatorStats] | None = None
        self._root_stats: OperatorStats | None = None
        #: optional :class:`repro.resilience.budget.BudgetScope` polled
        #: once per operator result (the ``execute.operator`` site —
        #: budget ceilings, cancellation, and metrics observers all ride
        #: the same checkpoint); ``None`` keeps the fast path bare
        self._scope = None

    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PlanNode,
        max_rows: int | None = None,
        collect_stats: bool = False,
        scope=None,
    ) -> QueryResult:
        """Execute ``plan``.  ``collect_stats=True`` additionally times
        every operator and records rows in/out (the EXPLAIN ANALYZE
        raw material) on the result's ``stats``.  ``scope`` threads a
        budget/metrics scope through the per-operator
        ``execute.operator`` checkpoint."""
        stats = None
        if collect_stats:
            self._stats_stack = []
            self._root_stats = None
        self._scope = scope
        started = time.perf_counter()
        try:
            if max_rows is not None:
                previous = self.max_rows
                self.max_rows = max_rows
                try:
                    schema, rows = self._run(plan)
                finally:
                    self.max_rows = previous
            else:
                schema, rows = self._run(plan)
            if collect_stats:
                stats = ExecutionStats(
                    root=self._root_stats,
                    wall_s=time.perf_counter() - started,
                )
        finally:
            self._scope = None
            if collect_stats:
                self._stats_stack = None
                self._root_stats = None
        return QueryResult(
            columns=[_column_label(c) for c in schema], rows=rows, stats=stats
        )

    # ------------------------------------------------------------------
    def _run(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        """One operator, through the stats collector when instrumented."""
        stack = self._stats_stack
        if stack is None:
            return self._run_guarded(plan)
        frame = OperatorStats(
            op=plan.op.name,
            detail=plan.op.render(),
            group_id=plan.group_id,
            est_rows=plan.cardinality,
        )
        if stack:
            stack[-1].children.append(frame)
        else:
            self._root_stats = frame
        stack.append(frame)
        started = time.perf_counter()
        try:
            schema, rows = self._run_guarded(plan)
        finally:
            frame.wall_s = time.perf_counter() - started
            stack.pop()
        frame.actual_rows = len(rows)
        return schema, rows

    def _run_guarded(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        """Dispatch one operator, then apply the per-operator guards:
        the injected-fault hook and the row-ceiling check.  Recursive
        calls for children come back through ``_run``, so the ceiling
        bounds every intermediate result, not just the root's."""
        schema, rows = self._dispatch(plan)
        fault_point("execute.operator", rows)
        scope = self._scope
        if scope is not None:
            scope.checkpoint("execute.operator", len(rows))
        max_rows = self.max_rows
        if max_rows is not None and len(rows) > max_rows:
            raise ResourceExhausted(
                f"operator {plan.op.name} produced {len(rows)} rows, "
                f"over the ceiling of {max_rows}",
                resource="rows",
            )
        return schema, rows

    def _dispatch(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        op = plan.op
        if isinstance(op, (TableScan, IndexScan)):
            return self._run_scan(plan)
        if isinstance(op, PhysicalFilter):
            return self._run_filter(plan)
        if isinstance(op, NestedLoopJoin):
            return self._run_nested_loop(plan)
        if isinstance(op, HashJoin):
            return self._run_hash_join(plan)
        if isinstance(op, MergeJoin):
            return self._run_merge_join(plan)
        if isinstance(op, IndexNestedLoopJoin):
            return self._run_index_nl_join(plan)
        if isinstance(op, Sort):
            return self._run_sort(plan)
        if isinstance(op, (HashAggregate, StreamAggregate)):
            return self._run_aggregate(plan)
        if isinstance(op, PhysicalProject):
            return self._run_project(plan)
        raise ExecutionError(f"no executor for operator {op.name}")

    # ------------------------------------------------------------------
    def _run_scan(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        op = plan.op
        table = self.database.table(op.table)
        if isinstance(op, IndexScan):
            rows = table.index_scan(op.index_name)
        else:
            rows = table.scan()
        schema = output_schema(plan, self.catalog)
        predicate = compile_predicate(op.predicate, schema)
        return schema, [row for row in rows if predicate(row)]

    def _run_filter(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        schema, rows = self._run(plan.children[0])
        predicate = compile_predicate(plan.op.predicate, schema)
        return schema, [row for row in rows if predicate(row)]

    def _run_nested_loop(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        left_schema, left_rows = self._run(plan.children[0])
        right_schema, right_rows = self._run(plan.children[1])
        schema = left_schema + right_schema
        predicate = compile_predicate(plan.op.predicate, schema)
        out = []
        for left in left_rows:
            for right in right_rows:
                row = left + right
                if predicate(row):
                    out.append(row)
        return schema, out

    def _run_hash_join(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        op = plan.op
        left_schema, left_rows = self._run(plan.children[0])
        right_schema, right_rows = self._run(plan.children[1])
        schema = left_schema + right_schema

        left_key = self._key_fn(op.left_keys, left_schema)
        right_key = self._key_fn(op.right_keys, right_schema)
        residual = compile_predicate(op.residual, schema)

        buckets: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            buckets.setdefault(right_key(row), []).append(row)
        out = []
        for left in left_rows:
            for right in buckets.get(left_key(left), ()):
                row = left + right
                if residual(row):
                    out.append(row)
        return schema, out

    def _run_merge_join(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        op = plan.op
        left_schema, left_rows = self._run(plan.children[0])
        right_schema, right_rows = self._run(plan.children[1])
        schema = left_schema + right_schema

        left_key = self._key_fn(op.left_keys, left_schema)
        right_key = self._key_fn(op.right_keys, right_schema)
        residual = compile_predicate(op.residual, schema)

        if self.check_orders:
            self._assert_sorted(left_rows, left_key, "merge join left input")
            self._assert_sorted(right_rows, right_key, "merge join right input")

        out = []
        li = ri = 0
        n_left, n_right = len(left_rows), len(right_rows)
        while li < n_left and ri < n_right:
            lk = left_key(left_rows[li])
            rk = right_key(right_rows[ri])
            if lk < rk:
                li += 1
            elif lk > rk:
                ri += 1
            else:
                lj = li
                while lj < n_left and left_key(left_rows[lj]) == lk:
                    lj += 1
                rj = ri
                while rj < n_right and right_key(right_rows[rj]) == rk:
                    rj += 1
                for left in left_rows[li:lj]:
                    for right in right_rows[ri:rj]:
                        row = left + right
                        if residual(row):
                            out.append(row)
                li, ri = lj, rj
        return schema, out

    def _run_index_nl_join(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        op = plan.op
        outer_schema, outer_rows = self._run(plan.children[0])
        inner_table = self.database.table(op.inner_table)
        inner_catalog = self.catalog.table(op.inner_table)
        inner_schema = tuple(
            ColumnId(op.inner_alias, col.name) for col in inner_catalog.columns
        )
        schema = outer_schema + inner_schema

        inner_filter = compile_predicate(op.inner_predicate, inner_schema)
        # Simulate index seeks: the sorted index view bucketed by the
        # matched key prefix gives O(1) lookups per outer row.
        key_positions = tuple(
            inner_catalog.column_position(c.column) for c in op.inner_keys
        )
        buckets: dict[tuple, list[tuple]] = {}
        for row in inner_table.index_scan(op.index_name):
            if not inner_filter(row):
                continue
            buckets.setdefault(
                tuple(row[p] for p in key_positions), []
            ).append(row)

        outer_key = self._key_fn(op.outer_keys, outer_schema)
        residual = compile_predicate(op.residual, schema)
        out = []
        for outer in outer_rows:
            for inner in buckets.get(outer_key(outer), ()):
                row = outer + inner
                if residual(row):
                    out.append(row)
        return schema, out

    def _run_sort(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        schema, rows = self._run(plan.children[0])
        key = self._key_fn(plan.op.order, schema)
        return schema, sorted(rows, key=key)

    def _run_aggregate(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        op = plan.op
        child_schema, rows = self._run(plan.children[0])
        schema = output_schema(plan, self.catalog)

        group_key = self._key_fn(op.group_by, child_schema)
        calls: list[tuple[AggregateCall, object]] = []
        for _, call in op.aggregates:
            arg_fn = (
                None if call.arg is None else compile_scalar(call.arg, child_schema)
            )
            calls.append((call, arg_fn))

        if isinstance(op, StreamAggregate) and self.check_orders and op.group_by:
            self._assert_sorted(rows, group_key, "stream aggregate input")

        def new_accumulators() -> list[_Accumulator]:
            return [_Accumulator(call.func) for call, _ in calls]

        def feed(accs: list[_Accumulator], row: tuple) -> None:
            for (call, arg_fn), acc in zip(calls, accs):
                if call.arg is None:
                    acc.count += 1  # COUNT(*)
                else:
                    acc.add(arg_fn(row))

        out: list[tuple] = []
        if not op.group_by:
            accs = new_accumulators()
            for row in rows:
                feed(accs, row)
            out.append(tuple(acc.result() for acc in accs))
            return schema, out

        if isinstance(op, StreamAggregate):
            current_key: tuple | None = None
            accs: list[_Accumulator] | None = None
            for row in rows:
                key = group_key(row)
                if key != current_key:
                    if accs is not None:
                        out.append(current_key + tuple(a.result() for a in accs))
                    current_key = key
                    accs = new_accumulators()
                feed(accs, row)
            if accs is not None:
                out.append(current_key + tuple(a.result() for a in accs))
            return schema, out

        groups: dict[tuple, list[_Accumulator]] = {}
        order: list[tuple] = []
        for row in rows:
            key = group_key(row)
            accs = groups.get(key)
            if accs is None:
                accs = new_accumulators()
                groups[key] = accs
                order.append(key)
            feed(accs, row)
        for key in order:
            out.append(key + tuple(a.result() for a in groups[key]))
        return schema, out

    def _run_project(self, plan: PlanNode) -> tuple[RowSchema, list[tuple]]:
        child_schema, rows = self._run(plan.children[0])
        schema = output_schema(plan, self.catalog)
        fns = [compile_scalar(expr, child_schema) for _, expr in plan.op.outputs]
        return schema, [tuple(fn(row) for fn in fns) for row in rows]

    # ------------------------------------------------------------------
    def _key_fn(self, columns: tuple[ColumnId, ...], schema: RowSchema):
        positions = []
        index = {column: i for i, column in enumerate(schema)}
        for column in columns:
            try:
                positions.append(index[column])
            except KeyError:
                raise ExecutionError(
                    f"key column {column.render()!r} not in input schema"
                ) from None
        return lambda row: tuple(row[p] for p in positions)

    @staticmethod
    def _assert_sorted(rows: list[tuple], key, what: str) -> None:
        for i in range(1, len(rows)):
            if key(rows[i - 1]) > key(rows[i]):
                raise ExecutionError(f"{what} is not sorted as required")


def execute_plan(
    plan: PlanNode, database: Database, check_orders: bool = False
) -> QueryResult:
    """Convenience wrapper: execute ``plan`` against ``database``."""
    return PlanExecutor(database, check_orders=check_orders).execute(plan)
