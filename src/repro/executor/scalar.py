"""Scalar expression compilation: algebra trees -> Python closures.

Expressions are compiled once per operator against the operator's input
row schema (a tuple of :class:`ColumnId`), so per-row evaluation is a
chain of plain Python calls with pre-resolved column positions — the
Volcano equivalent of compiling predicates to interpreted expression
trees.

SQL semantics notes: the engine does not generate NULLs outside of scalar
aggregates over empty inputs, so three-valued logic is simplified to
Python truthiness with explicit ``None`` guards in comparisons (a
comparison against ``None`` is false, matching SQL's UNKNOWN-filtered-out
behaviour in WHERE clauses).
"""

from __future__ import annotations

import re
from collections.abc import Callable, Sequence

from repro.algebra.expressions import (
    AggregateCall,
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    Scalar,
    UnaryMinus,
)
from repro.errors import ExecutionError

__all__ = ["compile_scalar", "compile_predicate", "like_matcher"]

RowFn = Callable[[tuple], object]


def like_matcher(pattern: str) -> Callable[[str], bool]:
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a matcher."""
    regex_parts = []
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    compiled = re.compile("".join(regex_parts), re.DOTALL)

    def match(value: str) -> bool:
        return value is not None and compiled.fullmatch(value) is not None

    return match


_COMPARATORS = {
    CompOp.EQ: lambda a, b: a == b,
    CompOp.NE: lambda a, b: a != b,
    CompOp.LT: lambda a, b: a < b,
    CompOp.LE: lambda a, b: a <= b,
    CompOp.GT: lambda a, b: a > b,
    CompOp.GE: lambda a, b: a >= b,
}


def compile_scalar(expr: Scalar, schema: Sequence[ColumnId]) -> RowFn:
    """Compile ``expr`` against ``schema``; returns ``fn(row) -> value``."""
    positions = {column: i for i, column in enumerate(schema)}
    return _compile(expr, positions)


def compile_predicate(
    expr: Scalar | None, schema: Sequence[ColumnId]
) -> Callable[[tuple], bool]:
    """Compile a predicate; ``None`` compiles to always-true."""
    if expr is None:
        return lambda row: True
    fn = compile_scalar(expr, schema)
    return lambda row: bool(fn(row))


def _compile(expr: Scalar, positions: dict[ColumnId, int]) -> RowFn:
    if isinstance(expr, ColumnRef):
        try:
            index = positions[expr.column_id]
        except KeyError:
            known = ", ".join(sorted(c.render() for c in positions))
            raise ExecutionError(
                f"column {expr.column_id.render()!r} not in input schema "
                f"({known})"
            ) from None
        return lambda row: row[index]

    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, Comparison):
        left = _compile(expr.left, positions)
        right = _compile(expr.right, positions)
        compare = _COMPARATORS[expr.op]

        def comparison(row: tuple):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False
            return compare(a, b)

        return comparison

    if isinstance(expr, BoolExpr):
        compiled = [_compile(arg, positions) for arg in expr.args]
        if expr.op is BoolOp.AND:
            return lambda row: all(fn(row) for fn in compiled)
        if expr.op is BoolOp.OR:
            return lambda row: any(fn(row) for fn in compiled)
        inner = compiled[0]
        return lambda row: not inner(row)

    if isinstance(expr, Arithmetic):
        left = _compile(expr.left, positions)
        right = _compile(expr.right, positions)
        op = expr.op
        if op == "+":
            return lambda row: left(row) + right(row)
        if op == "-":
            return lambda row: left(row) - right(row)
        if op == "*":
            return lambda row: left(row) * right(row)

        def divide(row: tuple):
            denominator = right(row)
            if denominator in (0, 0.0):
                raise ExecutionError("division by zero")
            return left(row) / denominator

        return divide

    if isinstance(expr, UnaryMinus):
        inner = _compile(expr.arg, positions)
        return lambda row: -inner(row)

    if isinstance(expr, Like):
        inner = _compile(expr.arg, positions)
        matcher = like_matcher(expr.pattern)
        if expr.negated:
            return lambda row: not matcher(inner(row))
        return lambda row: matcher(inner(row))

    if isinstance(expr, InList):
        inner = _compile(expr.arg, positions)
        values = set(expr.values)
        if expr.negated:
            return lambda row: inner(row) not in values
        return lambda row: inner(row) in values

    if isinstance(expr, IsNull):
        inner = _compile(expr.arg, positions)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    if isinstance(expr, AggregateCall):
        raise ExecutionError(
            "aggregate call cannot be evaluated per-row; aggregates are "
            "computed by aggregate operators"
        )

    raise ExecutionError(f"cannot compile expression node {type(expr).__name__}")
