"""Section 3.3 — unranking (number -> plan) and its inverse, ranking.

Unranking a pair ``(r, candidates)``:

1. Choose the root operator by prefix sums: the first operator covers
   ranks ``0 .. N(v1)-1``, the second ``N(v1) .. N(v1)+N(v2)-1``, and so
   on.  The *local rank* is ``r`` minus the skipped prefix.
2. Split the local rank ``r_l`` into per-child sub-ranks with the paper's
   mixed-radix recurrences::

       R_v(i) = r_l                       if i = |v|
              = R_v(i+1) mod B_v(i)       otherwise
       s_v(i) = R_v(1)                    if i = 1
              = floor(R_v(i) / B_v(i-1))  otherwise

3. Recurse on ``(s_v(i), alternatives_i)`` for each child slot.

Ranking is the exact inverse: the local rank reassembles as
``r_l = sum_i s_v(i) * B_v(i-1)`` and the operator's prefix sum is added
back at each level.

Unranking is O(m) in the number of operators of the produced plan, as the
paper states; both directions are implemented without recursion limits
concerns (plan depth is bounded by the number of memo groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanSpaceError, RankOutOfRangeError
from repro.optimizer.plan import PlanNode
from repro.planspace.counting import annotate_counts
from repro.planspace.links import LinkedOperator, LinkedSpace

__all__ = ["Unranker", "UnrankTrace", "TraceStep", "require_group_cardinality"]


def require_group_cardinality(group) -> float:
    """The group's annotated cardinality — never a silent placeholder.

    Plans produced by either engine must carry real row estimates: the
    cost model prices every node from them, and the implicit engine
    always computes them.  A memo that reaches unranking without
    cardinality annotations is a pipeline bug (the optimizer annotates;
    hand-built memos must set ``group.cardinality``), so it fails loudly
    instead of silently costing every plan as if it produced no rows.
    """
    cardinality = group.cardinality
    if cardinality is None:
        raise PlanSpaceError(
            f"group {group.gid} has no cardinality annotation; run "
            "annotate_cardinalities (the optimizer does) or set "
            "group.cardinality before extracting plans — plans must carry "
            "real row estimates for costing"
        )
    return cardinality


@dataclass
class TraceStep:
    """One step of an unranking, for walkthrough output (paper appendix)."""

    operator_id: str
    rank: int
    local_rank: int
    remainders: tuple[int, ...]  # R_v(1) .. R_v(n)
    sub_ranks: tuple[int, ...]  # s_v(1) .. s_v(n)

    def render(self) -> str:
        lines = [
            f"unranked rank {self.rank} -> operator {self.operator_id} "
            f"(local rank {self.local_rank})"
        ]
        n = len(self.sub_ranks)
        for i in range(n, 0, -1):
            lines.append(f"  R({i}) = {self.remainders[i - 1]}")
        for i in range(n, 0, -1):
            lines.append(f"  s({i}) = {self.sub_ranks[i - 1]}")
        return "\n".join(lines)


@dataclass
class UnrankTrace:
    """The full trace of one unranking."""

    rank: int
    steps: list[TraceStep] = field(default_factory=list)

    def operator_ids(self) -> list[str]:
        return [step.operator_id for step in self.steps]

    def render(self) -> str:
        return "\n".join(step.render() for step in self.steps)


class Unranker:
    """Bijection between ranks ``0..N-1`` and plans of a linked space."""

    def __init__(self, space: LinkedSpace):
        self.space = space
        if space.total is None:
            annotate_counts(space)

    @property
    def total(self) -> int:
        assert self.space.total is not None
        return self.space.total

    # ------------------------------------------------------------------
    # unranking
    # ------------------------------------------------------------------
    def unrank(self, rank: int, trace: UnrankTrace | None = None) -> PlanNode:
        """The plan with number ``rank``."""
        if not 0 <= rank < self.total:
            raise RankOutOfRangeError(rank, self.total)
        return self._unrank_among(self.space.roots, rank, trace)

    def unrank_with_trace(self, rank: int) -> tuple[PlanNode, UnrankTrace]:
        trace = UnrankTrace(rank=rank)
        plan = self.unrank(rank, trace)
        return plan, trace

    def _unrank_among(
        self,
        candidates: tuple[LinkedOperator, ...],
        rank: int,
        trace: UnrankTrace | None,
    ) -> PlanNode:
        node, local = self._select_operator(candidates, rank)
        remainders, sub_ranks = self._split_local_rank(node, local)
        if trace is not None:
            trace.steps.append(
                TraceStep(
                    operator_id=node.id_str,
                    rank=rank,
                    local_rank=local,
                    remainders=remainders,
                    sub_ranks=sub_ranks,
                )
            )
        children = tuple(
            self._unrank_among(node.alternatives[i], sub_ranks[i], trace)
            for i in range(node.arity)
        )
        group = self.space.memo.group(node.expr.group_id)
        return PlanNode(
            op=node.expr.op,
            children=children,
            group_id=node.expr.group_id,
            local_id=node.expr.local_id,
            cardinality=require_group_cardinality(group),
        )

    @staticmethod
    def _select_operator(
        candidates: tuple[LinkedOperator, ...], rank: int
    ) -> tuple[LinkedOperator, int]:
        """Step 1: pick the operator by prefix sums; return its local rank."""
        skipped = 0
        for node in candidates:
            assert node.count is not None
            if rank < skipped + node.count:
                return node, rank - skipped
            skipped += node.count
        raise PlanSpaceError(
            f"rank {rank} exceeds the {skipped} plans of this candidate list"
        )

    @staticmethod
    def _split_local_rank(
        node: LinkedOperator, local: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Step 2: the paper's R_v / s_v recurrences (mixed-radix digits)."""
        n = node.arity
        if n == 0:
            return (), ()
        remainders = [0] * n
        remainders[n - 1] = local
        for i in range(n - 1, 0, -1):
            # R_v(i) = R_v(i+1) mod B_v(i)   [prefix_products[i] == B_v(i)]
            remainders[i - 1] = remainders[i] % node.prefix_products[i]
        sub_ranks = [0] * n
        sub_ranks[0] = remainders[0]
        for i in range(2, n + 1):
            # s_v(i) = floor(R_v(i) / B_v(i-1))
            sub_ranks[i - 1] = remainders[i - 1] // node.prefix_products[i - 1]
        return tuple(remainders), tuple(sub_ranks)

    # ------------------------------------------------------------------
    # ranking (the inverse)
    # ------------------------------------------------------------------
    def rank(self, plan: PlanNode) -> int:
        """The number of ``plan`` within the space (inverse of unrank)."""
        return self._rank_among(self.space.roots, plan)

    def _rank_among(
        self, candidates: tuple[LinkedOperator, ...], plan: PlanNode
    ) -> int:
        skipped = 0
        node: LinkedOperator | None = None
        for candidate in candidates:
            if (
                candidate.expr.group_id == plan.group_id
                and candidate.expr.local_id == plan.local_id
            ):
                node = candidate
                break
            assert candidate.count is not None
            skipped += candidate.count
        if node is None:
            raise PlanSpaceError(
                f"operator {plan.expr_id} is not a valid candidate here "
                "(plan does not belong to this space)"
            )
        local = 0
        for i in range(node.arity):
            sub_rank = self._rank_among(node.alternatives[i], plan.children[i])
            # r_l = sum_i s_v(i) * B_v(i-1)
            local += sub_rank * node.prefix_products[i]
        if node.count is not None and local >= node.count:
            raise PlanSpaceError(
                f"inconsistent plan: local rank {local} out of range for "
                f"operator {node.id_str}"
            )
        return skipped + local
