"""The user-facing plan-space facade.

Ties the preparatory link step, counting, unranking/ranking, sampling and
enumeration together behind one object::

    result = Optimizer(catalog).optimize_sql("SELECT ...")
    space = PlanSpace.from_result(result)
    space.count()                 # N — exact, arbitrary precision
    plan = space.unrank(13)       # the paper's appendix operation
    space.rank(plan)              # 13
    plans = space.sample(10_000, seed=42)   # uniform
    for rank, plan in space.enumerate():    # exhaustive
        ...
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.algebra.properties import SortOrder
from repro.memo.memo import Memo
from repro.optimizer.optimizer import OptimizationResult
from repro.optimizer.plan import PlanNode
from repro.planspace.counting import annotate_counts
from repro.planspace.enumeration import enumerate_plans
from repro.planspace.links import LinkedSpace, materialize_links
from repro.planspace.sampling import UniformPlanSampler, naive_walk_sample
from repro.planspace.unranking import Unranker, UnrankTrace

__all__ = ["PlanSpace"]


class PlanSpace:
    """Counting, enumeration, ranking/unranking and uniform sampling over
    the plan space encoded by an optimized memo."""

    def __init__(self, linked: LinkedSpace):
        self.linked = linked
        annotate_counts(linked)
        self.unranker = Unranker(linked)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_memo(
        cls,
        memo: Memo,
        root_required: SortOrder = (),
        include_redundant_sorts: bool = True,
    ) -> "PlanSpace":
        linked = materialize_links(
            memo,
            root_required=root_required,
            include_redundant_sorts=include_redundant_sorts,
        )
        return cls(linked)

    @classmethod
    def from_result(
        cls,
        result: OptimizationResult,
        include_redundant_sorts: bool = True,
    ) -> "PlanSpace":
        """Build the space for an optimizer run (honouring its ORDER BY)."""
        return cls.from_memo(
            result.memo,
            root_required=result.root_order,
            include_redundant_sorts=include_redundant_sorts,
        )

    # ------------------------------------------------------------------
    # the paper's primitives
    # ------------------------------------------------------------------
    def count(self) -> int:
        """``N``: the exact number of execution plans in the space."""
        assert self.linked.total is not None
        return self.linked.total

    def unrank(self, rank: int) -> PlanNode:
        """Plan number ``rank`` (0-based)."""
        return self.unranker.unrank(rank)

    def unrank_with_trace(self, rank: int) -> tuple[PlanNode, UnrankTrace]:
        """Unrank with a step-by-step trace (paper appendix walkthrough)."""
        return self.unranker.unrank_with_trace(rank)

    def rank(self, plan: PlanNode) -> int:
        """The number of ``plan``; inverse of :meth:`unrank`."""
        return self.unranker.rank(plan)

    def sample(
        self, n: int, seed: int | random.Random = 0, unique: bool = False
    ) -> list[PlanNode]:
        """``n`` uniform random plans."""
        return self.sampler(seed).sample(n, unique=unique)

    def sample_ranks(
        self, n: int, seed: int | random.Random = 0, unique: bool = False
    ) -> list[int]:
        return self.sampler(seed).sample_ranks(n, unique=unique)

    def sampler(self, seed: int | random.Random = 0) -> UniformPlanSampler:
        return UniformPlanSampler(self.linked, seed=seed)

    def sample_naive_walk(
        self, n: int, seed: int | random.Random = 0
    ) -> list[PlanNode]:
        """The biased random-walk baseline (for the bias ablation)."""
        return naive_walk_sample(self.linked, n, seed=seed)

    def enumerate(
        self, start: int = 0, stop: int | None = None, step: int = 1
    ) -> Iterator[tuple[int, PlanNode]]:
        """Lazily yield ``(rank, plan)`` for the requested rank range."""
        return enumerate_plans(self.linked, start=start, stop=stop, step=step)

    def all_plans(self, limit: int | None = None) -> list[PlanNode]:
        """Materialize the whole space (or its first ``limit`` plans)."""
        stop = None if limit is None else min(limit, self.count())
        return [plan for _, plan in self.enumerate(stop=stop)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def operator_counts(self) -> dict[str, int]:
        """``N(v)`` per operator id — the annotations of the paper's Fig. 3."""
        return {
            node.id_str: node.count
            for node in self.linked.operators.values()
            if node.count is not None
        }

    def describe(self) -> str:
        memo = self.linked.memo
        lines = [
            f"plan space over {len(memo.groups)} groups, "
            f"{memo.physical_expression_count()} physical operators",
            f"root group: {memo.root_group_id}, "
            f"root requirement: {self.linked.root_required or '(none)'}",
            f"total plans N = {self.count():,}",
        ]
        return "\n".join(lines)

    def __len__(self) -> int:
        """len() gives N when it fits a machine word; use count() otherwise."""
        return self.count()
