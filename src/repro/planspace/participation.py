"""Exact operator participation: how many plans contain operator v?

A natural companion to the paper's counting scheme.  The paper computes,
bottom-up, the number of sub-plans *rooted* in each operator.  Here we
compute, top-down, the number of *contexts*: ways to complete a full plan
around an occurrence of ``v``::

    O(v) = sum over (parent p, slot i) with v in alts_p(i) of
               O(p) * prod_{j != i} b_p(j)

with ``O(root) = 1`` for every root operator.  The number of
(plan, position) pairs featuring ``v`` is then ``O(v) * N(v)``.

In a memo whose groups partition the query (every group can appear at
most once per plan — true for scan/join/aggregate memos like ours, where
a group is identified by the relation set it covers), an operator also
occurs at most once per plan, so ``O(v) * N(v)`` *is* the exact number of
plans containing ``v``.

Uses for the paper's testing methodology:

* find dead operators — alternatives the optimizer generated that no
  complete plan can use (``participation = 0`` while the operator exists);
* quantify how rarely an implementation is exercised, to prioritize
  targeted ``USEPLAN`` testing of its plans;
* cross-validate the uniform sampler: sampled containment frequencies
  must converge to ``participation / N``.

Like counting, the computation is linear in the size of the linked space.
"""

from __future__ import annotations

from repro.errors import PlanSpaceError
from repro.planspace.counting import annotate_counts
from repro.planspace.links import LinkedOperator, LinkedSpace

__all__ = ["participation_counts", "participation_report"]


def participation_counts(space: LinkedSpace) -> dict[str, int]:
    """Exact number of plans containing each operator, keyed by id.

    Operators unreachable from any root have participation 0, as do
    operators with an unsatisfiable child slot (``N(v) = 0``).
    """
    if space.total is None:
        annotate_counts(space)

    contexts: dict[tuple[int, int], int] = {
        key: 0 for key in space.operators
    }
    for root in space.roots:
        contexts[root.key] = 1

    for node in _topological_order(space):
        own_contexts = contexts[node.key]
        for slot, alternatives in enumerate(node.alternatives):
            # Plans completed by the *other* slots of this node.
            others = 1
            for j, b in enumerate(node.child_sums):
                if j != slot:
                    others *= b
            if others == 0 or own_contexts == 0:
                continue
            for alt in alternatives:
                contexts[alt.key] += own_contexts * others

    return {
        node.id_str: contexts[node.key] * (node.count or 0)
        for node in space.operators.values()
    }


def _topological_order(space: LinkedSpace) -> list[LinkedOperator]:
    """Parents before children (reverse post-order over the link DAG)."""
    order: list[LinkedOperator] = []
    state: dict[tuple[int, int], int] = {}  # 1 = visiting, 2 = done

    for start in space.operators.values():
        if state.get(start.key):
            continue
        stack: list[tuple[LinkedOperator, bool]] = [(start, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                state[node.key] = 2
                order.append(node)
                continue
            if state.get(node.key):
                continue
            state[node.key] = 1
            stack.append((node, True))
            for alternatives in node.alternatives:
                for alt in alternatives:
                    if not state.get(alt.key):
                        stack.append((alt, False))
                    elif state[alt.key] == 1:
                        raise PlanSpaceError(
                            f"cycle in linked space at {alt.id_str}"
                        )
    order.reverse()  # children were appended first; parents must come first
    return order


def participation_report(space: LinkedSpace) -> str:
    """Human-readable participation table, rarest operators first."""
    counts = participation_counts(space)
    total = space.total or 0
    lines = [
        f"operator participation over {total:,} plans "
        "(exact, not sampled; rarest first):"
    ]
    items = sorted(counts.items(), key=lambda kv: (kv[1], kv[0]))
    for op_id, plans in items:
        node = space.operators[
            tuple(int(x) for x in op_id.split("."))
        ]
        fraction = plans / total if total else 0.0
        lines.append(
            f"  {op_id:>8}  {node.expr.op.name:<22} in {plans:>20,} plans"
            f" ({fraction:>8.2%})"
        )
    return "\n".join(lines)
