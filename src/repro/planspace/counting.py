"""Section 3.2 — counting query plans.

For an operator ``v`` with child slots ``i = 1..|v|`` and qualifying
alternatives ``w_(v)i,j`` for slot ``i``::

    b_v(i) = sum_j N(w_(v)i,j)          choices for child i
    B_v(k) = prod_{i<=k} b_v(i)         combined choices, first k children
    N(v)   = 1            if |v| = 0
           = B_v(|v|)     otherwise

and the space total is ``N = sum_{v in roots} N(v)``.

Counts are exact Python integers (the paper's Table 1 reaches 4.4 * 10^12
plans; Python's arbitrary-precision integers handle that without
approximation).  The traversal is an explicit-stack post-order DFS over
the linked operator DAG, so deep memos cannot hit the recursion limit.
As the paper observes, counting is linear in the size of the memo: every
operator is visited exactly once.
"""

from __future__ import annotations

from repro.errors import PlanSpaceError
from repro.planspace.links import LinkedOperator, LinkedSpace

__all__ = ["annotate_counts", "operator_count"]


def _compute_node(node: LinkedOperator) -> None:
    """Fill count/child_sums/prefix_products, assuming children are done."""
    if node.arity == 0:
        node.child_sums = ()
        node.prefix_products = (1,)
        node.count = 1
        return
    sums = []
    for alternatives in node.alternatives:
        b = 0
        for alt in alternatives:
            if alt.count is None:  # pragma: no cover - traversal bug guard
                raise PlanSpaceError(
                    f"child {alt.id_str} of {node.id_str} not counted yet"
                )
            b += alt.count
        sums.append(b)
    prefix = [1]
    for b in sums:
        prefix.append(prefix[-1] * b)
    node.child_sums = tuple(sums)
    node.prefix_products = tuple(prefix)
    node.count = prefix[-1]


def operator_count(node: LinkedOperator) -> int:
    """``N(node)``, computing it (and its descendants) if necessary."""
    if node.count is not None:
        return node.count
    # Iterative post-order DFS; the linked space is a DAG (enforcers only
    # link to non-enforcers of the same group, everything else links to
    # other groups), so a visited set is enough.
    stack: list[tuple[LinkedOperator, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if current.count is not None:
            continue
        if expanded:
            _compute_node(current)
            continue
        stack.append((current, True))
        for alternatives in current.alternatives:
            for alt in alternatives:
                if alt.count is None:
                    stack.append((alt, False))
    assert node.count is not None
    return node.count


def annotate_counts(space: LinkedSpace) -> int:
    """Compute ``N(v)`` for every operator and the space total ``N``."""
    for node in space.operators.values():
        operator_count(node)
    space.total = sum(root.count for root in space.roots)
    return space.total
