"""Uniform sampling of plans (and a deliberately biased baseline).

"Once an unranking mechanism is available, uniform sampling of elements
in the space reduces to random generation of numbers in the range
0, ..., N-1."  (Section 1.)

``naive_walk_sample`` implements the obvious-but-wrong alternative the
paper's approach supersedes: walk the memo top-down choosing uniformly
among qualifying operators at every step.  That walk favours plans in
sparsely-populated regions of the space (each plan's probability is the
product of its local choice probabilities, not ``1/N``); experiment E10
quantifies the bias with a chi-square test.
"""

from __future__ import annotations

import random

from repro.optimizer.plan import PlanNode
from repro.planspace.links import LinkedOperator, LinkedSpace
from repro.planspace.unranking import Unranker
from repro.util.rng import make_rng

__all__ = ["UniformPlanSampler", "naive_walk_sample"]


class UniformPlanSampler:
    """Uniform random plans via random ranks + unranking."""

    def __init__(self, space: LinkedSpace, seed: int | random.Random = 0):
        self.unranker = Unranker(space)
        self.rng = make_rng(seed)

    @property
    def total(self) -> int:
        return self.unranker.total

    def sample_rank(self) -> int:
        return self.rng.randrange(self.unranker.total)

    def sample_ranks(self, n: int, unique: bool = False) -> list[int]:
        """``n`` uniform ranks; ``unique=True`` samples without replacement
        (requires ``n <= N``)."""
        if not unique:
            return [self.sample_rank() for _ in range(n)]
        if n > self.unranker.total:
            raise ValueError(
                f"cannot draw {n} distinct plans from a space of "
                f"{self.unranker.total}"
            )
        if n * 4 >= self.unranker.total:
            # Dense draw: sample from the explicit range.
            return self.rng.sample(range(self.unranker.total), n)
        seen: set[int] = set()
        while len(seen) < n:
            seen.add(self.sample_rank())
        return sorted(seen)

    def sample(self, n: int, unique: bool = False) -> list[PlanNode]:
        return [self.unranker.unrank(r) for r in self.sample_ranks(n, unique)]

    def sample_one(self) -> PlanNode:
        return self.unranker.unrank(self.sample_rank())


def naive_walk_sample(
    space: LinkedSpace, n: int, seed: int | random.Random = 0
) -> list[PlanNode]:
    """The biased baseline: uniform local choices instead of uniform plans."""
    rng = make_rng(seed)
    unranker = Unranker(space)  # ensures counts exist for cardinality lookups

    def walk(candidates: tuple[LinkedOperator, ...]) -> PlanNode:
        viable = [c for c in candidates if c.count]
        node = rng.choice(viable)
        children = tuple(walk(node.alternatives[i]) for i in range(node.arity))
        group = space.memo.group(node.expr.group_id)
        return PlanNode(
            op=node.expr.op,
            children=children,
            group_id=node.expr.group_id,
            local_id=node.expr.local_id,
            cardinality=group.cardinality if group.cardinality is not None else 0.0,
        )

    del unranker  # counts are now annotated on the space
    return [walk(space.roots) for _ in range(n)]
