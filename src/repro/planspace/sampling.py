"""Uniform sampling of plans (and a deliberately biased baseline).

"Once an unranking mechanism is available, uniform sampling of elements
in the space reduces to random generation of numbers in the range
0, ..., N-1."  (Section 1.)

:class:`RankSampler` is the shared sampling contract: every sampler —
materialized (:class:`UniformPlanSampler`) or implicit
(:class:`repro.planspace.implicit.sampling.ImplicitPlanSampler`) — draws
ranks through exactly this code, so the same seed over the same space
yields the same rank stream no matter which engine unranks it (the RNG
contract of :mod:`repro.util.rng`).

``naive_walk_sample`` implements the obvious-but-wrong alternative the
paper's approach supersedes: walk the memo top-down choosing uniformly
among qualifying operators at every step.  That walk favours plans in
sparsely-populated regions of the space (each plan's probability is the
product of its local choice probabilities, not ``1/N``); experiment E10
quantifies the bias with a chi-square test.
"""

from __future__ import annotations

import random

from repro.optimizer.plan import PlanNode
from repro.planspace.links import LinkedOperator, LinkedSpace
from repro.planspace.unranking import Unranker, require_group_cardinality
from repro.util.rng import make_rng

__all__ = ["RankSampler", "UniformPlanSampler", "naive_walk_sample"]


class RankSampler:
    """Uniform random plans via random ranks + unranking.

    Subclasses provide ``total`` and ``unrank``; the rank-drawing logic
    lives here once so engines cannot drift apart.  All draws go through
    ``rng.randrange(total)`` (or ``rng.sample`` for dense unique draws) —
    change nothing here without versioning the RNG contract.
    """

    def __init__(self, seed: int | random.Random = 0):
        self.rng = make_rng(seed)

    @property
    def total(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def unrank(self, rank: int) -> PlanNode:  # pragma: no cover - abstract
        raise NotImplementedError

    def sample_rank(self) -> int:
        return self.rng.randrange(self.total)

    def sample_ranks(self, n: int, unique: bool = False) -> list[int]:
        """``n`` uniform ranks; ``unique=True`` samples without replacement
        (requires ``n <= N``)."""
        if not unique:
            return [self.sample_rank() for _ in range(n)]
        if n > self.total:
            raise ValueError(
                f"cannot draw {n} distinct plans from a space of {self.total}"
            )
        if n * 4 >= self.total:
            # Dense draw: sample from the explicit range.
            return self.rng.sample(range(self.total), n)
        seen: set[int] = set()
        while len(seen) < n:
            seen.add(self.sample_rank())
        return sorted(seen)

    def sample(self, n: int, unique: bool = False) -> list[PlanNode]:
        return [self.unrank(r) for r in self.sample_ranks(n, unique)]

    def sample_one(self) -> PlanNode:
        return self.unrank(self.sample_rank())


class UniformPlanSampler(RankSampler):
    """Uniform sampling over a materialized (linked) space."""

    def __init__(self, space: LinkedSpace, seed: int | random.Random = 0):
        super().__init__(seed)
        self.unranker = Unranker(space)

    @property
    def total(self) -> int:
        return self.unranker.total

    def unrank(self, rank: int) -> PlanNode:
        return self.unranker.unrank(rank)


def naive_walk_sample(
    space: LinkedSpace, n: int, seed: int | random.Random = 0
) -> list[PlanNode]:
    """The biased baseline: uniform local choices instead of uniform plans."""
    rng = make_rng(seed)
    unranker = Unranker(space)  # ensures counts exist for cardinality lookups

    def walk(candidates: tuple[LinkedOperator, ...]) -> PlanNode:
        viable = [c for c in candidates if c.count]
        node = rng.choice(viable)
        children = tuple(walk(node.alternatives[i]) for i in range(node.arity))
        group = space.memo.group(node.expr.group_id)
        return PlanNode(
            op=node.expr.op,
            children=children,
            group_id=node.expr.group_id,
            local_id=node.expr.local_id,
            cardinality=require_group_cardinality(group),
        )

    del unranker  # counts are now annotated on the space
    return [walk(space.roots) for _ in range(n)]
