"""Section 3.1 — the preparatory step.

"We extract all physical operators and materialize the links between
operators and their possible children.  [...]  Due to the differences in
physical properties some operators of a group may qualify as potential
children while others do not."

For every physical operator ``v`` and child slot ``i`` we compute the
ordered list of qualifying alternatives ``w_(v)i,j``:

* a regular operator requiring order ``o`` of child slot ``i`` accepts any
  physical operator of the child group — *including Sort enforcers* —
  whose delivered order satisfies ``o``;
* a ``Sort`` enforcer's single child slot accepts every non-enforcer
  operator of its *own* group (the paper's Figure 3 confirms enforcers
  link to all non-enforcer group members, even ones already sorted:
  group 1's counts only add up as ``N(Sort 1.4) = 2`` over
  ``{TableScan 1.2, SortedIdxScan 1.3}``).  Excluding enforcers from
  enforcer children is what keeps the linked space acyclic.

The linked space also fixes the ordered list of *root* operators: the
root group's physical operators that satisfy the query's root requirement
(ORDER BY, if any).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.properties import SortOrder, order_satisfies
from repro.errors import PlanSpaceError
from repro.memo.group import GroupExpr
from repro.memo.memo import Memo

__all__ = ["LinkedOperator", "LinkedSpace", "materialize_links"]


@dataclass
class LinkedOperator:
    """One physical operator with materialized child-alternative lists.

    ``alternatives[i]`` is the ordered tuple of qualifying
    :class:`LinkedOperator` for child slot ``i``.  Counting fills in
    ``count`` (= the paper's ``N(v)``), ``child_sums`` (= ``b_v(i)``) and
    ``prefix_products`` (= ``B_v(k)``, with ``B_v(0) = 1`` prepended).
    """

    expr: GroupExpr
    alternatives: tuple[tuple["LinkedOperator", ...], ...] = ()
    count: int | None = None
    child_sums: tuple[int, ...] = ()
    prefix_products: tuple[int, ...] = (1,)

    @property
    def key(self) -> tuple[int, int]:
        return (self.expr.group_id, self.expr.local_id)

    @property
    def id_str(self) -> str:
        return self.expr.id_str

    @property
    def arity(self) -> int:
        return self.expr.op.arity

    def render(self) -> str:
        parts = [f"{self.id_str}: {self.expr.op.render()}"]
        for i, alts in enumerate(self.alternatives):
            ids = ", ".join(a.id_str for a in alts) or "(none)"
            parts.append(f"    child {i + 1}: [{ids}]")
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass
class LinkedSpace:
    """All physical operators of a memo with materialized links."""

    memo: Memo
    root_required: SortOrder
    operators: dict[tuple[int, int], LinkedOperator] = field(default_factory=dict)
    roots: tuple[LinkedOperator, ...] = ()
    total: int | None = None

    def operator(self, gid: int, local_id: int) -> LinkedOperator:
        try:
            return self.operators[(gid, local_id)]
        except KeyError:
            raise PlanSpaceError(
                f"no physical operator {gid}.{local_id} in the linked space"
            ) from None

    def group_operators(self, gid: int) -> list[LinkedOperator]:
        return [
            op for (g, _), op in sorted(self.operators.items()) if g == gid
        ]


def materialize_links(
    memo: Memo,
    root_required: SortOrder = (),
    include_redundant_sorts: bool = True,
) -> LinkedSpace:
    """Build the linked space for ``memo``.

    ``include_redundant_sorts=False`` deviates from the paper by dropping
    enforcer links to children that already deliver the enforced order
    (an ablation knob; the default reproduces the paper's Figure 3
    semantics, where such plans are counted).
    """
    if memo.root_group_id is None:
        raise PlanSpaceError("memo has no root group")

    space = LinkedSpace(memo=memo, root_required=tuple(root_required))

    # Pass 1: one LinkedOperator per physical expression.
    for group in memo.groups:
        for expr in group.physical_exprs():
            space.operators[(group.gid, expr.local_id)] = LinkedOperator(expr=expr)

    # Pass 2: materialize child links.
    for node in space.operators.values():
        expr = node.expr
        if expr.is_enforcer:
            order = expr.op.delivered_order()
            group = memo.group(expr.group_id)
            alts = []
            for child in group.physical_exprs():
                if child.is_enforcer:
                    continue
                if not include_redundant_sorts and order_satisfies(
                    child.op.delivered_order(), order
                ):
                    continue
                alts.append(space.operators[(child.group_id, child.local_id)])
            node.alternatives = (tuple(alts),)
            continue
        slots = []
        for child_pos, child_gid in enumerate(expr.children):
            required = expr.op.required_child_order(child_pos)
            child_group = memo.group(child_gid)
            alts = tuple(
                space.operators[(child.group_id, child.local_id)]
                for child in child_group.physical_exprs()
                if order_satisfies(child.op.delivered_order(), required)
            )
            slots.append(alts)
        node.alternatives = tuple(slots)

    # Pass 3: root operators, observing the root requirement.
    root_group = memo.root_group()
    roots = tuple(
        space.operators[(expr.group_id, expr.local_id)]
        for expr in root_group.physical_exprs()
        if order_satisfies(expr.op.delivered_order(), space.root_required)
    )
    if not roots:
        raise PlanSpaceError(
            "no physical operator in the root group satisfies the root "
            "requirement — was the memo implemented with enforcers?"
        )
    space.roots = roots
    return space
