"""Plan-space diffing: regression detection between optimizer versions.

When an optimizer's rule set changes, the plan space changes — sometimes
intentionally (a new implementation), sometimes as a silent regression
(alternatives lost to an over-eager pruning change).  Comparing the raw
counts catches gross changes; comparing *operator sets* pinpoints what
appeared or disappeared.  This module diffs two linked spaces built for
the same query under different optimizer configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.planspace.counting import annotate_counts
from repro.planspace.links import LinkedSpace

__all__ = ["SpaceDiff", "diff_spaces"]


@dataclass
class SpaceDiff:
    """Differences between a baseline space and a candidate space."""

    baseline_total: int
    candidate_total: int
    added_operators: list[str] = field(default_factory=list)
    removed_operators: list[str] = field(default_factory=list)
    count_changes: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return (
            self.baseline_total == self.candidate_total
            and not self.added_operators
            and not self.removed_operators
            and not self.count_changes
        )

    def render(self) -> str:
        lines = [
            f"plans: {self.baseline_total:,} -> {self.candidate_total:,}"
            + (
                ""
                if self.baseline_total == self.candidate_total
                else f"  ({self.candidate_total / max(self.baseline_total, 1):.2f}x)"
            )
        ]
        if self.identical:
            lines.append("spaces are identical")
            return "\n".join(lines)
        if self.added_operators:
            lines.append(f"operators added ({len(self.added_operators)}):")
            lines.extend(f"  + {op}" for op in self.added_operators[:20])
        if self.removed_operators:
            lines.append(f"operators removed ({len(self.removed_operators)}):")
            lines.extend(f"  - {op}" for op in self.removed_operators[:20])
        if self.count_changes:
            lines.append(
                f"operators with changed rooted counts ({len(self.count_changes)}):"
            )
            lines.extend(
                f"  ~ {op}: N(v) {before:,} -> {after:,}"
                for op, before, after in self.count_changes[:20]
            )
        return "\n".join(lines)


def _operator_signature(node) -> str:
    """Identity of an operator independent of memo numbering: the rendered
    operator plus the relation sets of its children's groups."""
    memo_group = node.expr.group_id
    return f"{node.expr.op.render()}@g{memo_group}"


def diff_spaces(baseline: LinkedSpace, candidate: LinkedSpace) -> SpaceDiff:
    """Compare two linked spaces of the *same query*.

    Operators are matched by their operator identity (rendered form plus
    owning group's relation set), so memo renumbering between runs does
    not produce spurious differences.
    """
    if baseline.total is None:
        annotate_counts(baseline)
    if candidate.total is None:
        annotate_counts(candidate)

    def signatures(space: LinkedSpace) -> dict[tuple, int]:
        out: dict[tuple, int] = {}
        for node in space.operators.values():
            group = space.memo.group(node.expr.group_id)
            signature = (node.expr.op.key(), tuple(sorted(group.relations)))
            out[signature] = node.count or 0
        return out

    base_sigs = signatures(baseline)
    cand_sigs = signatures(candidate)

    def describe(space: LinkedSpace, signature: tuple) -> str:
        for node in space.operators.values():
            group = space.memo.group(node.expr.group_id)
            if (node.expr.op.key(), tuple(sorted(group.relations))) == signature:
                rels = ",".join(sorted(group.relations))
                return f"{node.expr.op.render()} over {{{rels}}}"
        return repr(signature)  # pragma: no cover - defensive

    diff = SpaceDiff(
        baseline_total=baseline.total or 0,
        candidate_total=candidate.total or 0,
    )
    for signature in sorted(cand_sigs.keys() - base_sigs.keys(), key=repr):
        diff.added_operators.append(describe(candidate, signature))
    for signature in sorted(base_sigs.keys() - cand_sigs.keys(), key=repr):
        diff.removed_operators.append(describe(baseline, signature))
    for signature in sorted(base_sigs.keys() & cand_sigs.keys(), key=repr):
        before, after = base_sigs[signature], cand_sigs[signature]
        if before != after:
            diff.count_changes.append(
                (describe(baseline, signature), before, after)
            )
    return diff
