"""Exhaustive generation of the plan space.

"When the space of alternatives becomes too large for exhaustive testing,
which can occur even with a handful of joins, uniform random sampling
provides a mechanism for unbiased testing" — but for small spaces the
paper's Section 4 enumerates everything.  This module provides lazy
iteration over ranks ``0..N-1`` (optionally a sub-range or a stride).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import RankOutOfRangeError
from repro.optimizer.plan import PlanNode
from repro.planspace.links import LinkedSpace
from repro.planspace.unranking import Unranker

__all__ = ["enumerate_plans"]


def enumerate_plans(
    space: LinkedSpace,
    start: int = 0,
    stop: int | None = None,
    step: int = 1,
) -> Iterator[tuple[int, PlanNode]]:
    """Yield ``(rank, plan)`` pairs for ranks ``start, start+step, ...``.

    ``stop`` defaults to the space total ``N``.  The iterator is lazy:
    enumerating the first plans of an astronomically large space costs
    only as much as the plans actually consumed.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    unranker = Unranker(space)
    total = unranker.total
    if stop is None:
        stop = total
    if stop > total:
        raise RankOutOfRangeError(stop - 1, total)
    if start < 0:
        raise RankOutOfRangeError(start, total)
    for rank in range(start, stop, step):
        yield rank, unranker.unrank(rank)
