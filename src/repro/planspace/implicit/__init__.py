"""The implicit plan-space engine: count, unrank, and sample without
materializing the physical memo.

The materialized pipeline (:mod:`repro.planspace`) pays to build every
physical ``GroupExpr`` — for a 12-relation clique that is millions of
expressions and minutes of wall clock — before the first count is taken,
even though counting is linear in the memo and sampling needs only
O(depth) operators per plan.  This package treats the plan space as the
implicit combinatorial object it is:

* :mod:`.layout` simulates the memo's group structure (ids, logical
  expression order) from the bound query and the join graph's csg–cmp
  stream — nothing is inserted anywhere;
* :mod:`.edges` / :mod:`.keys` reduce merge-key identity and the paper's
  physical-property qualification to bitmask and byte-string operations;
* :mod:`.counting` derives per-group alternative counts analytically from
  the shared rule module (:mod:`repro.optimizer.rules`), in array-backed
  tables keyed by alias bitmasks; :mod:`.turbo` is its vectorized twin;
* :mod:`.tables` + :mod:`.unranking` rebuild exactly the rows a group
  would have held, lazily, so unranking yields byte-identical
  ``PlanNode`` trees (same ``group.local`` ids) at O(plan) cost;
* :mod:`.sampling` binds the shared rank-sampler contract to it.

:class:`ImplicitPlanSpace` is the facade; ``Session.plan_space(sql,
count_only=True)`` and the ``--implicit`` CLI flags are the front doors.
See ``README.md`` in this directory for the derivation.
"""

from repro.planspace.implicit.counting import CountState
from repro.planspace.implicit.edges import EdgeCatalog
from repro.planspace.implicit.keys import KeyTable, OrderIndex
from repro.planspace.implicit.layout import ImplicitGroup, ImplicitLayout
from repro.planspace.implicit.sampling import ImplicitPlanSampler
from repro.planspace.implicit.space import ImplicitPlanSpace
from repro.planspace.implicit.tables import GroupTable, TableSet
from repro.planspace.implicit.unranking import ImplicitUnranker

__all__ = [
    "CountState",
    "EdgeCatalog",
    "GroupTable",
    "ImplicitGroup",
    "ImplicitLayout",
    "ImplicitPlanSampler",
    "ImplicitPlanSpace",
    "ImplicitUnranker",
    "KeyTable",
    "OrderIndex",
    "TableSet",
]
