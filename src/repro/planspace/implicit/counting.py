"""Exact plan counting from the implicit layout — no physical memo.

The materialized pipeline counts by the paper's recurrences over linked
physical operators (``b``/``B``/``N`` of Section 3.2).  The implicit
engine computes the *same numbers* group-at-a-time from the rule arity:

* a leaf's non-enforcer total is its access-path count (table scan plus
  index scans);
* a join group's non-enforcer total accumulates, per valid split
  ``(l, r)``, ``2 * plain * N(l) * N(r)`` for the order-insensitive join
  algorithms (both orientations share the product) plus one merge term
  per orientation, ``S(l, lk) * S(r, rk)``, where ``S(g, q)`` sums the
  group's alternatives whose delivered order satisfies ``q``;
* every distinct required order adds one ``Sort`` enforcer whose count is
  the group's non-enforcer total (enforcers link to all non-enforcer
  group members — the paper's Figure 3 semantics), so the group total is
  ``nonenf * (1 + #sorts)``;
* the unary tower multiplies through unchanged, and the root requirement
  (ORDER BY) filters the root group's alternatives.

``S(g, q)`` queries are answered by per-group :class:`~.keys.OrderIndex`
range sums; the required orders of a group are known before its parents
count, because pass A walks all logical joins first (registering the
merge requirements in the materializer's first-occurrence order, which
also pins the ``Sort`` local ids for unranking).

Groups are processed bottom-up in subset-size order, with every
per-group aggregate held in tables keyed by the PR-1 alias bitmasks.
When numpy is available the join-group recurrence runs through the
vectorized :mod:`.turbo` path instead (same results, asserted by the
property suite); this module is the reference implementation and the
fallback for ablation configurations turbo does not cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.logical import LogicalGet
from repro.catalog.catalog import Catalog
from repro.errors import PlanSpaceError
from repro.optimizer.rules import (
    ImplementationConfig,
    join_rule_arity,
    scan_implementations,
    unary_implementations,
)
from repro.planspace.implicit.edges import EdgeCatalog
from repro.planspace.implicit.keys import KeyTable, OrderIndex
from repro.planspace.implicit.layout import ImplicitGroup, ImplicitLayout
from repro.resilience.faults import fault_point

__all__ = ["CountState", "TowerOp"]


@dataclass
class TowerOp:
    """One physical operator of a unary-tower group."""

    op: object
    count: int
    delivered: bytes | None
    required_kid: int | None  # child-order requirement, as a kid


@dataclass
class CountState:
    """All per-group aggregates of one implicit counting run."""

    layout: ImplicitLayout
    catalog: Catalog
    config: ImplementationConfig
    include_redundant_sorts: bool = True
    use_turbo: bool | None = None  # None = auto
    #: optional BudgetScope checkpointed per phase / subset / tower group
    scope: object = None

    edges: EdgeCatalog = None
    keys: KeyTable = None

    #: per-mask aggregates (the array-backed group tables)
    A: dict[int, int] = field(default_factory=dict)  # group total incl. sorts
    nonenf: dict[int, int] = field(default_factory=dict)
    #: answered order queries: (mask, kid) -> sum of satisfying alternatives
    sord: dict[tuple[int, int], int] = field(default_factory=dict)
    #: required orders per mask, in global first-occurrence order
    required: dict[int, dict[int, None]] = field(default_factory=dict)
    #: per-mask sort counts in required order (== nonenf unless the
    #: redundant-sort ablation is on)
    sort_counts: dict[int, list[int]] = field(default_factory=dict)

    #: unary tower: per gid operator lists, sorts, and totals
    tower_ops: dict[int, list[TowerOp]] = field(default_factory=dict)
    tower_required: dict[int, dict[int, None]] = field(default_factory=dict)
    tower_sorts: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    tower_totals: dict[int, int] = field(default_factory=dict)
    tower_nonenf: dict[int, int] = field(default_factory=dict)

    root_kid: int | None = None
    total: int = 0
    physical_count: int = 0
    turbo_used: bool = False

    # ------------------------------------------------------------------
    def _checkpoint(self, units: int = 0) -> None:
        scope = self.scope
        if scope is not None:
            scope.checkpoint("implicit.count", units)

    def compute(self) -> "CountState":
        fault_point("implicit.count", self)
        self._checkpoint()
        self.edges = EdgeCatalog(self.layout.graph)
        self.keys = KeyTable(self.edges)
        rels_extra, tower_extra, root_seq = self._tower_requirement_seqs()
        self._checkpoint()
        if self._turbo_enabled():
            from repro.planspace.implicit.turbo import turbo_rels_pass

            self.turbo_used = turbo_rels_pass(self, rels_extra)
        if not self.turbo_used:
            extra = [(mask, self.keys.kid(seq)) for mask, seq in rels_extra]
            self._register_merge_requirements(extra)
            self._checkpoint()
            self._count_rels_groups()
        for gid, seq in tower_extra:
            self.tower_required.setdefault(gid, {}).setdefault(self.keys.kid(seq))
        if root_seq is not None:
            self.root_kid = self.keys.kid(root_seq)
        self._checkpoint()
        self._count_tower()
        return self

    # ------------------------------------------------------------------
    def _turbo_enabled(self) -> bool:
        if self.use_turbo is False:
            return False
        if not self.include_redundant_sorts or self.config.enable_index_nl_join:
            # ablation configurations run through the reference path
            if self.use_turbo:
                raise PlanSpaceError(
                    "turbo counting does not support this configuration"
                )
            return False
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - numpy is available here
            return False
        return True

    # ------------------------------------------------------------------
    # pass A: requirement registration (materializer emission order)
    # ------------------------------------------------------------------
    def _tower_requirement_seqs(
        self,
    ) -> tuple[
        list[tuple[int, bytes]], list[tuple[int, bytes]], bytes | None
    ]:
        """StreamAggregate and ORDER BY requirements (registered after all
        merge requirements, mirroring the enforcer pass), as raw byte
        sequences — kid interning happens after the relation-group pass so
        the turbo path can own the kid universe.  Returns the pairs
        targeting relation-set groups (mask-keyed), the pairs targeting
        tower groups (gid-keyed), and the packed root requirement."""
        layout = self.layout
        seq_bytes = self.edges.seq_bytes
        rels: list[tuple[int, bytes]] = []
        tower: list[tuple[int, bytes]] = []
        for gid in layout.tower_gids:
            group = layout.group(gid)
            if group.kind != "agg":
                continue
            for op in unary_implementations(group.op, self.config):
                order = op.required_child_order(0)
                if not order:
                    continue
                seq = seq_bytes(order)
                child = layout.group(group.child_gid)
                if child.kind in ("leaf", "join"):
                    rels.append((child.mask, seq))
                else:
                    tower.append((child.gid, seq))
        root_seq: bytes | None = None
        if layout.root_order:
            root_seq = seq_bytes(layout.root_order)
            root = layout.group(layout.root_gid)
            if root.kind in ("leaf", "join"):  # pragma: no cover - root is proj
                rels.append((root.mask, root_seq))
            else:
                tower.append((root.gid, root_seq))
        return rels, tower, root_seq

    def _register_merge_requirements(self, extra: list[tuple[int, int]]) -> None:
        """Walk every logical join in materializer order, interning cut
        keys and recording merge requirements first-occurrence."""
        _plain, merge = join_rule_arity(self.config, True)
        required = self.required
        if merge:
            cut = self.edges.cut
            cut_kids = self.keys.cut_kids
            for group in self.layout.join_groups():
                for left, right in group.ordered_exprs():
                    bits = cut(left, right)
                    if not bits:
                        continue
                    left_kid, right_kid = cut_kids(bits)
                    required.setdefault(left, {}).setdefault(left_kid)
                    required.setdefault(right, {}).setdefault(right_kid)
        for mask, kid in extra:
            required.setdefault(mask, {}).setdefault(kid)

    # ------------------------------------------------------------------
    # pass B: bottom-up group counting
    # ------------------------------------------------------------------
    def _count_rels_groups(self) -> None:
        layout = self.layout
        config = self.config
        plain_keys, merge = join_rule_arity(config, True)
        plain_cross, _ = join_rule_arity(config, False)
        enforcers = config.enable_sort_enforcers
        inlj = config.enable_index_nl_join
        cut = self.edges.cut
        cut_kids = self.keys.cut_kids
        kid_bytes = self.keys.kid_bytes
        A, nonenf, sord = self.A, self.nonenf, self.sord

        scope = self.scope
        for mask in layout.subset_masks:
            if scope is not None:
                scope.checkpoint("implicit.count")
            group = layout.group_for_mask(mask)
            deliveries: dict[bytes, int] = {}
            if group.kind == "leaf":
                total = self._count_leaf(group, deliveries)
            else:
                total = 0
                for left, right in group.splits:
                    al = A[left]
                    ar = A[right]
                    bits_lr = cut(left, right)
                    if bits_lr:
                        total += 2 * plain_keys * al * ar
                        if merge:
                            lk_lr, rk_lr = cut_kids(bits_lr)
                            lk_rl, rk_rl = cut_kids(cut(right, left))
                            mc_lr = sord[(left, lk_lr)] * sord[(right, rk_lr)]
                            mc_rl = sord[(right, lk_rl)] * sord[(left, rk_rl)]
                            total += mc_lr + mc_rl
                            if mc_lr:
                                seq = kid_bytes[lk_lr]
                                deliveries[seq] = deliveries.get(seq, 0) + mc_lr
                            if mc_rl:
                                seq = kid_bytes[lk_rl]
                                deliveries[seq] = deliveries.get(seq, 0) + mc_rl
                            self.physical_count += 2
                        self.physical_count += 2 * plain_keys
                        if inlj:
                            total += self._count_inlj(left, right, bits_lr, al)
                            total += self._count_inlj(
                                right, left, cut(right, left), ar
                            )
                    else:
                        total += 2 * plain_cross * al * ar
                        self.physical_count += 2 * plain_cross
            self._finalize_group(mask, total, deliveries, enforcers)

    def _count_leaf(self, group: ImplicitGroup, deliveries: dict) -> int:
        scans = scan_implementations(group.op, self.catalog, self.config)
        for scan in scans:
            order = scan.delivered_order()
            if order:
                seq = self.edges.seq_bytes(order)
                deliveries[seq] = deliveries.get(seq, 0) + 1
        self.physical_count += len(scans)
        return len(scans)

    def _count_inlj(self, left: int, right: int, bits: int, a_left: int) -> int:
        """Index-lookup joins of one orientation: inner side must be a
        single relation; one operator per index whose leading key column
        is among the cut's inner columns."""
        if right & (right - 1) or not bits:
            return 0
        group = self.layout.group_for_mask(right)
        assert isinstance(group.op, LogicalGet)
        _left_seq, right_seq = self.edges.decode(bits)
        inner_columns = {self.edges.columns[b].column for b in right_seq}
        matches = sum(
            1
            for index in self.catalog.indexes(group.op.table)
            if index.key[0] in inner_columns
        )
        self.physical_count += matches
        return matches * a_left

    def _finalize_group(
        self,
        mask: int,
        total: int,
        deliveries: dict[bytes, int],
        enforcers: bool,
    ) -> None:
        """Attach sorts, answer this group's order queries, store totals."""
        kid_bytes = self.keys.kid_bytes
        required = self.required.get(mask)
        self.nonenf[mask] = total
        group_total = total
        counts: list[int] = []
        if required and enforcers:
            if self.include_redundant_sorts:
                counts = [total] * len(required)
            else:
                nonenf_index = OrderIndex(deliveries)
                counts = [
                    total - nonenf_index.sum_satisfying(kid_bytes[kid])
                    for kid in required
                ]
            for kid, count in zip(required, counts):
                seq = kid_bytes[kid]
                deliveries[seq] = deliveries.get(seq, 0) + count
                group_total += count
            self.physical_count += len(required)
        self.sort_counts[mask] = counts
        self.A[mask] = group_total
        if required:
            index = OrderIndex(deliveries)
            for kid in required:
                self.sord[(mask, kid)] = index.sum_satisfying(kid_bytes[kid])

    # ------------------------------------------------------------------
    # the unary tower
    # ------------------------------------------------------------------
    def total_of_gid(self, gid: int) -> int:
        group = self.layout.group(gid)
        if group.kind in ("leaf", "join"):
            return self.A[group.mask]
        return self.tower_totals[gid]

    def _tower_sum_satisfying(self, gid: int, seq: bytes) -> int:
        """``S(g, q)`` for a tower group (small: direct filtering)."""
        total = 0
        for top in self.tower_ops[gid]:
            if top.delivered is not None and top.delivered.startswith(seq):
                total += top.count
        for kid, count in self.tower_sorts[gid]:
            if self.keys.kid_bytes[kid].startswith(seq):
                total += count
        return total

    def sord_of_gid(self, gid: int, kid: int) -> int:
        group = self.layout.group(gid)
        if group.kind in ("leaf", "join"):
            return self.sord[(group.mask, kid)]
        return self._tower_sum_satisfying(gid, self.keys.kid_bytes[kid])

    def _count_tower(self) -> None:
        layout = self.layout
        keys = self.keys
        enforcers = self.config.enable_sort_enforcers
        scope = self.scope
        for gid in layout.tower_gids:
            if scope is not None:
                scope.checkpoint("implicit.count")
            group = layout.group(gid)
            ops: list[TowerOp] = []
            nonenf = 0
            for op in unary_implementations(group.op, self.config):
                order = op.required_child_order(0)
                if order:
                    kid = keys.kid_of_columns(order)
                    count = self.sord_of_gid(group.child_gid, kid)
                else:
                    kid = None
                    count = self.total_of_gid(group.child_gid)
                delivered = op.delivered_order()
                ops.append(
                    TowerOp(
                        op=op,
                        count=count,
                        delivered=(
                            self.edges.seq_bytes(delivered) if delivered else None
                        ),
                        required_kid=kid,
                    )
                )
                nonenf += count
            self.tower_ops[gid] = ops
            self.tower_nonenf[gid] = nonenf
            self.physical_count += len(ops)
            sorts: list[tuple[int, int]] = []
            required = self.tower_required.get(gid)
            if required and enforcers:
                self.tower_sorts[gid] = sorts  # filled below; seen by _tower_sum
                for kid in required:
                    if self.include_redundant_sorts:
                        count = nonenf
                    else:
                        count = nonenf - sum(
                            top.count
                            for top in ops
                            if top.delivered is not None
                            and top.delivered.startswith(keys.kid_bytes[kid])
                        )
                    sorts.append((kid, count))
                self.physical_count += len(sorts)
            self.tower_sorts[gid] = sorts
            self.tower_totals[gid] = nonenf + sum(count for _kid, count in sorts)

        root = layout.group(layout.root_gid)
        if self.root_kid is None:
            self.total = self.total_of_gid(root.gid)
        else:
            seq = keys.kid_bytes[self.root_kid]
            if root.kind in ("leaf", "join"):  # pragma: no cover - root is proj
                self.total = self.sord[(root.mask, self.root_kid)]
            else:
                self.total = self._tower_sum_satisfying(root.gid, seq)
        if not self.total and self.root_kid is not None:
            raise PlanSpaceError(
                "no physical operator in the root group satisfies the root "
                "requirement — are sort enforcers disabled?"
            )
