"""Rank <-> plan bijection over the implicit tables.

The recurrences are the paper's (Section 3.3), identical to
:class:`repro.planspace.unranking.Unranker` — only the candidate lists
are implicit: instead of materialized link arrays they come from
:class:`~.tables.TableSet`, which reconstructs a group's alternatives on
first touch.  Operator selection bisects the list's prefix sums, the
local rank splits by the row's ``B_v`` products, and each child recurses
with its slot's requirement.  A single unranking therefore instantiates
O(depth) group tables and exactly the plan's operators — never the
physical memo.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import PlanSpaceError, RankOutOfRangeError
from repro.optimizer.plan import PlanNode
from repro.planspace.implicit.counting import CountState
from repro.planspace.implicit.tables import CandidateList, TableSet

__all__ = ["ImplicitUnranker"]


class ImplicitUnranker:
    """Bijection between ranks ``0..N-1`` and plans, without a memo."""

    def __init__(self, state: CountState, include_redundant_sorts: bool = True):
        self.state = state
        self.tables = TableSet(
            state, include_redundant_sorts=include_redundant_sorts
        )
        self.total = state.total

    def _root_candidates(self) -> CandidateList:
        return self.tables.candidates(
            self.state.layout.root_gid, self.state.root_kid
        )

    # ------------------------------------------------------------------
    def unrank(self, rank: int) -> PlanNode:
        """The plan with number ``rank``."""
        if not 0 <= rank < self.total:
            raise RankOutOfRangeError(rank, self.total)
        return self._unrank_among(self._root_candidates(), rank)

    def _unrank_among(self, candidates: CandidateList, rank: int) -> PlanNode:
        cumulative = candidates.cumulative
        # bisect over the exclusive prefix sums = the paper's linear
        # prefix-sum scan, sublinear in wide groups
        pos = bisect_right(cumulative, rank) - 1
        if pos >= len(candidates.rows):  # pragma: no cover - guarded by total
            raise PlanSpaceError(
                f"rank {rank} exceeds the {cumulative[-1]} plans of this list"
            )
        row = candidates.rows[pos]
        local = rank - cumulative[pos]
        tables = self.tables
        n = len(row.slots)
        children = []
        if n:
            # R_v / s_v mixed-radix split, highest slot first
            prefix = row.prefix
            remainder = local
            sub_ranks = [0] * n
            for i in range(n - 1, 0, -1):
                sub_ranks[i] = remainder // prefix[i]
                remainder %= prefix[i]
            sub_ranks[0] = remainder
            for (child_gid, requirement), sub_rank in zip(row.slots, sub_ranks):
                children.append(
                    self._unrank_among(
                        tables.candidates(child_gid, requirement), sub_rank
                    )
                )
        return PlanNode(
            op=tables.operator(candidates.gid, row),
            children=tuple(children),
            group_id=candidates.gid,
            local_id=row.local_id,
            cardinality=tables.cardinality(candidates.gid),
        )

    # ------------------------------------------------------------------
    def rank(self, plan: PlanNode) -> int:
        """The number of ``plan`` within the space (inverse of unrank)."""
        return self._rank_among(self._root_candidates(), plan)

    def _rank_among(self, candidates: CandidateList, plan: PlanNode) -> int:
        row = None
        skipped = 0
        for pos, candidate in enumerate(candidates.rows):
            if (
                candidates.gid == plan.group_id
                and candidate.local_id == plan.local_id
            ):
                row = candidate
                skipped = candidates.cumulative[pos]
                break
        if row is None:
            raise PlanSpaceError(
                f"operator {plan.expr_id} is not a valid candidate here "
                "(plan does not belong to this space)"
            )
        local = 0
        for i, (child_gid, requirement) in enumerate(row.slots):
            sub_rank = self._rank_among(
                self.tables.candidates(child_gid, requirement), plan.children[i]
            )
            local += sub_rank * row.prefix[i]
        if local >= row.count:
            raise PlanSpaceError(
                f"inconsistent plan: local rank {local} out of range for "
                f"operator {candidates.gid}.{row.local_id}"
            )
        return skipped + local
