"""The implicit plan-space facade.

Mirrors :class:`repro.planspace.space.PlanSpace` — count, unrank, rank,
enumerate, sample — but is built from a *logical* description of the
search space (bound query + join graph + implementation rules) and never
constructs a physical memo.  Counting clique-sized spaces drops from
minutes of memo materialization to sub-second table passes; unranking
instantiates exactly the operators on the requested plan's path, with the
same group and local ids the materialized pipeline would produce.

Scope: the implicit layout simulates the enumeration explorer's memo.
Transformation-rule exploration spans the same space but lays groups out
differently, and post-optimization pruning removes expressions — both are
rejected so implicit ranks never silently diverge from the ranks the
materialized path would assign.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.catalog.catalog import Catalog
from repro.errors import PlanSpaceError, RankOutOfRangeError
from repro.obs.trace import phase as obs_phase
from repro.optimizer.plan import PlanNode
from repro.planspace.implicit.counting import CountState
from repro.planspace.implicit.layout import ImplicitLayout
from repro.planspace.implicit.sampling import ImplicitPlanSampler
from repro.planspace.implicit.unranking import ImplicitUnranker
from repro.sql.binder import Binder, BoundQuery
from repro.sql.parser import parse

__all__ = ["ImplicitPlanSpace"]


class ImplicitPlanSpace:
    """Counting, enumeration, ranking/unranking and uniform sampling over
    a query's plan space, computed without materializing it."""

    def __init__(self, state: CountState, include_redundant_sorts: bool = True):
        self.state = state
        self.include_redundant_sorts = include_redundant_sorts
        self.unranker = ImplicitUnranker(
            state, include_redundant_sorts=include_redundant_sorts
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_query(
        cls,
        catalog: Catalog,
        bound: BoundQuery,
        options=None,
        include_redundant_sorts: bool = True,
        use_turbo: bool | None = None,
        scope=None,
    ) -> "ImplicitPlanSpace":
        """Build the implicit space for a bound query.

        ``options`` is an :class:`~repro.optimizer.optimizer.OptimizerOptions`
        (cross-product policy + implementation config); defaults apply when
        omitted.  ``scope`` is an optional
        :class:`~repro.resilience.budget.BudgetScope` checkpointed during
        layout and counting.
        """
        from repro.optimizer.optimizer import ExplorationStrategy, OptimizerOptions

        if options is None:
            options = OptimizerOptions()
        if options.exploration is not ExplorationStrategy.ENUMERATION:
            raise PlanSpaceError(
                "the implicit plan space simulates the enumeration explorer's "
                "memo layout; transformation-rule memos must use the "
                "materialized PlanSpace"
            )
        if options.pruning_factor is not None:
            raise PlanSpaceError(
                "the implicit plan space models the unpruned search space; "
                "pruned memos must use the materialized PlanSpace"
            )
        timings: dict[str, float] = {}
        with obs_phase("implicit.layout") as span:
            layout = ImplicitLayout(
                bound, options.allow_cross_products, scope=scope
            )
        timings["layout"] = span.elapsed_s
        with obs_phase("implicit.count") as span:
            state = CountState(
                layout=layout,
                catalog=catalog,
                config=options.implementation,
                include_redundant_sorts=include_redundant_sorts,
                use_turbo=use_turbo,
                scope=scope,
            ).compute()
            span.add("groups", len(layout.groups))
        timings["count"] = span.elapsed_s
        state.timings = timings
        return cls(state, include_redundant_sorts=include_redundant_sorts)

    @classmethod
    def from_sql(
        cls,
        catalog: Catalog,
        sql: str,
        options=None,
        include_redundant_sorts: bool = True,
        use_turbo: bool | None = None,
    ) -> "ImplicitPlanSpace":
        bound = Binder(catalog).bind(parse(sql))
        return cls.from_query(
            catalog,
            bound,
            options=options,
            include_redundant_sorts=include_redundant_sorts,
            use_turbo=use_turbo,
        )

    # ------------------------------------------------------------------
    # the paper's primitives
    # ------------------------------------------------------------------
    def count(self) -> int:
        """``N``: the exact number of execution plans in the space."""
        return self.state.total

    def unrank(self, rank: int) -> PlanNode:
        """Plan number ``rank`` (0-based)."""
        return self.unranker.unrank(rank)

    def rank(self, plan: PlanNode) -> int:
        """The number of ``plan``; inverse of :meth:`unrank`."""
        return self.unranker.rank(plan)

    def sampler(self, seed: int | random.Random = 0) -> ImplicitPlanSampler:
        return ImplicitPlanSampler(self.unranker, seed=seed)

    def sample(
        self, n: int, seed: int | random.Random = 0, unique: bool = False
    ) -> list[PlanNode]:
        """``n`` uniform random plans."""
        return self.sampler(seed).sample(n, unique=unique)

    def sample_ranks(
        self, n: int, seed: int | random.Random = 0, unique: bool = False
    ) -> list[int]:
        return self.sampler(seed).sample_ranks(n, unique=unique)

    def enumerate(
        self, start: int = 0, stop: int | None = None, step: int = 1
    ) -> Iterator[tuple[int, PlanNode]]:
        """Lazily yield ``(rank, plan)`` in lexicographic rank order."""
        if step <= 0:
            raise ValueError("step must be positive")
        total = self.state.total
        if stop is None:
            stop = total
        if stop > total:
            raise RankOutOfRangeError(stop - 1, total)
        if start < 0:
            raise RankOutOfRangeError(start, total)
        unrank = self.unranker.unrank
        for rank in range(start, stop, step):
            yield rank, unrank(rank)

    def all_plans(self, limit: int | None = None) -> list[PlanNode]:
        """Materialize the whole space (or its first ``limit`` plans)."""
        stop = None if limit is None else min(limit, self.count())
        return [plan for _, plan in self.enumerate(stop=stop)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def timings(self) -> dict[str, float]:
        return getattr(self.state, "timings", {})

    def group_count(self) -> int:
        return len(self.state.layout.groups)

    def logical_operator_count(self) -> int:
        return self.state.layout.logical_expression_count()

    def physical_operator_count(self) -> int:
        """How many physical expressions the materializer would create —
        computed analytically, none of them instantiated."""
        return self.state.physical_count

    def describe(self) -> str:
        layout = self.state.layout
        mode = "turbo" if self.state.turbo_used else "reference"
        lines = [
            f"implicit plan space over {len(layout.groups)} groups, "
            f"{self.state.physical_count} physical operators (virtual, {mode})",
            f"root group: {layout.root_gid}, "
            f"root requirement: {layout.root_order or '(none)'}",
            f"total plans N = {self.count():,}",
        ]
        return "\n".join(lines)

    def __len__(self) -> int:
        return self.count()
