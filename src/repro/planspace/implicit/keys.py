"""Interned cut keys and prefix-closed order indexes.

Every sort order the search space mentions — merge-join key sequences,
index key orders, GROUP BY / ORDER BY requirements — is interned here as a
*kid* (key id) over its packed byte form (:mod:`.edges`).  Two structures
answer everything counting and unranking need:

* :meth:`KeyTable.kid` — identity: the same column sequence always maps to
  the same kid, which is what deduplicates ``Sort`` enforcers exactly like
  the memo's duplicate detection does;
* :class:`OrderIndex` — a per-group sorted index of *delivered* orders
  with bigint prefix sums.  ``sum_satisfying(q)`` returns the total count
  of operators whose delivered order satisfies the required order ``q``
  (the paper's qualification rule: requirement is a prefix of delivery) as
  one lexicographic range query — delivered orders extending ``q`` occupy
  the contiguous byte-string interval ``[q, q + 0xff)``.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.planspace.implicit.edges import EdgeCatalog

__all__ = ["KeyTable", "OrderIndex"]

#: sentinel "required order" ids
NO_ORDER_KID = -1


class KeyTable:
    """Kid interning over packed key byte strings.

    Two backings share one id space:

    * the plain dict/list path (reference counting pass, and any kid the
      preloaded matrix does not contain);
    * a :meth:`preload`-ed, lexicographically sorted byte matrix (the
      turbo pass's kid universe) — lookups binary-search it, and the byte
      strings themselves are sliced out lazily, so a count-only run never
      materializes hundreds of thousands of ``bytes`` objects.
    """

    def __init__(self, edges: EdgeCatalog):
        self.edges = edges
        self._kid_by_bytes: dict[bytes, int] = {}
        self.kid_bytes = _KidBytes(self)
        self._overflow: list[bytes] = []
        self._mat_flat: bytes = b""
        self._width: int = 0
        self._lengths: list[int] = []
        self._preloaded: int = 0
        #: cut bitmask -> (left kid, right kid), memoized: symmetric
        #: workloads reuse the same cut key sets across many subsets
        self._cut_kids: dict[int, tuple[int, int]] = {}

    def preload(self, matrix, lengths) -> None:
        """Adopt a sorted, 0-padded ``(K, width)`` uint8 kid matrix: row
        index = kid id = lexicographic rank."""
        assert not self._preloaded and not self._overflow
        self._mat_flat = matrix.tobytes()
        self._width = matrix.shape[1]
        self._lengths = lengths.tolist()
        self._preloaded = len(self._lengths)

    def _row(self, kid: int) -> bytes:
        width = self._width
        start = kid * width
        return self._mat_flat[start : start + self._lengths[kid]]

    def bytes_of(self, kid: int) -> bytes:
        if kid < self._preloaded:
            return self._row(kid)
        return self._overflow[kid - self._preloaded]

    def kid(self, seq: bytes) -> int:
        """Intern a packed key sequence."""
        k = self._kid_by_bytes.get(seq)
        if k is not None:
            return k
        if self._preloaded:
            width = self._width
            if len(seq) <= width:
                probe = seq.ljust(width, b"\x00")
                flat = self._mat_flat
                lo, hi = 0, self._preloaded
                while lo < hi:
                    mid = (lo + hi) // 2
                    if flat[mid * width : (mid + 1) * width] < probe:
                        lo = mid + 1
                    else:
                        hi = mid
                if (
                    lo < self._preloaded
                    and flat[lo * width : (lo + 1) * width] == probe
                ):
                    self._kid_by_bytes[seq] = lo
                    return lo
        k = self._preloaded + len(self._overflow)
        self._kid_by_bytes[seq] = k
        self._overflow.append(seq)
        return k

    def kid_of_columns(self, columns) -> int:
        """Intern a ColumnId sequence (index keys, GROUP BY, ORDER BY)."""
        return self.kid(self.edges.seq_bytes(tuple(columns)))

    def cut_kids(self, cut_bits: int) -> tuple[int, int]:
        """``(left kid, right kid)`` for one oriented cut bitmask."""
        pair = self._cut_kids.get(cut_bits)
        if pair is None:
            left_seq, right_seq = self.edges.decode(cut_bits)
            pair = (self.kid(left_seq), self.kid(right_seq))
            self._cut_kids[cut_bits] = pair
        return pair

    def columns_of(self, kid: int):
        """The ColumnId sequence of a kid (for ``Sort``/key construction)."""
        return self.edges.seq_columns(self.bytes_of(kid))


class _KidBytes:
    """Indexable ``kid -> bytes`` facade over both key-table backings."""

    __slots__ = ("_table",)

    def __init__(self, table: KeyTable):
        self._table = table

    def __getitem__(self, kid: int) -> bytes:
        return self._table.bytes_of(kid)

    def __len__(self) -> int:
        table = self._table
        return table._preloaded + len(table._overflow)


class OrderIndex:
    """Sorted (delivered order -> total count) index for one group."""

    __slots__ = ("keys", "prefix")

    def __init__(self, deliveries: dict[bytes, int]):
        items = sorted(deliveries.items())
        self.keys = [seq for seq, _count in items]
        prefix = [0]
        total = 0
        for _seq, count in items:
            total += count
            prefix.append(total)
        self.prefix = prefix

    def sum_satisfying(self, required: bytes) -> int:
        """Total count of deliveries whose order satisfies ``required``."""
        keys = self.keys
        lo = bisect_left(keys, required)
        hi = bisect_left(keys, required + b"\xff")
        return self.prefix[hi] - self.prefix[lo]
