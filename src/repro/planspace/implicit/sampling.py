"""Uniform sampling over the implicit space.

Thin binding of the shared :class:`~repro.planspace.sampling.RankSampler`
contract to the implicit unranker: identical seed, identical space ⇒
identical ranks as the materialized :class:`UniformPlanSampler` — the
property suite asserts the streams match rank for rank.
"""

from __future__ import annotations

import random

from repro.optimizer.plan import PlanNode
from repro.planspace.implicit.unranking import ImplicitUnranker
from repro.planspace.sampling import RankSampler

__all__ = ["ImplicitPlanSampler"]


class ImplicitPlanSampler(RankSampler):
    """Uniform random plans from an implicit space."""

    def __init__(self, unranker: ImplicitUnranker, seed: int | random.Random = 0):
        super().__init__(seed)
        self.unranker = unranker

    @property
    def total(self) -> int:
        return self.unranker.total

    def unrank(self, rank: int) -> PlanNode:
        return self.unranker.unrank(rank)
