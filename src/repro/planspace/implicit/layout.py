"""The implicit memo layout: groups and logical expressions, simulated.

The materialized pipeline builds its group structure twice over: the
initial copy-in seeds singles, the left-deep prefix chain and the unary
tower, then exploration inserts one logical join per valid ordered
partition.  The resulting layout — group ids in creation order, logical
expressions in insertion order — is fully determined by the bound query
and the join graph, so the implicit engine *simulates* it instead:

* groups of the initial memo keep their ids (``build_initial_memo`` runs
  as-is: it is O(query) and supplies the leaf ``Get`` operators, the
  left-deep prefix joins, and the unary tower);
* every further subset of the enumeration universe (connected subsets, or
  all subsets with cross products) gets the next id, in universe order —
  exactly the order ``EnumerationExplorer`` calls ``get_or_create``;
* a join group's logical expressions are its valid splits in bucket
  order, both orientations, with the initial left-deep expression (if the
  group has one) first — the memo's duplicate elimination would have
  skipped its re-insertion.

``local_id`` arithmetic follows: logical expressions occupy ``1..L``, the
physical operators the implicit engine *counts without creating* would
occupy ``L+1..``.  The simulation is byte-compatible with the explored
memo — asserted group-by-group in the property suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.algebra.logical import LogicalGet
from repro.errors import PlanSpaceError
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import BoundQuery

__all__ = ["ImplicitGroup", "ImplicitLayout"]


@dataclass
class ImplicitGroup:
    """One simulated memo group.

    ``kind`` is ``leaf`` (single relation), ``join`` (relation set of two
    or more), or the unary-tower tags ``select``/``agg``/``proj``.  Join
    groups carry their valid unordered ``splits`` (left side holding the
    subset's name-smallest alias, historical order) and, for groups seeded
    by the initial left-deep plan, the ``initial`` ordered pair.
    """

    gid: int
    kind: str
    mask: int | None = None
    relations: frozenset[str] = frozenset()
    op: object | None = None  # leaf Get / tower logical operator
    child_gid: int | None = None  # tower groups
    splits: list[tuple[int, int]] = field(default_factory=list)
    initial: tuple[int, int] | None = None

    @property
    def logical_count(self) -> int:
        """Number of logical expressions (local ids ``1..L``)."""
        if self.kind == "join":
            # both orientations of every split; the initial expression is
            # one of them (inserted first, deduplicated later)
            return 2 * len(self.splits)
        return 1

    def ordered_exprs(self) -> Iterator[tuple[int, int]]:
        """The group's logical joins as ordered mask pairs, in local-id
        order: the initial left-deep expression first, then both
        orientations of every split (minus the duplicate)."""
        initial = self.initial
        if initial is not None:
            yield initial
            for left, right in self.splits:
                if (left, right) != initial:
                    yield (left, right)
                if (right, left) != initial:
                    yield (right, left)
        else:
            for left, right in self.splits:
                yield (left, right)
                yield (right, left)


class ImplicitLayout:
    """Simulated memo layout for one query."""

    def __init__(self, bound: BoundQuery, allow_cross_products: bool):
        setup = build_initial_memo(bound, allow_cross_products)
        self.bound = bound
        self.allow_cross_products = allow_cross_products
        self.graph: JoinGraph = setup.graph
        self.universe = self.graph.universe
        self.root_order = bound.order_by
        self.join_root_gid = setup.join_root_gid

        memo = setup.memo
        self.root_gid: int = memo.root_group_id
        self.groups: list[ImplicitGroup] = []
        self.gid_by_mask: dict[int, int] = {}
        self.tower_gids: list[int] = []

        # 1. Groups of the initial memo keep their ids.
        for group in memo.groups:
            tag = group.key[0]
            if tag == "rels":
                mask = group.mask
                exprs = group.logical_exprs()
                if len(group.relations) == 1:
                    record = ImplicitGroup(
                        gid=group.gid,
                        kind="leaf",
                        mask=mask,
                        relations=group.relations,
                        op=exprs[0].op,
                    )
                    assert isinstance(record.op, LogicalGet)
                else:
                    join = exprs[0]
                    record = ImplicitGroup(
                        gid=group.gid,
                        kind="join",
                        mask=mask,
                        relations=group.relations,
                        initial=(
                            memo.group(join.children[0]).mask,
                            memo.group(join.children[1]).mask,
                        ),
                    )
                self.gid_by_mask[mask] = group.gid
            elif tag in ("select", "agg", "proj"):
                expr = group.logical_exprs()[0]
                record = ImplicitGroup(
                    gid=group.gid,
                    kind=tag,
                    relations=group.relations,
                    mask=group.mask,
                    op=expr.op,
                    child_gid=expr.children[0],
                )
                self.tower_gids.append(group.gid)
            else:  # pragma: no cover - defensive
                raise PlanSpaceError(f"unknown group key tag {tag!r}")
            self.groups.append(record)

        # 2. The enumeration universe, in explorer order.
        graph = self.graph
        if allow_cross_products:
            subset_masks = graph.all_subset_masks()
            buckets = {
                mask: graph.cross_splits_m(mask)
                for mask in subset_masks
                if mask & (mask - 1)
            }
        else:
            subset_masks = graph.connected_subset_masks()
            buckets = graph.csg_cmp_buckets()
        self.subset_masks = subset_masks

        for mask in subset_masks:
            if not mask & (mask - 1):
                continue  # singles: seeded by the initial memo
            splits = buckets.get(mask, [])
            gid = self.gid_by_mask.get(mask)
            if gid is None:
                gid = len(self.groups)
                record = ImplicitGroup(
                    gid=gid,
                    kind="join",
                    mask=mask,
                    relations=self.universe.names(mask),
                    splits=splits,
                )
                self.groups.append(record)
                self.gid_by_mask[mask] = gid
            else:
                record = self.groups[gid]
                record.splits = splits
                if record.initial is not None and not any(
                    record.initial in ((l, r), (r, l)) for l, r in splits
                ):  # pragma: no cover - defensive
                    raise PlanSpaceError(
                        f"initial join of group {gid} missing from its splits"
                    )

    # ------------------------------------------------------------------
    def group(self, gid: int) -> ImplicitGroup:
        return self.groups[gid]

    def group_for_mask(self, mask: int) -> ImplicitGroup:
        return self.groups[self.gid_by_mask[mask]]

    def join_groups(self) -> Iterator[ImplicitGroup]:
        """Join groups in gid order (= the materializer's iteration order)."""
        for group in self.groups:
            if group.kind == "join":
                yield group

    def logical_expression_count(self) -> int:
        return sum(group.logical_count for group in self.groups)
