"""The implicit memo layout: groups and logical expressions, simulated.

The materialized pipeline builds its group structure twice over: the
initial copy-in seeds singles, the left-deep prefix chain and the unary
tower, then exploration inserts one logical join per valid ordered
partition.  The resulting layout — group ids in creation order, logical
expressions in insertion order — is fully determined by the bound query
and the join graph.  Since PR 5 that determination lives in *one* place:
:func:`repro.memo.columnar.build_logical_store`, the batched explorer's
builder.  The implicit engine runs the same builder over the initial memo
and consumes the resulting child-gid arrays directly:

* groups of the initial memo keep their ids (``build_initial_memo`` runs
  as-is: it is O(query) and supplies the leaf ``Get`` operators, the
  left-deep prefix joins, and the unary tower);
* every further subset of the enumeration universe gets the next id, in
  universe order — the builder calls ``get_or_create`` exactly as the
  explorer does;
* a join group's logical expressions are its valid splits in bucket
  order, both orientations, with the initial left-deep expression (if the
  group has one) first — read positionally from the store's ``sl``/``sr``
  columns; :attr:`ImplicitGroup.splits` rebuilds the mask-pair list
  lazily for the per-group Python passes, while the turbo counting path
  (:mod:`.turbo`) gathers the columns wholesale without ever building it.

``local_id`` arithmetic follows: logical expressions occupy ``1..L``, the
physical operators the implicit engine *counts without creating* would
occupy ``L+1..``.  The simulation is byte-compatible with the explored
memo — asserted group-by-group in the property suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.algebra.logical import LogicalGet
from repro.errors import PlanSpaceError
from repro.memo.columnar import (
    ColumnarLogicalStore,
    ColumnarUnsupported,
    build_logical_store,
)
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import BoundQuery

__all__ = ["ImplicitGroup", "ImplicitLayout"]


@dataclass
class ImplicitGroup:
    """One simulated memo group.

    ``kind`` is ``leaf`` (single relation), ``join`` (relation set of two
    or more), or the unary-tower tags ``select``/``agg``/``proj``.  Join
    groups read their valid unordered ``splits`` (left side holding the
    subset's name-smallest alias, historical order) from the shared
    columnar logical ``store``; the mask-pair list is built lazily on
    first access.  Groups seeded by the initial left-deep plan carry the
    ``initial`` ordered pair.
    """

    gid: int
    kind: str
    mask: int | None = None
    relations: frozenset[str] = frozenset()
    op: object | None = None  # leaf Get / tower logical operator
    child_gid: int | None = None  # tower groups
    initial: tuple[int, int] | None = None
    store: ColumnarLogicalStore | None = field(default=None, repr=False)
    _splits: list[tuple[int, int]] | None = field(default=None, repr=False)

    @property
    def splits(self) -> list[tuple[int, int]]:
        """The group's unordered splits as mask pairs (lazy)."""
        splits = self._splits
        if splits is None:
            store = self.store
            rng = None if store is None else store.split_rows(self.gid)
            if rng is None:
                splits = []
            else:
                groups = store.memo.groups
                sl, sr = store.sl, store.sr
                splits = [
                    (groups[sl[row]].mask, groups[sr[row]].mask)
                    for row in range(rng[0], rng[1])
                ]
            self._splits = splits
        return splits

    @property
    def logical_count(self) -> int:
        """Number of logical expressions (local ids ``1..L``)."""
        if self.kind == "join":
            # both orientations of every split; the initial expression is
            # one of them (inserted first, deduplicated later)
            store = self.store
            if store is not None:
                return store.logical_join_count(self.gid)
            return 2 * len(self.splits)
        return 1

    def ordered_exprs(self) -> Iterator[tuple[int, int]]:
        """The group's logical joins as ordered mask pairs, in local-id
        order: the initial left-deep expression first, then both
        orientations of every split (minus the duplicate)."""
        initial = self.initial
        if initial is not None:
            yield initial
            for left, right in self.splits:
                if (left, right) != initial:
                    yield (left, right)
                if (right, left) != initial:
                    yield (right, left)
        else:
            for left, right in self.splits:
                yield (left, right)
                yield (right, left)


class ImplicitLayout:
    """Simulated memo layout for one query."""

    def __init__(self, bound: BoundQuery, allow_cross_products: bool, scope=None):
        setup = build_initial_memo(bound, allow_cross_products)
        self.bound = bound
        self.allow_cross_products = allow_cross_products
        self.graph: JoinGraph = setup.graph
        self.universe = self.graph.universe
        self.root_order = bound.order_by
        self.join_root_gid = setup.join_root_gid

        memo = setup.memo
        self.root_gid: int = memo.root_group_id
        self.groups: list[ImplicitGroup] = []
        self.tower_gids: list[int] = []

        # One shared builder determines the layout: the columnar logical
        # store appends the enumeration universe's groups to the initial
        # memo (explorer gid order) and holds every bucket as child-gid
        # columns.  The simulation below is just views over it.
        n_initial = len(memo.groups)
        try:
            store = build_logical_store(
                memo, self.graph, allow_cross_products, scope=scope
            )
        except ColumnarUnsupported as exc:  # pragma: no cover - defensive
            raise PlanSpaceError(str(exc)) from None
        self.store = store
        self.subset_masks = store.subset_masks
        self.gid_by_mask: dict[int, int] = memo._rels_gid_by_mask

        # 1. Groups of the initial memo keep their ids.
        memo_groups = memo.groups
        for group in memo_groups[:n_initial]:
            tag = group.key[0]
            if tag == "rels":
                mask = group.mask
                if len(group.relations) == 1:
                    record = ImplicitGroup(
                        gid=group.gid,
                        kind="leaf",
                        mask=mask,
                        relations=group.relations,
                        op=group.logical_exprs()[0].op,
                    )
                    assert isinstance(record.op, LogicalGet)
                else:
                    init = store.initial_by_gid[group.gid]
                    record = ImplicitGroup(
                        gid=group.gid,
                        kind="join",
                        mask=mask,
                        relations=group.relations,
                        initial=(
                            memo_groups[init[0]].mask,
                            memo_groups[init[1]].mask,
                        ),
                        store=store,
                    )
            elif tag in ("select", "agg", "proj"):
                expr = group.logical_exprs()[0]
                record = ImplicitGroup(
                    gid=group.gid,
                    kind=tag,
                    relations=group.relations,
                    mask=group.mask,
                    op=expr.op,
                    child_gid=expr.children[0],
                )
                self.tower_gids.append(group.gid)
            else:  # pragma: no cover - defensive
                raise PlanSpaceError(f"unknown group key tag {tag!r}")
            self.groups.append(record)

        # 2. The enumeration universe, in builder (= explorer) order.
        for group in memo_groups[n_initial:]:
            self.groups.append(
                ImplicitGroup(
                    gid=group.gid,
                    kind="join",
                    mask=group.mask,
                    relations=group.relations,
                    store=store,
                )
            )

    # ------------------------------------------------------------------
    def group(self, gid: int) -> ImplicitGroup:
        return self.groups[gid]

    def group_for_mask(self, mask: int) -> ImplicitGroup:
        return self.groups[self.gid_by_mask[mask]]

    def join_groups(self) -> Iterator[ImplicitGroup]:
        """Join groups in gid order (= the materializer's iteration order)."""
        for group in self.groups:
            if group.kind == "join":
                yield group

    def logical_expression_count(self) -> int:
        return sum(group.logical_count for group in self.groups)
