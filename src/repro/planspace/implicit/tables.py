"""Lazy array-backed operator tables for unranking.

Counting never enumerates individual operators — it works on group
aggregates.  Unranking must: selecting the operator for a rank walks a
group's alternatives in ``local_id`` order with their ``N(v)`` counts.
:class:`GroupTable` reconstructs exactly the rows the materializer would
have inserted — same order, same local ids — *for one group at a time*,
on demand, from the layout plus the counting aggregates.  A rank's plan
touches O(depth) groups, so only those groups ever get tables; repeated
unrankings share them.

Rows hold numbers and byte-packed orders only.  The physical operator
object of a row is built lazily (and cached) the first time a plan
actually includes it — the point of the implicit engine is that plans
instantiate O(plan) operators, not O(space).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate

from repro.algebra.logical import LogicalGet
from repro.errors import PlanSpaceError
from repro.optimizer.rules import (
    index_nl_join_implementations,
    join_implementations,
    scan_implementations,
)
from repro.planspace.implicit.counting import CountState

__all__ = ["GroupTable", "CandidateList", "TableSet"]

#: slot requirement sentinel: enforcer child (non-enforcers of own group)
NONENF = "nonenf"


@dataclass
class Row:
    """One virtual physical operator of a group."""

    local_id: int
    kind: str  # scan | join | inlj | unary | sort
    payload: tuple
    count: int
    delivered: bytes | None
    #: per child slot: (child_gid, requirement) where requirement is
    #: None (any), a kid id, or (NONENF, sort kid) for enforcer children
    slots: tuple
    #: B_v prefix products, B_v(0)=1 first
    prefix: tuple


@dataclass
class CandidateList:
    """Qualifying rows of one (group, requirement) pair, with the prefix
    sums operator selection bisects over."""

    gid: int
    rows: list[Row]
    cumulative: list[int]  # exclusive prefix sums, len(rows)+1

    @property
    def total(self) -> int:
        return self.cumulative[-1]


class GroupTable:
    """All virtual operator rows of one group, in local-id order."""

    def __init__(self, tables: "TableSet", gid: int):
        self.gid = gid
        self.rows: list[Row] = []
        self.row_by_local: dict[int, Row] = {}
        self._build(tables)

    def _add(self, kind, payload, count, delivered, slots, bs, local_id):
        prefix = (1, *accumulate(bs, lambda a, b: a * b)) if bs else (1,)
        row = Row(
            local_id=local_id,
            kind=kind,
            payload=payload,
            count=count,
            delivered=delivered,
            slots=slots,
            prefix=prefix,
        )
        self.rows.append(row)
        self.row_by_local[local_id] = row
        return row

    def _build(self, tables: "TableSet") -> None:
        state = tables.state
        layout = state.layout
        group = layout.group(self.gid)
        config = state.config
        local = group.logical_count + 1

        if group.kind == "leaf":
            scans = scan_implementations(group.op, state.catalog, config)
            for pos, scan in enumerate(scans):
                order = scan.delivered_order()
                delivered = state.edges.seq_bytes(order) if order else None
                self._add("scan", (pos,), 1, delivered, (), (), local)
                local += 1
        elif group.kind == "join":
            A = state.A
            sord = state.sord
            gid_by_mask = layout.gid_by_mask
            kid_bytes = state.keys.kid_bytes
            cut = state.edges.cut
            cut_kids = state.keys.cut_kids
            plain_nlj = config.enable_nested_loop_join
            hashj = config.enable_hash_join
            merge = config.enable_merge_join
            inlj = config.enable_index_nl_join
            for left, right in group.ordered_exprs():
                lgid = gid_by_mask[left]
                rgid = gid_by_mask[right]
                bits = cut(left, right)
                al, ar = A[left], A[right]
                ops_pos = 0
                if plain_nlj:
                    self._add(
                        "join",
                        (left, right, ops_pos),
                        al * ar,
                        None,
                        ((lgid, None), (rgid, None)),
                        (al, ar),
                        local,
                    )
                    local += 1
                    ops_pos += 1
                if bits:
                    lk, rk = cut_kids(bits)
                    if hashj:
                        self._add(
                            "join",
                            (left, right, ops_pos),
                            al * ar,
                            None,
                            ((lgid, None), (rgid, None)),
                            (al, ar),
                            local,
                        )
                        local += 1
                        ops_pos += 1
                    if merge:
                        bl = sord[(left, lk)]
                        br = sord[(right, rk)]
                        self._add(
                            "join",
                            (left, right, ops_pos),
                            bl * br,
                            kid_bytes[lk],
                            ((lgid, lk), (rgid, rk)),
                            (bl, br),
                            local,
                        )
                        local += 1
                        ops_pos += 1
                    if inlj:
                        for pos in range(
                            tables.inlj_count(left, right, bits)
                        ):
                            self._add(
                                "inlj",
                                (left, right, pos),
                                al,
                                None,
                                ((lgid, None),),
                                (al,),
                                local,
                            )
                            local += 1
        else:  # unary tower
            for pos, top in enumerate(state.tower_ops[self.gid]):
                child_gid = group.child_gid
                b = top.count
                self._add(
                    "unary",
                    (pos,),
                    top.count,
                    top.delivered,
                    ((child_gid, top.required_kid),),
                    (b,),
                    local,
                )
                local += 1

        # sort enforcers, in global first-occurrence requirement order
        if config.enable_sort_enforcers:
            kid_bytes = state.keys.kid_bytes
            if group.kind in ("leaf", "join"):
                required = state.required.get(group.mask, {})
                counts = state.sort_counts.get(group.mask, [])
            else:
                required = state.tower_required.get(self.gid, {})
                counts = [c for _k, c in state.tower_sorts.get(self.gid, [])]
            for (kid, count) in zip(required, counts):
                self._add(
                    "sort",
                    (kid,),
                    count,
                    kid_bytes[kid],
                    ((self.gid, (NONENF, kid)),),
                    (count,),
                    local,
                )
                local += 1


class TableSet:
    """Lazy per-group tables plus candidate lists and operator caches."""

    def __init__(self, state: CountState, include_redundant_sorts: bool = True):
        self.state = state
        self.include_redundant_sorts = include_redundant_sorts
        self._tables: dict[int, GroupTable] = {}
        self._candidates: dict[tuple, CandidateList] = {}
        self._join_ops: dict[tuple[int, int], tuple] = {}
        self._inlj_ops: dict[tuple[int, int], list] = {}
        self._scan_ops: dict[int, list] = {}
        self._op_cache: dict[tuple[int, int], object] = {}
        self._cardinality: dict[int, float] = {}
        self._estimator = None

    # ------------------------------------------------------------------
    def table(self, gid: int) -> GroupTable:
        table = self._tables.get(gid)
        if table is None:
            table = GroupTable(self, gid)
            self._tables[gid] = table
        return table

    def candidates(self, gid: int, requirement) -> CandidateList:
        """The qualifying rows of ``(group, requirement)`` in local order.

        ``requirement`` is None (all alternatives), a kid id (delivered
        order must satisfy it), or ``(NONENF, kid)`` (enforcer children:
        every non-enforcer, minus the already-ordered ones under the
        redundant-sort ablation).
        """
        key = (gid, requirement)
        cached = self._candidates.get(key)
        if cached is not None:
            return cached
        table = self.table(gid)
        if requirement is None:
            rows = table.rows
        elif isinstance(requirement, tuple):
            _tag, kid = requirement
            rows = [row for row in table.rows if row.kind != "sort"]
            if not self.include_redundant_sorts:
                seq = self.state.keys.kid_bytes[kid]
                rows = [
                    row
                    for row in rows
                    if row.delivered is None or not row.delivered.startswith(seq)
                ]
        else:
            seq = self.state.keys.kid_bytes[requirement]
            rows = [
                row
                for row in table.rows
                if row.delivered is not None and row.delivered.startswith(seq)
            ]
        cumulative = [0, *accumulate(row.count for row in rows)]
        cached = CandidateList(gid=gid, rows=rows, cumulative=cumulative)
        self._candidates[key] = cached
        return cached

    # ------------------------------------------------------------------
    # operator construction (lazy, cached per row)
    # ------------------------------------------------------------------
    def inlj_count(self, left: int, right: int, bits: int) -> int:
        return len(self._inlj_list(left, right))

    def _inlj_list(self, left: int, right: int) -> list:
        key = (left, right)
        ops = self._inlj_ops.get(key)
        if ops is None:
            state = self.state
            layout = state.layout
            group = layout.group_for_mask(right)
            if right & (right - 1) or not isinstance(group.op, LogicalGet):
                ops = []
            else:
                universe = layout.universe
                predicate = layout.graph.join_predicate_m(left, right)
                ji = join_implementations(
                    predicate,
                    universe.names(left),
                    universe.names(right),
                    state.config,
                )
                if ji.left_keys:
                    ops = index_nl_join_implementations(
                        group.op,
                        state.catalog,
                        predicate,
                        ji.left_keys,
                        ji.right_keys,
                    )
                else:
                    ops = []
            self._inlj_ops[key] = ops
        return ops

    def operator(self, gid: int, row: Row):
        """The physical operator of ``row`` (built on first use)."""
        key = (gid, row.local_id)
        op = self._op_cache.get(key)
        if op is not None:
            return op
        state = self.state
        kind = row.kind
        if kind == "scan":
            ops = self._scan_ops.get(gid)
            if ops is None:
                group = state.layout.group(gid)
                ops = scan_implementations(group.op, state.catalog, state.config)
                self._scan_ops[gid] = ops
            op = ops[row.payload[0]]
        elif kind == "join":
            left, right, pos = row.payload
            ji = self._join_ops.get((left, right))
            if ji is None:
                layout = state.layout
                predicate = layout.graph.join_predicate_m(left, right)
                ji = join_implementations(
                    predicate,
                    layout.universe.names(left),
                    layout.universe.names(right),
                    state.config,
                ).ops
                self._join_ops[(left, right)] = ji
            op = ji[pos]
        elif kind == "inlj":
            left, right, pos = row.payload
            op = self._inlj_list(left, right)[pos]
        elif kind == "unary":
            op = state.tower_ops[gid][row.payload[0]].op
        elif kind == "sort":
            from repro.algebra.physical import Sort

            op = Sort(state.keys.columns_of(row.payload[0]))
        else:  # pragma: no cover - defensive
            raise PlanSpaceError(f"unknown row kind {kind!r}")
        self._op_cache[key] = op
        return op

    # ------------------------------------------------------------------
    def cardinality(self, gid: int) -> float:
        """The group's estimated output rows (the annotation the
        materialized pipeline stores on memo groups)."""
        cached = self._cardinality.get(gid)
        if cached is not None:
            return cached
        state = self.state
        layout = state.layout
        group = layout.group(gid)
        if self._estimator is None:
            from repro.optimizer.cardinality import CardinalityEstimator

            self._estimator = CardinalityEstimator(state.catalog, layout.bound)
        estimator = self._estimator
        if group.kind in ("leaf", "join"):
            conjuncts = layout.graph.internal_conjuncts_m(group.mask)
            value = estimator.relation_set_cardinality(
                group.relations, [c.expr for c in conjuncts]
            )
        elif group.kind == "select":
            value = estimator.select_cardinality(
                self.cardinality(group.child_gid), group.op.predicate
            )
        elif group.kind == "agg":
            value = estimator.aggregate_cardinality(
                self.cardinality(group.child_gid), group.op.group_by
            )
        else:  # proj
            value = self.cardinality(group.child_gid)
        self._cardinality[gid] = value
        return value
