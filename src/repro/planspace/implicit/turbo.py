"""Vectorized join-group counting (numpy-accelerated layer DP).

Reference semantics live in :mod:`.counting`; this module computes the
identical per-group aggregates with the per-split Python loop replaced by
columnar array passes, one per subset-size layer:

* cut key identity: ``FROM[l] & TO[r]`` word rows and the decoded key
  byte rows are interned by a mix-hash + first-occurrence-representative
  scheme whose result is *verified exactly* (every row is compared to its
  representative; a hash collision falls back to the reference pass, so
  correctness never rests on the hash);
* interned key rows are ranked by a big-endian word lexsort — 0-padded
  byte rows sort prefix-first, so the extensions of key ``q`` form the
  contiguous rank interval ``[rank(q), hi(q))``, with ``hi`` computed in
  one LCP sweep;
* ``(group, kid)`` requirement and delivery *slots* pack into int64 keys;
  order queries become prefix-sum differences over each group's slot
  segment;
* the bigint recurrences themselves (counts overflow ``float64`` and
  ``int64`` by hundreds of digits) run on ``object``-dtype arrays —
  numpy's C loops over arbitrary-precision Python ints.

Everything the rest of the engine consumes (``A``, ``nonenf``, ``sord``,
the ordered requirement registry, sort counts) is exported in the same
shape the reference pass produces — as lazy array-backed views, so a
count-only run pays for no Python-level dict materialization.  The turbo
path requires the default rule configuration (no index-lookup joins,
paper-faithful redundant sorts); ablations fall back to the reference
pass.
"""

from __future__ import annotations

from repro.errors import PlanSpaceError
from repro.kernel.vector import (
    HashCollision as _HashCollision,
    byte_words as _byte_words,
    decode_bit_rows,
    intern_rows as _intern_rows,
    lex_rank_rows,
    prefix_intervals,
)
from repro.optimizer.rules import join_rule_arity, scan_implementations

__all__ = ["turbo_rels_pass"]

#: turbo needs the full 2^n FROM/TO tables in word form
_MAX_UNIVERSE_BITS = 18


def turbo_rels_pass(state, extra_pairs: list[tuple[int, bytes]]) -> bool:
    """Fill ``state``'s relation-group aggregates; False if not applicable.

    ``extra_pairs`` are the StreamAggregate/ORDER BY requirements that
    target relation-set groups, as ``(mask, packed column bytes)`` —
    registered after all merge requirements, like the materializer's
    enforcer pass.
    """
    import numpy as np

    if state.layout.universe.size > _MAX_UNIVERSE_BITS:
        return False
    if not hasattr(np, "bitwise_count"):  # pragma: no cover - numpy < 2.0
        return False
    try:
        _turbo_rels_pass(np, state, extra_pairs)
        return True
    except _HashCollision:  # pragma: no cover - ~2^-64 per pair of rows
        return False


def _turbo_rels_pass(np, state, extra_pairs) -> None:
    layout = state.layout
    config = state.config
    edges = state.edges
    scope = getattr(state, "scope", None)
    checkpoint = scope.checkpoint if scope is not None else None
    plain_keys, merge = join_rule_arity(config, True)
    plain_cross, _ = join_rule_arity(config, False)
    enforcers = config.enable_sort_enforcers

    # ------------------------------------------------------------------
    # flatten splits, gid-major (the materializer's registration order)
    # ------------------------------------------------------------------
    # Columnar logical store: gather the child-gid columns directly
    # (gid-major via per-group ranges) and map gids to masks through one
    # lookup table — no per-split Python tuples are ever built.
    store = layout.store
    join_groups = []
    split_counts = []
    for g in layout.join_groups():
        count = store.split_count(g.gid)
        if count:
            join_groups.append(g)
            split_counts.append(count)
    M = sum(split_counts)
    mask_lut = np.fromiter(
        (g.mask if g.mask is not None else 0 for g in layout.groups),
        np.int64,
        count=len(layout.groups),
    )
    if M:
        gather = np.concatenate(
            [np.arange(*store.split_rows(g.gid)) for g in join_groups]
        )
        sl_col = np.frombuffer(store.sl, dtype=np.intc)
        sr_col = np.frombuffer(store.sr, dtype=np.intc)
        Ls = mask_lut[sl_col[gather]]
        Rs = mask_lut[sr_col[gather]]
    else:
        Ls = np.zeros(0, np.int64)
        Rs = np.zeros(0, np.int64)
    Ss = Ls | Rs

    # ------------------------------------------------------------------
    # cut bitmasks as uint64 word rows; intern and decode
    # ------------------------------------------------------------------
    E = edges.edge_count
    W = max(1, (E + 63) // 64)
    full = layout.universe.full_mask

    def words(table):
        buf = b"".join(v.to_bytes(W * 8, "little") for v in table)
        return np.frombuffer(buf, dtype="<u8").reshape(len(table), W)

    # dense FROM/TO union tables, one vectorized OR sweep per alias bit
    from_bits_w = words(edges.from_bits)
    to_bits_w = words(edges.to_bits)
    FROM_w = np.zeros((full + 1, W), np.uint64)
    TO_w = np.zeros((full + 1, W), np.uint64)
    has_bit = (
        np.arange(full + 1)[:, None] >> np.arange(layout.universe.size)
    ) & 1
    for i in range(layout.universe.size):
        sel = has_bit[:, i] == 1
        FROM_w[sel] |= from_bits_w[i]
        TO_w[sel] |= to_bits_w[i]
    del has_bit
    if checkpoint is not None:
        checkpoint("implicit.count", int(M))
    ebits = np.concatenate(
        [FROM_w[Ls] & TO_w[Rs], FROM_w[Rs] & TO_w[Ls]], axis=0
    )
    eb_ids, eb_rep = _intern_rows(np, ebits)
    u_ebits = ebits[eb_rep]
    has_keys = u_ebits.any(axis=1)[eb_ids[:M]]
    U = len(u_ebits)

    # decode each unique cut into its padded left/right column rows
    lcol_lut = np.frombuffer(edges.left_col, dtype=np.uint8)
    rcol_lut = np.frombuffer(edges.right_col, dtype=np.uint8)
    left_chunks, right_chunks, chunk_maxlens = decode_bit_rows(
        np,
        u_ebits,
        E,
        lcol_lut,
        rcol_lut,
        on_chunk=(
            (lambda: checkpoint("implicit.count"))
            if checkpoint is not None
            else None
        ),
    )

    # ------------------------------------------------------------------
    # the kid universe: cut keys, extra requirements, leaf deliveries
    # ------------------------------------------------------------------
    leaf_pairs: list[tuple[int, bytes]] = []  # (mask, seq), delivery count 1
    leaf_nonenf: dict[int, int] = {}
    for mask in layout.subset_masks:
        if mask & (mask - 1):
            break  # universes are size-sorted: leaves come first
        group = layout.group_for_mask(mask)
        scans = scan_implementations(group.op, state.catalog, config)
        leaf_nonenf[mask] = len(scans)
        state.physical_count += len(scans)
        for scan in scans:
            order = scan.delivered_order()
            if order:
                leaf_pairs.append((mask, edges.seq_bytes(order)))

    loose_seqs = [seq for _mask, seq in extra_pairs]
    loose_seqs += [seq for _mask, seq in leaf_pairs]
    maxlen = max(chunk_maxlens, default=1)
    if loose_seqs:
        maxlen = max(maxlen, max(len(s) for s in loose_seqs))
    maxlen += 1  # headroom column for the 0xff prefix-range probes

    def padded(mat, width):
        if mat.shape[1] == width:
            return mat
        out = np.zeros((mat.shape[0], width), np.uint8)
        out[:, : mat.shape[1]] = mat
        return out

    stack = [padded(m, maxlen) for m in left_chunks]
    stack += [padded(m, maxlen) for m in right_chunks]
    if loose_seqs:
        loose = np.zeros((len(loose_seqs), maxlen), np.uint8)
        for i, seq in enumerate(loose_seqs):
            loose[i, : len(seq)] = np.frombuffer(seq, np.uint8)
        stack.append(loose)
    all_rows = (
        np.concatenate(stack, axis=0)
        if stack
        else np.zeros((0, maxlen), np.uint8)
    )
    raw_ids, raw_rep = _intern_rows(np, _byte_words(np, all_rows))
    kid_mat_raw = all_rows[raw_rep]
    K = len(kid_mat_raw)

    # lexicographic kid ranks: big-endian word lexsort == byte order, and
    # 0-padding sorts a key directly before its extensions
    order, rank_of_raw = lex_rank_rows(np, kid_mat_raw)
    kid_mat = kid_mat_raw[order]
    kid_ids = rank_of_raw[raw_ids]  # every input row -> lex-ranked kid
    kid_lengths = (kid_mat != 0).sum(axis=1).astype(np.int64)

    lkid_of_eb = kid_ids[:U]
    rkid_of_eb = kid_ids[U : 2 * U]
    loose_kids = kid_ids[2 * U :]
    extra_kids = loose_kids[: len(extra_pairs)]
    leaf_kids = loose_kids[len(extra_pairs) :]

    # prefix intervals: hi_rank[k] = first kid after k that does not
    # extend k — one LCP sweep + monotonic stack over the sorted rows
    hi_rank = prefix_intervals(np, kid_mat, kid_lengths, maxlen)

    # per-split kid roles (valid where has_keys)
    lk_lr = lkid_of_eb[eb_ids[:M]]
    rk_lr = rkid_of_eb[eb_ids[:M]]
    lk_rl = lkid_of_eb[eb_ids[M:]]
    rk_rl = rkid_of_eb[eb_ids[M:]]

    # ------------------------------------------------------------------
    # requirement registry and slot universes
    # ------------------------------------------------------------------
    KS = K + 2
    extra_packed = np.array(
        [mask * KS + kid for (mask, _), kid in zip(extra_pairs, extra_kids)],
        np.int64,
    )
    if merge and M:
        regs = np.empty(4 * M, np.int64)
        regs[0::4] = Ls * KS + lk_lr
        regs[1::4] = Rs * KS + rk_lr
        regs[2::4] = Rs * KS + lk_rl
        regs[3::4] = Ls * KS + rk_rl
        keep = np.repeat(has_keys, 4)
        # materializer emission order: a group's initial left-deep join
        # registers before its bucket splits.  Only the few groups seeded
        # by the initial plan materialize their split lists here.
        perm = np.arange(4 * M)
        base = 0
        for g, count in zip(join_groups, split_counts):
            if g.initial is not None:
                lo = 4 * base
                for j, (l, r) in enumerate(g.splits):
                    if (l, r) == g.initial or (r, l) == g.initial:
                        src = lo + 4 * j + (0 if (l, r) == g.initial else 2)
                        hi = lo + 4 * count
                        seg = list(range(lo, hi))
                        seg.remove(src)
                        seg.remove(src + 1)
                        perm[lo:hi] = [src, src + 1] + seg
                        break
            base += count
        regs_o = regs[perm][keep[perm]]
        if len(extra_packed):
            regs_o = np.concatenate([regs_o, extra_packed])
    else:
        regs_o = extra_packed
    req_packed = np.unique(regs_o)
    NQ = len(req_packed)
    req_masks = req_packed // KS
    req_kids = req_packed % KS
    full = layout.universe.full_mask
    nreq_by_mask = np.bincount(req_masks, minlength=full + 1)

    # delivered slots: merge deliveries, sort deliveries, leaf deliveries
    leaf_packed = np.array(
        [mask * KS + kid for (mask, _), kid in zip(leaf_pairs, leaf_kids)],
        np.int64,
    )
    d_parts = []
    if merge and M:
        d_parts.append((Ss * KS + lk_lr)[has_keys])
        d_parts.append((Ss * KS + lk_rl)[has_keys])
    if enforcers and NQ:
        d_parts.append(req_packed)
    if len(leaf_packed):
        d_parts.append(leaf_packed)
    D_packed = (
        np.unique(np.concatenate(d_parts)) if d_parts else np.zeros(0, np.int64)
    )
    ND = len(D_packed)
    DS = np.empty(ND, dtype=object)
    DS[:] = 0

    if merge and M:
        d_lr = np.searchsorted(D_packed, Ss * KS + lk_lr)
        d_rl = np.searchsorted(D_packed, Ss * KS + lk_rl)
        q_l_lr = np.searchsorted(req_packed, Ls * KS + lk_lr)
        q_r_lr = np.searchsorted(req_packed, Rs * KS + rk_lr)
        q_r_rl = np.searchsorted(req_packed, Rs * KS + lk_rl)
        q_l_rl = np.searchsorted(req_packed, Ls * KS + rk_rl)
    req_slot_in_D = (
        np.searchsorted(D_packed, req_packed) if (enforcers and NQ) else None
    )

    # query ranges in D coordinates (a group's slots are contiguous and
    # kid-rank ordered, because the packed key is mask-major, rank-minor)
    q_lo_D = np.searchsorted(D_packed, req_masks * KS + req_kids)
    q_hi_D = np.searchsorted(D_packed, req_masks * KS + hi_rank[req_kids])
    QS = np.empty(NQ, dtype=object)
    QS[:] = 0

    # ------------------------------------------------------------------
    # bottom-up layer DP
    # ------------------------------------------------------------------
    A_obj = np.empty(full + 1, dtype=object)
    NE_obj = np.empty(full + 1, dtype=object)
    req_sizes = np.bitwise_count(req_masks.astype(np.uint64)).astype(np.int64)
    split_sizes = np.bitwise_count(Ss.astype(np.uint64)).astype(np.int64)

    def answer_queries(q_sel):
        """Fill QS for the query slots ``q_sel`` (one finalized layer)."""
        if not len(q_sel):
            return
        # req_packed is sorted mask-major, so the layer's masks ascend:
        # boundary detection replaces a hash unique
        sel_masks = req_masks[q_sel]
        seg_masks = sel_masks[
            np.concatenate([[0], np.flatnonzero(np.diff(sel_masks)) + 1])
        ]
        seg_lo = np.searchsorted(D_packed, seg_masks * KS)
        seg_hi = np.searchsorted(D_packed, (seg_masks + 1) * KS)
        seg_len = seg_hi - seg_lo
        total = int(seg_len.sum())
        if not total:
            return
        offsets = np.zeros(len(seg_masks), np.int64)
        np.cumsum(seg_len[:-1], out=offsets[1:])
        block = (
            np.arange(total)
            - np.repeat(offsets, seg_len)
            + np.repeat(seg_lo, seg_len)
        )
        prefix = np.empty(total + 1, dtype=object)
        prefix[0] = 0
        np.cumsum(DS[block], out=prefix[1:])
        seg_pos = np.searchsorted(seg_masks, sel_masks)
        base = offsets[seg_pos] - seg_lo[seg_pos]
        QS[q_sel] = prefix[base + q_hi_D[q_sel]] - prefix[base + q_lo_D[q_sel]]

    # layer 1: leaves
    for mask, nonenf in leaf_nonenf.items():
        nreq = int(nreq_by_mask[mask])
        A_obj[mask] = nonenf * (1 + nreq) if enforcers else nonenf
        NE_obj[mask] = nonenf
        if enforcers:
            state.physical_count += nreq
    if len(leaf_packed):
        np.add.at(DS, np.searchsorted(D_packed, leaf_packed), 1)
    layer_req = np.flatnonzero(req_sizes == 1)
    if enforcers and len(layer_req):
        # requirement slots are unique, so the buffered += is safe
        DS[req_slot_in_D[layer_req]] += NE_obj[req_masks[layer_req]]
    answer_queries(layer_req)

    for size in range(2, layout.universe.size + 1):
        if checkpoint is not None:
            checkpoint("implicit.count")
        sel = np.flatnonzero(split_sizes == size)
        if len(sel):
            ls, rs, ss = Ls[sel], Rs[sel], Ss[sel]
            hk = has_keys[sel]
            coeff = np.where(hk, 2 * plain_keys, 2 * plain_cross)
            contrib = A_obj[ls] * A_obj[rs] * coeff
            state.physical_count += int(coeff.sum())
            if merge:
                keyed = np.flatnonzero(hk)
                if len(keyed):
                    ksel = sel[keyed]
                    mc_lr = QS[q_l_lr[ksel]] * QS[q_r_lr[ksel]]
                    mc_rl = QS[q_r_rl[ksel]] * QS[q_l_rl[ksel]]
                    contrib[keyed] += mc_lr + mc_rl
                    np.add.at(DS, d_lr[ksel], mc_lr)
                    np.add.at(DS, d_rl[ksel], mc_rl)
                    state.physical_count += 2 * len(keyed)
            starts = np.concatenate([[0], np.flatnonzero(np.diff(ss)) + 1])
            group_masks = ss[starts]
            nonenf_g = np.add.reduceat(contrib, starts)
            if enforcers:
                nreq_g = nreq_by_mask[group_masks]
                A_obj[group_masks] = nonenf_g * (1 + nreq_g)
                state.physical_count += int(nreq_g.sum())
            else:
                A_obj[group_masks] = nonenf_g
            NE_obj[group_masks] = nonenf_g
        layer_req = np.flatnonzero(req_sizes == size)
        if enforcers and len(layer_req):
            DS[req_slot_in_D[layer_req]] += NE_obj[req_masks[layer_req]]
        answer_queries(layer_req)

    # ------------------------------------------------------------------
    # export: mask-keyed totals as dicts, the rest as lazy views
    # ------------------------------------------------------------------
    for mask in layout.subset_masks:
        state.A[mask] = A_obj[mask]
        state.nonenf[mask] = NE_obj[mask]
    state.keys.preload(kid_mat, kid_lengths)
    state.sord = _SordView(np, KS, req_packed, QS)
    state.required = _RequiredView(np, KS, req_packed, regs_o)
    state.sort_counts = _SortCountsView(state) if enforcers else {}


class _SordView:
    """Lazy ``(mask, kid) -> S(g, q)`` mapping over the query-slot arrays."""

    def __init__(self, np, KS, req_packed, QS):
        self._np = np
        self._KS = KS
        self._req_packed = req_packed
        self._QS = QS

    def __getitem__(self, key):
        mask, kid = key
        if kid >= self._KS - 2:  # overflow kid: cannot be a turbo slot
            raise KeyError(key)
        packed = mask * self._KS + kid
        pos = self._np.searchsorted(self._req_packed, packed)
        if pos >= len(self._req_packed) or self._req_packed[pos] != packed:
            raise KeyError(key)
        return self._QS[pos]

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default


class _RequiredView:
    """Lazy ``mask -> ordered kid list`` (global first-occurrence order)."""

    def __init__(self, np, KS, req_packed, regs_emission_order):
        self._np = np
        self._KS = KS
        self._req_packed = req_packed
        self._regs = regs_emission_order
        self._by_mask: dict[int, list[int]] | None = None

    def _materialize(self) -> dict[int, list[int]]:
        if self._by_mask is None:
            np = self._np
            _pairs, first = np.unique(self._regs, return_index=True)
            by_mask: dict[int, list[int]] = {}
            for pos in np.argsort(first, kind="stable"):
                packed = int(_pairs[pos])
                by_mask.setdefault(packed // self._KS, []).append(
                    packed % self._KS
                )
            self._by_mask = by_mask
        return self._by_mask

    def __getitem__(self, mask):
        return self._materialize()[mask]

    def get(self, mask, default=None):
        return self._materialize().get(mask, default)

    def __contains__(self, mask):
        return mask in self._materialize()


class _SortCountsView:
    """``mask -> per-sort counts`` — with paper-faithful redundant sorts
    every enforcer of a group counts its non-enforcer total."""

    def __init__(self, state):
        self._state = state

    def __getitem__(self, mask):
        kids = self._state.required.get(mask)
        if kids is None:
            raise KeyError(mask)
        return [self._state.nonenf[mask]] * len(kids)

    def get(self, mask, default=None):
        try:
            return self[mask]
        except KeyError:
            return default
