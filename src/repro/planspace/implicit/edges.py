"""Oriented equality edges as rank bitmasks.

The implicit engine never materializes a join predicate to learn its
equi-keys.  Instead every equality conjunct ``a.x = b.y`` becomes *two
oriented edges* (``a``-side left, ``b``-side left), globally sorted by the
same ``(alias, column, other alias, other column)`` string key that
:func:`repro.optimizer.rules.extract_equi_keys` sorts key pairs by.  An
oriented edge's position in that global order is its *rank*.

Because the canonical key sequence of any cut is its crossing edges in
rank order, the key identity of the cut ``(left, right)`` reduces to a
single integer: the bitmask (bit *i* = rank-*i* edge crosses) ::

    cut(left, right) = FROM[left] & TO[right]

where ``FROM[mask]``/``TO[mask]`` are union tables over the alias bits of
``mask``, filled once per query in ``O(2^n)`` word operations.  Decoding a
cut bitmask yields both oriented column sequences — the left keys (sorted
canonically for the left side) and the right keys (the matching columns
in *the same order*, which is how merge-join ``right_keys`` are ordered).

Columns are interned to one-byte ids so key sequences pack into ``bytes``
(hashable, memcmp-comparable, prefix-testable with ``startswith``) — the
representation :mod:`repro.planspace.implicit.keys` builds its order
indexes on.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnId
from repro.errors import PlanSpaceError
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.rules import equality_analysis

__all__ = ["EdgeCatalog"]

#: column ids are 1-based single bytes; 0 is reserved as the pad/sentinel
#: value of the vectorized key tables
_MAX_COLUMNS = 254


class EdgeCatalog:
    """Oriented equality edges of one query's join graph."""

    def __init__(self, graph: JoinGraph):
        self.graph = graph
        self.universe = graph.universe
        n = self.universe.size

        #: interned columns: ColumnId -> 1-based byte id (and back)
        self.col_ids: dict[ColumnId, int] = {}
        self.columns: list[ColumnId] = [None]  # 1-based

        records = []
        mask_of = self.universe.mask_of
        for conjunct in graph.conjuncts:
            eq_pairs, _others = equality_analysis(conjunct.expr)
            for a, b, a_alias, b_alias, key_ab, key_ba, _c in eq_pairs:
                a_bit = mask_of([a_alias])
                b_bit = mask_of([b_alias])
                if a_bit == b_bit:
                    continue  # same-alias equality never crosses a cut
                records.append((key_ab, a, b, a_bit, b_bit))
                records.append((key_ba, b, a, b_bit, a_bit))
        records.sort(key=lambda rec: rec[0])

        self.edge_count = len(records)
        #: per oriented edge rank: left/right column byte ids
        self.left_col: bytes
        self.right_col: bytes
        #: per alias bit position: bitmask of ranks leaving/entering it
        self.from_bits = [0] * n
        self.to_bits = [0] * n

        left_cols = bytearray()
        right_cols = bytearray()
        for rank, (_key, a, b, a_bit, b_bit) in enumerate(records):
            left_cols.append(self.col_id(a))
            right_cols.append(self.col_id(b))
            self.from_bits[a_bit.bit_length() - 1] |= 1 << rank
            self.to_bits[b_bit.bit_length() - 1] |= 1 << rank
        self.left_col = bytes(left_cols)
        self.right_col = bytes(right_cols)

        # FROM/TO union tables are memoized per queried mask (lowest-bit
        # recurrence), not pre-filled densely: a sparse topology touches
        # only its connected subsets, a vanishing fraction of 2^n.  The
        # turbo path builds its own dense word tables vectorized.
        if n > 24:
            raise PlanSpaceError(
                f"implicit plan space supports at most 24 relations ({n} given)"
            )
        self._from_cache: dict[int, int] = {0: 0}
        self._to_cache: dict[int, int] = {0: 0}

    # ------------------------------------------------------------------
    def clone(self, graph: JoinGraph | None = None) -> "EdgeCatalog":
        """A private copy bound to ``graph`` (default: the original).

        The heavy, immutable parts — the sorted oriented-edge records
        packed into ``left_col``/``right_col`` and ``edge_count`` — are
        shared; the memoized caches (``col_ids``/``columns`` grow via
        check-then-insert in :meth:`col_id`, ``_from_cache``/``_to_cache``
        fill lazily) are copied, so the clone can be mutated freely on
        another thread.  Used by the plan cache's template tier: a
        structurally identical re-bound query supplies its own ``graph``
        and skips the per-query equality analysis.  The caller is
        responsible for structural identity (same template, same
        catalog); the universe order is still asserted.
        """
        twin = object.__new__(EdgeCatalog)
        twin.graph = graph if graph is not None else self.graph
        twin.universe = twin.graph.universe
        if tuple(twin.universe.order) != tuple(self.universe.order):
            raise PlanSpaceError(
                "edge catalog cloned onto a different alias universe"
            )
        twin.col_ids = dict(self.col_ids)
        twin.columns = list(self.columns)
        twin.edge_count = self.edge_count
        twin.left_col = self.left_col
        twin.right_col = self.right_col
        twin.from_bits = list(self.from_bits)
        twin.to_bits = list(self.to_bits)
        twin._from_cache = dict(self._from_cache)
        twin._to_cache = dict(self._to_cache)
        return twin

    # ------------------------------------------------------------------
    def col_id(self, column: ColumnId) -> int:
        """Intern ``column`` to its 1-based byte id."""
        cid = self.col_ids.get(column)
        if cid is None:
            cid = len(self.columns)
            if cid > _MAX_COLUMNS:
                raise PlanSpaceError(
                    "implicit plan space supports at most "
                    f"{_MAX_COLUMNS} distinct key columns"
                )
            self.col_ids[column] = cid
            self.columns.append(column)
        return cid

    def seq_bytes(self, columns: tuple[ColumnId, ...]) -> bytes:
        """Pack a column sequence (index key, GROUP BY, ORDER BY) into the
        interned byte form."""
        return bytes(self.col_id(c) for c in columns)

    def seq_columns(self, seq: bytes) -> tuple[ColumnId, ...]:
        """Inverse of :meth:`seq_bytes`."""
        columns = self.columns
        return tuple(columns[b] for b in seq)

    # ------------------------------------------------------------------
    def _union(self, mask: int, bits: list[int], cache: dict[int, int]) -> int:
        value = cache.get(mask)
        if value is None:
            low = mask & -mask
            value = self._union(mask ^ low, bits, cache) | bits[
                low.bit_length() - 1
            ]
            cache[mask] = value
        return value

    def from_mask(self, mask: int) -> int:
        """Bitmask of the oriented edges leaving any alias of ``mask``."""
        return self._union(mask, self.from_bits, self._from_cache)

    def to_mask(self, mask: int) -> int:
        """Bitmask of the oriented edges entering any alias of ``mask``."""
        return self._union(mask, self.to_bits, self._to_cache)

    def cut(self, left: int, right: int) -> int:
        """The oriented-edge bitmask of the cut ``(left, right)``."""
        return self.from_mask(left) & self.to_mask(right)

    def decode(self, cut_bits: int) -> tuple[bytes, bytes]:
        """Decode a cut bitmask into ``(left key bytes, right key bytes)``.

        Ranks ascend with bit position, so the sequences come out in the
        canonical (left-side sorted) key order.
        """
        left = bytearray()
        right = bytearray()
        left_col = self.left_col
        right_col = self.right_col
        bits = cut_bits
        while bits:
            bit = bits & -bits
            i = bit.bit_length() - 1
            left.append(left_col[i])
            right.append(right_col[i])
            bits ^= bit
        return bytes(left), bytes(right)
