"""JSON export of memos, linked spaces, and plans.

Diagnostic tooling: dump the structures the algorithms operate on so they
can be inspected, diffed across optimizer versions, or rendered by
external tools.  Export-only by design — a memo is reconstructed by
re-running the optimizer, which is deterministic, so a loader would only
duplicate that code path.
"""

from __future__ import annotations

import json

from repro.memo.memo import Memo
from repro.optimizer.plan import PlanNode
from repro.planspace.links import LinkedSpace

__all__ = ["memo_to_dict", "space_to_dict", "plan_to_dict", "to_json"]


def memo_to_dict(memo: Memo) -> dict:
    """The memo as plain data: groups, expressions, child references."""
    groups = []
    for group in memo.groups:
        groups.append(
            {
                "gid": group.gid,
                "relations": sorted(group.relations),
                "cardinality": group.cardinality,
                "expressions": [
                    {
                        "id": expr.id_str,
                        "operator": expr.op.render(),
                        "kind": "physical" if expr.is_physical else "logical",
                        "enforcer": expr.is_enforcer,
                        "children": list(expr.children),
                    }
                    for expr in group.exprs
                ],
            }
        )
    return {
        "root_group": memo.root_group_id,
        "group_count": len(memo.groups),
        "expression_count": memo.expression_count(),
        "groups": groups,
    }


def space_to_dict(space: LinkedSpace) -> dict:
    """The linked space: qualifying-children lists and the counts N(v)."""
    operators = []
    for node in space.operators.values():
        operators.append(
            {
                "id": node.id_str,
                "operator": node.expr.op.render(),
                "count": node.count,
                "child_sums": list(node.child_sums),
                "alternatives": [
                    [alt.id_str for alt in alternatives]
                    for alternatives in node.alternatives
                ],
            }
        )
    return {
        "total": space.total,
        "root_required": [c.render() for c in space.root_required],
        "roots": [root.id_str for root in space.roots],
        "operators": operators,
    }


def plan_to_dict(plan: PlanNode) -> dict:
    """One assembled plan as a nested structure."""
    return {
        "id": plan.expr_id,
        "operator": plan.op.render(),
        "cardinality": plan.cardinality,
        "children": [plan_to_dict(child) for child in plan.children],
    }


def to_json(data: dict, path: str | None = None, indent: int = 2) -> str:
    """Serialize an exported dict; optionally also write it to ``path``."""
    text = json.dumps(data, indent=indent, sort_keys=False, default=str)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text
