"""The paper's contribution (system S8): counting, enumerating, ranking,
unranking, and uniform sampling of execution plans from an optimized MEMO.

Workflow (Section 3 of the paper):

1. :mod:`repro.planspace.links` — the preparatory step: extract all
   physical operators and materialize, per operator and child slot, the
   list of child alternatives whose physical properties qualify.
2. :mod:`repro.planspace.counting` — compute ``N(v)`` for every operator
   bottom-up and the space total ``N``.
3. :mod:`repro.planspace.unranking` — the bijection between ``0..N-1``
   and plans (both directions: unrank and rank).
4. :mod:`repro.planspace.sampling` / :mod:`repro.planspace.enumeration` —
   uniform sampling and exhaustive generation built on unranking.

:class:`PlanSpace` is the user-facing facade.
"""

from repro.planspace.links import LinkedOperator, LinkedSpace, materialize_links
from repro.planspace.counting import annotate_counts
from repro.planspace.unranking import UnrankTrace, Unranker
from repro.planspace.sampling import (
    RankSampler,
    UniformPlanSampler,
    naive_walk_sample,
)
from repro.planspace.implicit import ImplicitPlanSpace
from repro.planspace.enumeration import enumerate_plans
from repro.planspace.participation import (
    participation_counts,
    participation_report,
)
from repro.planspace.export import (
    memo_to_dict,
    plan_to_dict,
    space_to_dict,
    to_json,
)
from repro.planspace.diff import SpaceDiff, diff_spaces
from repro.planspace.space import PlanSpace

__all__ = [
    "LinkedOperator",
    "LinkedSpace",
    "materialize_links",
    "annotate_counts",
    "Unranker",
    "UnrankTrace",
    "RankSampler",
    "UniformPlanSampler",
    "naive_walk_sample",
    "ImplicitPlanSpace",
    "enumerate_plans",
    "participation_counts",
    "participation_report",
    "memo_to_dict",
    "plan_to_dict",
    "space_to_dict",
    "to_json",
    "SpaceDiff",
    "diff_spaces",
    "PlanSpace",
]
