"""The plan-validation harness (Section 4 of the paper).

Given a query, the harness optimizes it once, opens the plan space, and
executes *many* plans — all of them when the space is small enough,
otherwise a uniform sample — comparing every result against the
optimizer-chosen plan's result.  Any mismatch is reported with the plan's
rank, so the failing plan can be reproduced exactly with
``OPTION (USEPLAN <rank>)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.executor.executor import PlanExecutor, QueryResult
from repro.optimizer.optimizer import OptimizationResult, Optimizer, OptimizerOptions
from repro.optimizer.plan import PlanNode
from repro.planspace.space import PlanSpace
from repro.storage.database import Database
from repro.testing.diff import canonical_rows

__all__ = ["PlanMismatch", "ValidationReport", "PlanValidator"]


@dataclass
class PlanMismatch:
    """One plan whose result differs from the reference."""

    rank: int
    plan: PlanNode
    expected_rows: int
    actual_rows: int
    detail: str

    def render(self) -> str:
        return (
            f"plan #{self.rank} differs ({self.actual_rows} rows, "
            f"expected {self.expected_rows}): {self.detail}\n"
            f"{self.plan.render()}"
        )


@dataclass
class ValidationReport:
    """Outcome of validating one query across many plans."""

    sql: str
    total_plans: int
    executed_plans: int
    exhaustive: bool
    mismatches: list[PlanMismatch] = field(default_factory=list)
    errors: list[tuple[int, str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def all_equal(self) -> bool:
        return not self.mismatches and not self.errors

    def render(self) -> str:
        mode = "exhaustive" if self.exhaustive else "sampled"
        lines = [
            f"validated {self.executed_plans} of {self.total_plans:,} plans "
            f"({mode}) in {self.elapsed_seconds:.2f}s",
        ]
        if self.all_equal:
            lines.append("all plans produced identical results")
        for rank, message in self.errors:
            lines.append(f"plan #{rank} raised: {message}")
        for mismatch in self.mismatches:
            lines.append(mismatch.render())
        return "\n".join(lines)


class PlanValidator:
    """Cross-checks many plans of each query for result equivalence."""

    def __init__(
        self,
        database: Database,
        options: OptimizerOptions | None = None,
        executor: PlanExecutor | None = None,
        check_orders: bool = True,
    ):
        self.database = database
        self.options = options if options is not None else OptimizerOptions()
        self.executor = (
            executor
            if executor is not None
            else PlanExecutor(database, check_orders=check_orders)
        )

    # ------------------------------------------------------------------
    def validate_sql(
        self,
        sql: str,
        max_exhaustive: int = 200,
        sample_size: int = 100,
        seed: int = 0,
    ) -> ValidationReport:
        """Validate one query.

        Spaces with at most ``max_exhaustive`` plans are enumerated
        exhaustively; larger spaces are sampled uniformly (``sample_size``
        plans, seeded) — the paper's recipe for unbiased testing when
        exhaustive testing becomes infeasible.
        """
        optimizer = Optimizer(self.database.catalog, self.options)
        result = optimizer.optimize_sql(sql)
        return self.validate_result(
            result,
            sql=sql,
            max_exhaustive=max_exhaustive,
            sample_size=sample_size,
            seed=seed,
        )

    def validate_result(
        self,
        result: OptimizationResult,
        sql: str = "",
        max_exhaustive: int = 200,
        sample_size: int = 100,
        seed: int = 0,
    ) -> ValidationReport:
        started = time.perf_counter()
        space = PlanSpace.from_result(result)
        total = space.count()

        reference = self.executor.execute(result.best_plan)
        respect_order = bool(result.root_order)
        expected = canonical_rows(reference.rows, respect_order=respect_order)

        exhaustive = total <= max_exhaustive
        if exhaustive:
            ranks = list(range(total))
        else:
            ranks = space.sample_ranks(sample_size, seed=seed)

        report = ValidationReport(
            sql=sql,
            total_plans=total,
            executed_plans=len(ranks),
            exhaustive=exhaustive,
        )
        for rank in ranks:
            plan = space.unrank(rank)
            try:
                actual = self.executor.execute(plan)
            except Exception as exc:  # noqa: BLE001 - harness must not die
                report.errors.append((rank, f"{type(exc).__name__}: {exc}"))
                continue
            got = canonical_rows(actual.rows, respect_order=respect_order)
            if got != expected:
                report.mismatches.append(
                    PlanMismatch(
                        rank=rank,
                        plan=plan,
                        expected_rows=len(expected),
                        actual_rows=len(got),
                        detail=_first_difference(expected, got),
                    )
                )
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def reference_result(self, result: OptimizationResult) -> QueryResult:
        return self.executor.execute(result.best_plan)


def _first_difference(expected: list[tuple], got: list[tuple]) -> str:
    missing = [row for row in expected if row not in got]
    extra = [row for row in got if row not in expected]
    parts = []
    if missing:
        parts.append(f"missing e.g. {missing[0]!r}")
    if extra:
        parts.append(f"unexpected e.g. {extra[0]!r}")
    if not parts:
        parts.append("row order differs under ORDER BY")
    return "; ".join(parts)
