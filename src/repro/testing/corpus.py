"""Golden-plan regression corpora.

Section 4: "developers are able to generate test cases for specific
queries, instantly extending existing test libraries substantially."
A :class:`PlanCorpus` is that test library made durable: a set of
(query, plan rank, expected result digest) records built once from a
known-good engine and replayed against any later build.  A replay failure
pinpoints the exact plan — re-executable via ``OPTION (USEPLAN rank)``.

Digests are computed over canonicalized results (column-order and
float-noise insensitive), so they are stable across plan shapes and
engine refactorings that preserve semantics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.api import Session
from repro.planspace.space import PlanSpace
from repro.testing.diff import canonical_result

__all__ = ["CorpusRecord", "PlanCorpus", "build_corpus", "verify_corpus"]


def _digest(columns: list[str], rows: list[tuple]) -> str:
    canon_columns, canon_rows = canonical_result(columns, rows)
    payload = repr((canon_columns, canon_rows)).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class CorpusRecord:
    """One golden test case: a query, a plan number, the result digest."""

    query: str
    rank: int
    digest: str
    row_count: int


@dataclass
class PlanCorpus:
    """A replayable set of golden plan results."""

    records: list[CorpusRecord] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "records": [asdict(r) for r in self.records]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "PlanCorpus":
        data = json.loads(text)
        return cls(
            seed=data.get("seed", 0),
            records=[CorpusRecord(**record) for record in data["records"]],
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "PlanCorpus":
        with open(path) as handle:
            return cls.from_json(handle.read())


@dataclass
class CorpusVerification:
    """Outcome of replaying a corpus."""

    checked: int = 0
    failures: list[tuple[CorpusRecord, str]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"replayed {self.checked} golden plans"]
        if self.passed:
            lines.append("all digests match")
        for record, reason in self.failures:
            lines.append(
                f"FAIL rank {record.rank} of {record.query[:60]!r}: {reason} "
                f"(replay with OPTION (USEPLAN {record.rank}))"
            )
        return "\n".join(lines)


def build_corpus(
    session: Session,
    queries: list[str],
    plans_per_query: int = 20,
    seed: int = 0,
) -> PlanCorpus:
    """Record digests for ``plans_per_query`` uniform plans of each query.

    Small spaces are covered exhaustively instead of sampled.
    """
    corpus = PlanCorpus(seed=seed)
    for sql in queries:
        result = session.optimize(sql)
        space = PlanSpace.from_result(result)
        total = space.count()
        if total <= plans_per_query:
            ranks = list(range(total))
        else:
            ranks = space.sample_ranks(plans_per_query, seed=seed, unique=True)
        for rank in ranks:
            plan = space.unrank(rank)
            executed = session.executor.execute(plan)
            corpus.records.append(
                CorpusRecord(
                    query=sql,
                    rank=rank,
                    digest=_digest(executed.columns, executed.rows),
                    row_count=len(executed.rows),
                )
            )
    return corpus


def verify_corpus(session: Session, corpus: PlanCorpus) -> CorpusVerification:
    """Replay every record against ``session``'s engine."""
    verification = CorpusVerification()
    spaces: dict[str, PlanSpace] = {}
    for record in corpus.records:
        verification.checked += 1
        space = spaces.get(record.query)
        if space is None:
            space = PlanSpace.from_result(session.optimize(record.query))
            spaces[record.query] = space
        if record.rank >= space.count():
            verification.failures.append(
                (record, f"space shrank to {space.count()} plans")
            )
            continue
        plan = space.unrank(record.rank)
        try:
            executed = session.executor.execute(plan)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            verification.failures.append(
                (record, f"execution raised {type(exc).__name__}: {exc}")
            )
            continue
        digest = _digest(executed.columns, executed.rows)
        if digest != record.digest:
            verification.failures.append(
                (
                    record,
                    f"digest mismatch ({len(executed.rows)} rows, "
                    f"expected {record.row_count})",
                )
            )
    return verification
