"""Golden-plan regression corpora.

Section 4: "developers are able to generate test cases for specific
queries, instantly extending existing test libraries substantially."
A :class:`PlanCorpus` is that test library made durable: a set of
(query, plan rank, expected result digest) records built once from a
known-good engine and replayed against any later build.  A replay failure
pinpoints the exact plan — re-executable via ``OPTION (USEPLAN rank)``.

Digests are computed over canonicalized results (column-order and
float-noise insensitive), so they are stable across plan shapes and
engine refactorings that preserve semantics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.api import Session
from repro.planspace.space import PlanSpace
from repro.testing.diff import canonical_result

__all__ = [
    "CorpusRecord",
    "QueryPlanRecord",
    "PlanCorpus",
    "build_corpus",
    "verify_corpus",
    "default_golden_sections",
]


def _digest(columns: list[str], rows: list[tuple]) -> str:
    canon_columns, canon_rows = canonical_result(columns, rows)
    payload = repr((canon_columns, canon_rows)).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class CorpusRecord:
    """One golden test case: a query, a plan number, the result digest."""

    query: str
    rank: int
    digest: str
    row_count: int


@dataclass(frozen=True)
class QueryPlanRecord:
    """The golden *optimizer decision* for one query: the chosen plan
    (full render, so a regression shows as an explicit plan diff, not
    just a digest mismatch), its cost, and the plan-space size."""

    query: str
    best_cost: float
    best_plan: str
    plan_count: int


@dataclass
class PlanCorpus:
    """A replayable set of golden plan results."""

    records: list[CorpusRecord] = field(default_factory=list)
    plans: list[QueryPlanRecord] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "records": [asdict(r) for r in self.records],
                "plans": [asdict(p) for p in self.plans],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "PlanCorpus":
        data = json.loads(text)
        return cls(
            seed=data.get("seed", 0),
            records=[CorpusRecord(**record) for record in data["records"]],
            plans=[QueryPlanRecord(**plan) for plan in data.get("plans", [])],
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "PlanCorpus":
        with open(path) as handle:
            return cls.from_json(handle.read())


@dataclass
class CorpusVerification:
    """Outcome of replaying a corpus."""

    checked: int = 0
    failures: list[tuple[CorpusRecord, str]] = field(default_factory=list)
    plan_failures: list[tuple[QueryPlanRecord, str]] = field(
        default_factory=list
    )

    @property
    def passed(self) -> bool:
        return not self.failures and not self.plan_failures

    def render(self) -> str:
        lines = [f"replayed {self.checked} golden plans"]
        if self.passed:
            lines.append("all digests match")
        for plan, reason in self.plan_failures:
            lines.append(f"PLAN DIFF for {plan.query[:60]!r}: {reason}")
        for record, reason in self.failures:
            lines.append(
                f"FAIL rank {record.rank} of {record.query[:60]!r}: {reason} "
                f"(replay with OPTION (USEPLAN {record.rank}))"
            )
        return "\n".join(lines)


def build_corpus(
    session: Session,
    queries: list[str],
    plans_per_query: int = 20,
    seed: int = 0,
) -> PlanCorpus:
    """Record digests for ``plans_per_query`` uniform plans of each query.

    Small spaces are covered exhaustively instead of sampled.
    """
    corpus = PlanCorpus(seed=seed)
    for sql in queries:
        result = session.optimize(sql)
        space = PlanSpace.from_result(result)
        total = space.count()
        corpus.plans.append(
            QueryPlanRecord(
                query=sql,
                best_cost=result.best_cost,
                best_plan=result.best_plan.render(),
                plan_count=total,
            )
        )
        if total <= plans_per_query:
            ranks = list(range(total))
        else:
            ranks = space.sample_ranks(plans_per_query, seed=seed, unique=True)
        for rank in ranks:
            plan = space.unrank(rank)
            executed = session.executor.execute(plan)
            corpus.records.append(
                CorpusRecord(
                    query=sql,
                    rank=rank,
                    digest=_digest(executed.columns, executed.rows),
                    row_count=len(executed.rows),
                )
            )
    return corpus


#: relative tolerance for golden-cost comparison: plan choice and shape
#: must match exactly, but ``math.log2`` in the cost formulas may differ
#: in the last few bits across platforms/libms
_COST_RTOL = 1e-9


def verify_corpus(session: Session, corpus: PlanCorpus) -> CorpusVerification:
    """Replay every record against ``session``'s engine.

    Golden best plans are compared render-for-render — a best-plan or
    cost regression surfaces as an explicit plan diff, not merely a
    result-digest mismatch further down.
    """
    verification = CorpusVerification()
    spaces: dict[str, PlanSpace] = {}
    for plan in corpus.plans:
        result = session.optimize(plan.query)
        spaces[plan.query] = PlanSpace.from_result(result)
        if result.best_plan.render() != plan.best_plan:
            verification.plan_failures.append(
                (
                    plan,
                    "best plan changed:\n--- golden ---\n"
                    f"{plan.best_plan}\n--- current ---\n"
                    f"{result.best_plan.render()}",
                )
            )
        elif abs(result.best_cost - plan.best_cost) > _COST_RTOL * max(
            abs(plan.best_cost), 1.0
        ):
            verification.plan_failures.append(
                (
                    plan,
                    f"best cost changed: golden {plan.best_cost!r}, "
                    f"current {result.best_cost!r}",
                )
            )
        current_count = spaces[plan.query].count()
        if current_count != plan.plan_count:
            verification.plan_failures.append(
                (
                    plan,
                    f"plan-space size changed: golden {plan.plan_count}, "
                    f"current {current_count}",
                )
            )
    for record in corpus.records:
        verification.checked += 1
        space = spaces.get(record.query)
        if space is None:
            space = PlanSpace.from_result(session.optimize(record.query))
            spaces[record.query] = space
        if record.rank >= space.count():
            verification.failures.append(
                (record, f"space shrank to {space.count()} plans")
            )
            continue
        plan = space.unrank(record.rank)
        try:
            executed = session.executor.execute(plan)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            verification.failures.append(
                (record, f"execution raised {type(exc).__name__}: {exc}")
            )
            continue
        digest = _digest(executed.columns, executed.rows)
        if digest != record.digest:
            verification.failures.append(
                (
                    record,
                    f"digest mismatch ({len(executed.rows)} rows, "
                    f"expected {record.row_count})",
                )
            )
    return verification


def default_golden_sections() -> dict[str, tuple[Session, list[str]]]:
    """The repository's committed golden corpus: TPC-H plus synthetic
    topologies (chain, cycle, and a seeded random graph).

    ``scripts/build_golden_corpus.py`` builds
    ``tests/data/golden_corpus.json`` from these sections and the tier-1
    replay test verifies against them; both must construct the
    *identical* sessions, so the definition lives here.
    """
    from repro.optimizer.optimizer import OptimizerOptions
    from repro.workloads.synthetic import (
        chain_query,
        cycle_query,
        random_query,
    )

    def options() -> OptimizerOptions:
        return OptimizerOptions(allow_cross_products=False)

    sections: dict[str, tuple[Session, list[str]]] = {
        "tpch": (
            Session.tpch(seed=0, options=options()),
            [
                "SELECT n.n_name, r.r_name FROM nation n, region r "
                "WHERE n.n_regionkey = r.r_regionkey",
                "SELECT n.n_name, COUNT(*) AS customers "
                "FROM nation n, region r, customer c "
                "WHERE n.n_regionkey = r.r_regionkey "
                "AND c.c_nationkey = n.n_nationkey GROUP BY n.n_name",
            ],
        )
    }
    for workload in (
        chain_query(5, rows=8, seed=3),
        cycle_query(5, rows=8, seed=4),
        random_query(6, edge_density=0.4, seed=7, rows=8),
    ):
        sections[workload.name] = (
            Session(workload.database, options=options()),
            [workload.sql],
        )
    return sections
