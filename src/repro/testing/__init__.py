"""Query-processor verification (system S10, the paper's Section 4).

Every plan of a query must produce the same result: "if two candidate
plans fail to produce the same results, then either the optimizer
considered an invalid plan, or the execution code is faulty."  The
:class:`PlanValidator` enumerates (small spaces) or uniformly samples
(large spaces) plans, executes each, and reports any result mismatch.

:mod:`repro.testing.faults` supplies deliberately broken executor
variants used by the test suite to prove the harness actually catches
defects.
"""

from repro.testing.diff import canonical_result, canonical_rows, results_equal
from repro.testing.harness import (
    PlanMismatch,
    PlanValidator,
    ValidationReport,
)
from repro.testing.faults import (
    DroppedRowExecutor,
    IgnoredResidualExecutor,
    UnsortedMergeExecutor,
)
from repro.testing.corpus import (
    CorpusRecord,
    PlanCorpus,
    build_corpus,
    verify_corpus,
)

__all__ = [
    "CorpusRecord",
    "PlanCorpus",
    "build_corpus",
    "verify_corpus",
    "canonical_result",
    "canonical_rows",
    "results_equal",
    "PlanMismatch",
    "PlanValidator",
    "ValidationReport",
    "DroppedRowExecutor",
    "IgnoredResidualExecutor",
    "UnsortedMergeExecutor",
]
