"""Result comparison: canonical forms for plan-equivalence checking.

Two subtleties make naive ``rows_a == rows_b`` wrong:

* row *order* is not part of a query's semantics (unless ORDER BY is
  given), and different plans legitimately produce different orders;
* floating-point aggregates accumulate in plan-dependent orders, so SUM
  over the same multiset of floats differs in the last bits between
  plans.  We therefore compare after rounding floats to a relative
  precision that is far looser than accumulation noise yet far tighter
  than any real defect.
"""

from __future__ import annotations

__all__ = [
    "canonical_value",
    "canonical_rows",
    "canonical_result",
    "results_equal",
]

#: Significant digits retained for float comparison.
FLOAT_DIGITS = 9


def canonical_value(value, float_digits: int = FLOAT_DIGITS):
    """A hashable, comparison-stable form of one column value."""
    if isinstance(value, float):
        if value == 0.0:
            return 0.0
        return float(f"{value:.{float_digits}g}")
    return value


def canonical_rows(
    rows: list[tuple],
    float_digits: int = FLOAT_DIGITS,
    respect_order: bool = False,
) -> list[tuple]:
    """Rows in canonical form: floats rounded, order normalized.

    With ``respect_order=True`` (for ORDER BY queries) the sequence is
    preserved; otherwise rows are sorted into a canonical order.
    """
    canonical = [
        tuple(canonical_value(v, float_digits) for v in row) for row in rows
    ]
    if respect_order:
        return canonical
    return sorted(canonical, key=repr)


def canonical_result(
    columns: list[str],
    rows: list[tuple],
    float_digits: int = FLOAT_DIGITS,
    respect_order: bool = False,
) -> tuple[tuple[str, ...], list[tuple]]:
    """Canonical form that also normalizes column *order*.

    Plans whose joins flip sides emit the same columns in different
    positions; queries normally pin the order with a root projection, but
    raw memo fragments (like the paper's Figure 2 example) may not.  The
    result reorders columns alphabetically and permutes each row to
    match, then canonicalizes rows as usual.
    """
    permutation = sorted(range(len(columns)), key=lambda i: columns[i])
    ordered_columns = tuple(columns[i] for i in permutation)
    permuted = [tuple(row[i] for i in permutation) for row in rows]
    return ordered_columns, canonical_rows(permuted, float_digits, respect_order)


def results_equal(
    rows_a: list[tuple],
    rows_b: list[tuple],
    float_digits: int = FLOAT_DIGITS,
    respect_order: bool = False,
) -> bool:
    """True when the two row multisets are equivalent."""
    return canonical_rows(rows_a, float_digits, respect_order) == canonical_rows(
        rows_b, float_digits, respect_order
    )
