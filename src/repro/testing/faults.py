"""Deliberately defective executors (fault injection).

The validation harness exists to catch execution-engine defects.  These
classes *are* such defects, packaged: each one reproduces a classic bug
pattern.  The test suite wires them into a :class:`PlanValidator` and
asserts the harness reports mismatches — i.e. that the paper's testing
methodology actually detects the class of bug it was designed for.

* :class:`DroppedRowExecutor` — merge join silently drops the last
  matching row pair (off-by-one in run handling);
* :class:`IgnoredResidualExecutor` — hash join forgets to apply the
  non-equality residual predicate;
* :class:`UnsortedMergeExecutor` — index scans return heap order while
  merge join trusts the sort contract (a *planner* property bug surfacing
  only in plans that pair a merge join with an index scan).

The *dynamic* fault-injection harness — named fault sites inside the
optimizer's and executor's hot loops, armed per-test via
:func:`inject` — lives in :mod:`repro.resilience.faults` (so production
modules can import the hook without dragging in these executor
subclasses) and is re-exported here as the harness's public entry.
"""

from __future__ import annotations

from repro.algebra.physical import IndexScan
from repro.executor.executor import PlanExecutor
from repro.executor.schema import RowSchema
from repro.executor.scalar import compile_predicate
from repro.optimizer.plan import PlanNode
from repro.executor.schema import output_schema
from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    fault_point,
    inject,
)

__all__ = [
    "DroppedRowExecutor",
    "IgnoredResidualExecutor",
    "UnsortedMergeExecutor",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "inject",
]


class DroppedRowExecutor(PlanExecutor):
    """Merge join that loses the final output row."""

    def _run_merge_join(self, plan: PlanNode):
        schema, rows = super()._run_merge_join(plan)
        if rows:
            rows = rows[:-1]
        return schema, rows


class IgnoredResidualExecutor(PlanExecutor):
    """Hash join that never evaluates its residual predicate."""

    def _run_hash_join(self, plan: PlanNode):
        op = plan.op
        left_schema, left_rows = self._run(plan.children[0])
        right_schema, right_rows = self._run(plan.children[1])
        schema: RowSchema = left_schema + right_schema
        left_key = self._key_fn(op.left_keys, left_schema)
        right_key = self._key_fn(op.right_keys, right_schema)
        buckets: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            buckets.setdefault(right_key(row), []).append(row)
        out = []
        for left in left_rows:
            for right in buckets.get(left_key(left), ()):
                out.append(left + right)  # residual predicate "forgotten"
        return schema, out


class UnsortedMergeExecutor(PlanExecutor):
    """Index scans that betray their sort-order contract.

    Returns index-scan rows in heap order.  Plans whose merge joins sit
    directly on index scans then merge unsorted inputs and produce wrong
    (usually partial) results — unless ``check_orders`` is on, in which
    case execution fails loudly.  Either way the harness flags the plan.
    """

    def _run_scan(self, plan: PlanNode):
        op = plan.op
        if isinstance(op, IndexScan):
            table = self.database.table(op.table)
            schema = output_schema(plan, self.catalog)
            predicate = compile_predicate(op.predicate, schema)
            return schema, [row for row in table.scan() if predicate(row)]
        return super()._run_scan(plan)
