"""Ref-counted pausing of the cycle collector.

The optimizer pauses generational GC for the duration of a call: it
allocates hundreds of thousands of short-lived tuples and memo
expressions but no reference cycles, so collector passes only add
pauses.  ``gc.disable()``/``gc.enable()`` are *process-wide*, though —
under a thread-pool front end (:mod:`repro.serving.server`), a sibling
optimize finishing first would re-enable GC mid-flight for every other
in-flight call.  :func:`paused_gc` nests instead: the collector is
disabled when the first pauser enters and restored to its *original*
enabled-state only when the last one leaves.
"""

from __future__ import annotations

import gc
import threading
from contextlib import contextmanager

__all__ = ["paused_gc", "pause_depth"]

_lock = threading.Lock()
_depth = 0
_was_enabled = False


@contextmanager
def paused_gc():
    """Pause the cycle collector for the block, ref-counted.

    Safe under concurrent and nested use: only the outermost pauser
    across *all threads* toggles the collector, and the original
    enabled-state is restored (a caller running with GC already off
    never has it switched on behind its back).
    """
    global _depth, _was_enabled
    with _lock:
        _depth += 1
        if _depth == 1:
            _was_enabled = gc.isenabled()
            if _was_enabled:
                gc.disable()
    try:
        yield
    finally:
        with _lock:
            _depth -= 1
            if _depth == 0 and _was_enabled:
                gc.enable()


def pause_depth() -> int:
    """How many pausers are currently active (diagnostics/tests)."""
    with _lock:
        return _depth
