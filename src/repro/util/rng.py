"""Deterministic random-number helpers.

All randomness in the library flows through explicitly seeded
:class:`random.Random` instances so that every experiment is reproducible
bit-for-bit.  Nothing in the package ever touches the global ``random``
module state.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]

Seed = int | str | tuple | random.Random | None


def make_rng(seed: Seed) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be an existing ``Random`` (returned unchanged, so call
    sites can accept either form), ``None`` (fresh generator with a fixed
    default seed — the library is deterministic *by default*), or any
    int/str/tuple, the latter stringified for stream derivation.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = 0
    if isinstance(seed, tuple):
        seed = "/".join(repr(part) for part in seed)
    return random.Random(seed)


def spawn_rng(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent child generator from ``rng`` for ``stream``.

    Used when one seed must drive several logically separate random
    streams (e.g. one per table in the data generator) without the draws
    of one stream perturbing another.
    """
    return random.Random(f"{rng.getrandbits(64)}/{stream}")
