"""Deterministic random-number helpers.

All randomness in the library flows through explicitly seeded
:class:`random.Random` instances so that every experiment is reproducible
bit-for-bit.  Nothing in the package ever touches the global ``random``
module state.

The plan-sampling RNG contract
------------------------------
Plan samplers promise: *the same seed over the same plan space yields the
same rank stream, no matter which engine unranks it.*  Concretely:

1. every sampler seeds through :func:`make_rng` (an existing ``Random``
   passes through unchanged, so callers may share one stream across
   calls);
2. ranks are drawn exclusively via ``rng.randrange(N)`` — one call per
   sample, in sample order — except unique draws: dense ones
   (``unique=True`` with ``4n >= N``) use ``rng.sample(range(N), n)``,
   sparse ones rejection-sample ``randrange`` until ``n`` distinct ranks
   accumulate and return them *sorted*, not in draw order;
3. the drawing logic lives in exactly one place,
   :class:`repro.planspace.sampling.RankSampler`; the materialized
   (``UniformPlanSampler``) and implicit (``ImplicitPlanSampler``)
   engines both subclass it and add only their ``unrank``.

Because the two engines also agree on ``N`` and on the rank -> plan
bijection (asserted by the equivalence property suite), a seed uniquely
identifies a set of *plans*, end-to-end through ``Session.iterate_plans``
and the ``sample``/``validate`` CLI commands — materialized and implicit
runs are interchangeable in experiment scripts.

The stratified stream
---------------------
:class:`repro.sampledopt.strata.StratifiedSampler` is a *distinct*
deterministic stream, not an instance of the contract above: each
``sample_ranks(n)`` call visits the plan-shape strata in rank order and
draws every allocated rank via ``rng.randrange(lo, hi)``.  The same seed
over the same space and strata yields the same ranks — but never the
plain samplers' ranks (stratification constrains which ranks can be
drawn).  Code that must reproduce materialized experiments bit-for-bit
uses the plain samplers; stratification is for variance reduction and
search coverage.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]

Seed = int | str | tuple | random.Random | None


def make_rng(seed: Seed) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be an existing ``Random`` (returned unchanged, so call
    sites can accept either form), ``None`` (fresh generator with a fixed
    default seed — the library is deterministic *by default*), or any
    int/str/tuple, the latter stringified for stream derivation.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = 0
    if isinstance(seed, tuple):
        seed = "/".join(repr(part) for part in seed)
    return random.Random(seed)


def spawn_rng(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent child generator from ``rng`` for ``stream``.

    Used when one seed must drive several logically separate random
    streams (e.g. one per table in the data generator) without the draws
    of one stream perturbing another.
    """
    return random.Random(f"{rng.getrandbits(64)}/{stream}")
