"""Plain-text table rendering for experiment reports.

The experiment harness prints Table 1 / Figure 4 style reports to stdout;
this module provides the minimal, dependency-free formatting used for that.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["TextTable", "format_count", "format_float"]


def format_count(value: int) -> str:
    """Format a (possibly huge) plan count with thousands separators."""
    return f"{value:,}"


def format_float(value: float, digits: int = 2) -> str:
    """Format a float compactly, switching to scientific for extremes."""
    if value == 0:
        return "0"
    if abs(value) >= 10 ** 7 or 0 < abs(value) < 10 ** -3:
        return f"{value:.{digits}e}"
    return f"{value:,.{digits}f}"


class TextTable:
    """A fixed-column text table.

    >>> t = TextTable(["Query", "#Plans"])
    >>> t.add_row(["Q5", "68,572,049"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], align: Sequence[str] | None = None):
        self.headers = [str(h) for h in headers]
        if align is None:
            align = ["<"] + [">"] * (len(self.headers) - 1)
        if len(align) != len(self.headers):
            raise ValueError("align must match headers length")
        self.align = list(align)
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self._widths()

        def fmt(cells: Sequence[str]) -> str:
            parts = [
                f"{cell:{self.align[i]}{widths[i]}}" for i, cell in enumerate(cells)
            ]
            return "  ".join(parts).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [fmt(self.headers), sep]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
