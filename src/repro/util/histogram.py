"""ASCII histograms for cost-distribution figures.

Figure 4 of the paper shows frequency histograms of sampled, scaled plan
costs.  We render the same data as text so the benchmark harness can print
the figure without a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["histogram_bins", "AsciiHistogram"]


def histogram_bins(
    values: Sequence[float],
    bins: int,
    lo: float | None = None,
    hi: float | None = None,
) -> tuple[list[int], list[float]]:
    """Bin ``values`` into ``bins`` equal-width buckets over ``[lo, hi]``.

    Returns ``(counts, edges)`` with ``len(edges) == bins + 1``.  Values
    outside the range are clamped into the first/last bucket, mirroring how
    the paper clips the long right tail of its cost distributions.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    if not values:
        return [0] * bins, [0.0] * (bins + 1)
    if lo is None:
        lo = min(values)
    if hi is None:
        hi = max(values)
    if hi <= lo:
        hi = lo + 1.0
    width = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        idx = int((v - lo) / width)
        if idx < 0:
            idx = 0
        elif idx >= bins:
            idx = bins - 1
        counts[idx] += 1
    edges = [lo + i * width for i in range(bins + 1)]
    return counts, edges


@dataclass
class AsciiHistogram:
    """Render a pre-binned histogram as rows of ``#`` bars.

    Mirrors the layout of the paper's Figure 4: bucket edge on the left,
    frequency bar and count on the right.
    """

    counts: list[int]
    edges: list[float]
    width: int = 50
    title: str = ""

    @classmethod
    def from_values(
        cls,
        values: Sequence[float],
        bins: int = 25,
        width: int = 50,
        title: str = "",
        lo: float | None = None,
        hi: float | None = None,
    ) -> "AsciiHistogram":
        counts, edges = histogram_bins(values, bins, lo=lo, hi=hi)
        return cls(counts=counts, edges=edges, width=width, title=title)

    def render(self) -> str:
        peak = max(self.counts) if self.counts else 0
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        if peak == 0:
            lines.append("(empty histogram)")
            return "\n".join(lines)
        label_width = max(
            len(f"{edge:.3g}") for edge in self.edges
        )
        for i, count in enumerate(self.counts):
            bar = "#" * max(1 if count else 0, round(count / peak * self.width))
            lo = f"{self.edges[i]:.3g}".rjust(label_width)
            lines.append(f"{lo} | {bar:<{self.width}} {count}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
