"""Small shared utilities: deterministic RNG, text rendering, histograms."""

from repro.util.rng import make_rng, spawn_rng
from repro.util.text import TextTable, format_count, format_float
from repro.util.histogram import AsciiHistogram, histogram_bins

__all__ = [
    "make_rng",
    "spawn_rng",
    "TextTable",
    "format_count",
    "format_float",
    "AsciiHistogram",
    "histogram_bins",
]
