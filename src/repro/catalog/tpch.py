"""TPC-H schema and statistics (system S2).

The paper's experiments (Table 1, Figure 4) run the join-intensive TPC-H
queries Q5, Q7, Q8, Q9 against a full benchmark database.  We reproduce the
*catalog view* of that database: the eight-table schema with primary keys,
the index set a realistic installation would carry (clustered primary-key
indexes plus secondary indexes on foreign-key columns), and the published
scale-factor-1 cardinalities and distinct counts the optimizer needs.

The optimizer sees these declared statistics — the actual rows (for plan
*execution*) come from :mod:`repro.storage.datagen`, which generates a tiny
but referentially intact instance.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, ForeignKey, Index, TableSchema
from repro.catalog.statistics import ColumnStats, TableStats

__all__ = ["tpch_catalog", "TPCH_TABLE_ROWS"]

_INT = ColumnType.INTEGER
_FLT = ColumnType.FLOAT
_STR = ColumnType.STRING
_DATE = ColumnType.DATE

#: Base (scale factor 1) row counts from the TPC-H specification.
TPCH_TABLE_ROWS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,
}

#: Tables whose cardinality does not grow with the scale factor.
_FIXED_SIZE_TABLES = {"region", "nation"}

_DATE_LO = "1992-01-01"
_DATE_HI = "1998-12-31"


def _scaled(base: int, scale_factor: float, fixed: bool = False) -> int:
    if fixed:
        return base
    return max(1, int(round(base * scale_factor)))


def _schema() -> list[TableSchema]:
    """The eight TPC-H tables with keys and a realistic index set."""
    return [
        TableSchema(
            name="region",
            columns=(
                Column("r_regionkey", _INT),
                Column("r_name", _STR),
                Column("r_comment", _STR),
            ),
            primary_key=("r_regionkey",),
            indexes=(
                Index("region_pk", "region", ("r_regionkey",), unique=True, clustered=True),
            ),
        ),
        TableSchema(
            name="nation",
            columns=(
                Column("n_nationkey", _INT),
                Column("n_name", _STR),
                Column("n_regionkey", _INT),
                Column("n_comment", _STR),
            ),
            primary_key=("n_nationkey",),
            indexes=(
                Index("nation_pk", "nation", ("n_nationkey",), unique=True, clustered=True),
                Index("nation_regionkey", "nation", ("n_regionkey",)),
            ),
            foreign_keys=(
                ForeignKey("nation", ("n_regionkey",), "region", ("r_regionkey",)),
            ),
        ),
        TableSchema(
            name="supplier",
            columns=(
                Column("s_suppkey", _INT),
                Column("s_name", _STR),
                Column("s_address", _STR),
                Column("s_nationkey", _INT),
                Column("s_phone", _STR),
                Column("s_acctbal", _FLT),
                Column("s_comment", _STR),
            ),
            primary_key=("s_suppkey",),
            indexes=(
                Index("supplier_pk", "supplier", ("s_suppkey",), unique=True, clustered=True),
                Index("supplier_nationkey", "supplier", ("s_nationkey",)),
            ),
            foreign_keys=(
                ForeignKey("supplier", ("s_nationkey",), "nation", ("n_nationkey",)),
            ),
        ),
        TableSchema(
            name="customer",
            columns=(
                Column("c_custkey", _INT),
                Column("c_name", _STR),
                Column("c_address", _STR),
                Column("c_nationkey", _INT),
                Column("c_phone", _STR),
                Column("c_acctbal", _FLT),
                Column("c_mktsegment", _STR),
                Column("c_comment", _STR),
            ),
            primary_key=("c_custkey",),
            indexes=(
                Index("customer_pk", "customer", ("c_custkey",), unique=True, clustered=True),
                Index("customer_nationkey", "customer", ("c_nationkey",)),
            ),
            foreign_keys=(
                ForeignKey("customer", ("c_nationkey",), "nation", ("n_nationkey",)),
            ),
        ),
        TableSchema(
            name="part",
            columns=(
                Column("p_partkey", _INT),
                Column("p_name", _STR),
                Column("p_mfgr", _STR),
                Column("p_brand", _STR),
                Column("p_type", _STR),
                Column("p_size", _INT),
                Column("p_container", _STR),
                Column("p_retailprice", _FLT),
                Column("p_comment", _STR),
            ),
            primary_key=("p_partkey",),
            indexes=(
                Index("part_pk", "part", ("p_partkey",), unique=True, clustered=True),
            ),
        ),
        TableSchema(
            name="partsupp",
            columns=(
                Column("ps_partkey", _INT),
                Column("ps_suppkey", _INT),
                Column("ps_availqty", _INT),
                Column("ps_supplycost", _FLT),
                Column("ps_comment", _STR),
            ),
            primary_key=("ps_partkey", "ps_suppkey"),
            indexes=(
                Index(
                    "partsupp_pk",
                    "partsupp",
                    ("ps_partkey", "ps_suppkey"),
                    unique=True,
                    clustered=True,
                ),
                Index("partsupp_suppkey", "partsupp", ("ps_suppkey",)),
            ),
            foreign_keys=(
                ForeignKey("partsupp", ("ps_partkey",), "part", ("p_partkey",)),
                ForeignKey("partsupp", ("ps_suppkey",), "supplier", ("s_suppkey",)),
            ),
        ),
        TableSchema(
            name="orders",
            columns=(
                Column("o_orderkey", _INT),
                Column("o_custkey", _INT),
                Column("o_orderstatus", _STR),
                Column("o_totalprice", _FLT),
                Column("o_orderdate", _DATE),
                Column("o_orderpriority", _STR),
                Column("o_clerk", _STR),
                Column("o_shippriority", _INT),
                Column("o_comment", _STR),
            ),
            primary_key=("o_orderkey",),
            indexes=(
                Index("orders_pk", "orders", ("o_orderkey",), unique=True, clustered=True),
                Index("orders_custkey", "orders", ("o_custkey",)),
                Index("orders_orderdate", "orders", ("o_orderdate",)),
            ),
            foreign_keys=(
                ForeignKey("orders", ("o_custkey",), "customer", ("c_custkey",)),
            ),
        ),
        TableSchema(
            name="lineitem",
            columns=(
                Column("l_orderkey", _INT),
                Column("l_partkey", _INT),
                Column("l_suppkey", _INT),
                Column("l_linenumber", _INT),
                Column("l_quantity", _FLT),
                Column("l_extendedprice", _FLT),
                Column("l_discount", _FLT),
                Column("l_tax", _FLT),
                Column("l_returnflag", _STR),
                Column("l_linestatus", _STR),
                Column("l_shipdate", _DATE),
                Column("l_commitdate", _DATE),
                Column("l_receiptdate", _DATE),
                Column("l_shipinstruct", _STR),
                Column("l_shipmode", _STR),
                Column("l_comment", _STR),
            ),
            primary_key=("l_orderkey", "l_linenumber"),
            indexes=(
                Index(
                    "lineitem_pk",
                    "lineitem",
                    ("l_orderkey", "l_linenumber"),
                    unique=True,
                    clustered=True,
                ),
                Index("lineitem_partkey", "lineitem", ("l_partkey",)),
                Index("lineitem_suppkey", "lineitem", ("l_suppkey",)),
                Index("lineitem_shipdate", "lineitem", ("l_shipdate",)),
            ),
            foreign_keys=(
                ForeignKey("lineitem", ("l_orderkey",), "orders", ("o_orderkey",)),
                ForeignKey("lineitem", ("l_partkey",), "part", ("p_partkey",)),
                ForeignKey("lineitem", ("l_suppkey",), "supplier", ("s_suppkey",)),
            ),
        ),
    ]


def _stats_for(table: str, rows: int, scale_factor: float) -> TableStats:
    """Declared statistics per table, following the TPC-H data distributions."""

    def key(n: int) -> ColumnStats:
        return ColumnStats(distinct=n, lo=1, hi=n)

    n = rows
    if table == "region":
        cols = {
            "r_regionkey": ColumnStats(distinct=5, lo=0, hi=4),
            "r_name": ColumnStats(distinct=5),
        }
    elif table == "nation":
        cols = {
            "n_nationkey": ColumnStats(distinct=25, lo=0, hi=24),
            "n_name": ColumnStats(distinct=25),
            "n_regionkey": ColumnStats(distinct=5, lo=0, hi=4),
        }
    elif table == "supplier":
        cols = {
            "s_suppkey": key(n),
            "s_nationkey": ColumnStats(distinct=25, lo=0, hi=24),
            "s_acctbal": ColumnStats(distinct=min(n, 100_000), lo=-999.99, hi=9999.99),
        }
    elif table == "customer":
        cols = {
            "c_custkey": key(n),
            "c_nationkey": ColumnStats(distinct=25, lo=0, hi=24),
            "c_mktsegment": ColumnStats(distinct=5),
            "c_acctbal": ColumnStats(distinct=min(n, 100_000), lo=-999.99, hi=9999.99),
        }
    elif table == "part":
        cols = {
            "p_partkey": key(n),
            "p_name": ColumnStats(distinct=n),
            "p_mfgr": ColumnStats(distinct=5),
            "p_brand": ColumnStats(distinct=25),
            "p_type": ColumnStats(distinct=150),
            "p_size": ColumnStats(distinct=50, lo=1, hi=50),
            "p_container": ColumnStats(distinct=40),
        }
    elif table == "partsupp":
        part_rows = _scaled(TPCH_TABLE_ROWS["part"], scale_factor)
        supp_rows = _scaled(TPCH_TABLE_ROWS["supplier"], scale_factor)
        cols = {
            "ps_partkey": ColumnStats(distinct=part_rows, lo=1, hi=part_rows),
            "ps_suppkey": ColumnStats(distinct=supp_rows, lo=1, hi=supp_rows),
            "ps_availqty": ColumnStats(distinct=9999, lo=1, hi=9999),
            "ps_supplycost": ColumnStats(distinct=min(n, 100_000), lo=1.0, hi=1000.0),
        }
    elif table == "orders":
        cust_rows = _scaled(TPCH_TABLE_ROWS["customer"], scale_factor)
        cols = {
            "o_orderkey": key(n),
            # Only 2/3 of customers have orders in TPC-H.
            "o_custkey": ColumnStats(
                distinct=max(1, cust_rows * 2 // 3), lo=1, hi=cust_rows
            ),
            "o_orderstatus": ColumnStats(distinct=3),
            "o_orderdate": ColumnStats(distinct=2_406, lo=_DATE_LO, hi="1998-08-02"),
            "o_orderpriority": ColumnStats(distinct=5),
            "o_shippriority": ColumnStats(distinct=1, lo=0, hi=0),
            "o_totalprice": ColumnStats(distinct=min(n, 1_000_000), lo=800.0, hi=600_000.0),
        }
    elif table == "lineitem":
        order_rows = _scaled(TPCH_TABLE_ROWS["orders"], scale_factor)
        part_rows = _scaled(TPCH_TABLE_ROWS["part"], scale_factor)
        supp_rows = _scaled(TPCH_TABLE_ROWS["supplier"], scale_factor)
        cols = {
            "l_orderkey": ColumnStats(distinct=order_rows, lo=1, hi=order_rows * 4),
            "l_partkey": ColumnStats(distinct=part_rows, lo=1, hi=part_rows),
            "l_suppkey": ColumnStats(distinct=supp_rows, lo=1, hi=supp_rows),
            "l_linenumber": ColumnStats(distinct=7, lo=1, hi=7),
            "l_quantity": ColumnStats(distinct=50, lo=1.0, hi=50.0),
            "l_extendedprice": ColumnStats(
                distinct=min(n, 1_000_000), lo=900.0, hi=105_000.0
            ),
            "l_discount": ColumnStats(distinct=11, lo=0.0, hi=0.10),
            "l_tax": ColumnStats(distinct=9, lo=0.0, hi=0.08),
            "l_returnflag": ColumnStats(distinct=3),
            "l_linestatus": ColumnStats(distinct=2),
            "l_shipdate": ColumnStats(distinct=2_526, lo=_DATE_LO, hi="1998-12-01"),
            "l_commitdate": ColumnStats(distinct=2_466, lo=_DATE_LO, hi=_DATE_HI),
            "l_receiptdate": ColumnStats(distinct=2_554, lo=_DATE_LO, hi=_DATE_HI),
            "l_shipinstruct": ColumnStats(distinct=4),
            "l_shipmode": ColumnStats(distinct=7),
        }
    else:  # pragma: no cover - defensive
        cols = {}
    return TableStats(row_count=rows, columns=cols)


def tpch_catalog(scale_factor: float = 1.0) -> Catalog:
    """Build the TPC-H catalog with statistics for ``scale_factor``.

    ``scale_factor=1.0`` reproduces the cardinalities the paper's optimizer
    would have seen; smaller factors are useful for tests.
    """
    catalog = Catalog()
    for schema in _schema():
        rows = _scaled(
            TPCH_TABLE_ROWS[schema.name],
            scale_factor,
            fixed=schema.name in _FIXED_SIZE_TABLES,
        )
        catalog.add_table(schema, _stats_for(schema.name, rows, scale_factor))
    return catalog
