"""Optimizer statistics: row counts, distinct counts, value ranges.

The cardinality estimator (:mod:`repro.optimizer.cardinality`) consumes
these.  Statistics can be *declared* (the TPC-H SF=1 catalog hard-codes the
benchmark's published cardinalities, like the paper optimizing against a
full-size database) or *collected* from an in-memory table (used by tests
running on the micro data set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError

__all__ = ["ColumnStats", "TableStats"]


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column.

    ``distinct`` is the number of distinct values (NDV); ``lo``/``hi`` are
    the min/max for numeric or date columns and ``None`` otherwise.
    """

    distinct: int
    lo: float | str | None = None
    hi: float | str | None = None
    null_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.distinct < 0:
            raise CatalogError("distinct count must be non-negative")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise CatalogError("null_fraction must be in [0, 1]")

    def range_width(self) -> float | None:
        """Width of the value range, if both bounds are numeric."""
        if isinstance(self.lo, (int, float)) and isinstance(self.hi, (int, float)):
            width = float(self.hi) - float(self.lo)
            return width if width > 0 else None
        return None


@dataclass
class TableStats:
    """Statistics for one table: row count plus per-column stats."""

    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise CatalogError("row count must be non-negative")

    def column(self, name: str) -> ColumnStats:
        """Stats for ``name``; a conservative default if never collected."""
        stats = self.columns.get(name)
        if stats is not None:
            return stats
        # Unknown column: assume every row is distinct, which yields the
        # most conservative (largest) join cardinalities.
        return ColumnStats(distinct=max(self.row_count, 1))

    def distinct(self, name: str) -> int:
        return max(1, min(self.column(name).distinct, max(self.row_count, 1)))

    @classmethod
    def collect(cls, rows: list[tuple], column_names: tuple[str, ...]) -> "TableStats":
        """Compute exact statistics from in-memory rows.

        Used by tests and examples that optimize directly against the micro
        data set instead of the declared SF=1 statistics.
        """
        stats = cls(row_count=len(rows))
        for position, name in enumerate(column_names):
            values = [row[position] for row in rows if row[position] is not None]
            nulls = len(rows) - len(values)
            distinct = len(set(values))
            lo: float | str | None = None
            hi: float | str | None = None
            if values:
                comparable = all(isinstance(v, (int, float)) for v in values) or all(
                    isinstance(v, str) for v in values
                )
                if comparable:
                    lo = min(values)
                    hi = max(values)
            stats.columns[name] = ColumnStats(
                distinct=max(distinct, 1),
                lo=lo,
                hi=hi,
                null_fraction=(nulls / len(rows)) if rows else 0.0,
            )
        return stats
