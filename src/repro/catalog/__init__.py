"""Catalog: schema objects and optimizer statistics (system S1).

The catalog plays the role of SQL Server's system catalog in the paper: it
tells the binder which tables/columns exist, tells the optimizer which
indexes are available (and therefore which scan alternatives to generate),
and carries the statistics the cardinality estimator consumes.
"""

from repro.catalog.schema import Column, ColumnType, ForeignKey, Index, TableSchema
from repro.catalog.statistics import ColumnStats, TableStats
from repro.catalog.catalog import Catalog

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "ColumnType",
    "ForeignKey",
    "Index",
    "TableSchema",
    "TableStats",
]
