"""Schema objects: tables, columns, indexes, foreign keys.

These are deliberately plain, immutable dataclasses.  The optimizer and
binder only ever *read* the schema; mutation happens through
:class:`repro.catalog.catalog.Catalog` construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CatalogError

__all__ = ["ColumnType", "Column", "Index", "ForeignKey", "TableSchema"]


class ColumnType(enum.Enum):
    """Logical column types supported by the engine.

    ``DATE`` values are stored as ISO-8601 strings, which makes comparison
    operators coincide with lexicographic string comparison and keeps the
    storage engine trivial.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    def python_type(self) -> type:
        return {
            ColumnType.INTEGER: int,
            ColumnType.FLOAT: float,
            ColumnType.STRING: str,
            ColumnType.DATE: str,
        }[self]

    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)


@dataclass(frozen=True)
class Column:
    """A named, typed column of a base table."""

    name: str
    type: ColumnType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")


@dataclass(frozen=True)
class Index:
    """A sorted index over ``key`` columns of one table.

    An index gives the optimizer one extra scan alternative
    (:class:`~repro.algebra.physical.IndexScan`) that *delivers* a sort
    order on the key columns — the physical-property mechanism the paper's
    Section 3.1 link-materialization must respect.
    """

    name: str
    table: str
    key: tuple[str, ...]
    unique: bool = False
    clustered: bool = False

    def __post_init__(self) -> None:
        if not self.key:
            raise CatalogError(f"index {self.name!r} must have at least one key column")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge used by the synthetic data generator.

    ``columns`` in ``table`` reference ``ref_columns`` in ``ref_table``.
    """

    table: str
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise CatalogError(
                f"foreign key {self.table}->{self.ref_table} has mismatched column lists"
            )


@dataclass(frozen=True)
class TableSchema:
    """A base table: columns plus primary key and indexes."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    indexes: tuple[Index, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _column_index: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        seen: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in seen:
                raise CatalogError(f"duplicate column {col.name!r} in table {self.name!r}")
            seen[col.name] = i
        object.__setattr__(self, "_column_index", seen)
        for key_col in self.primary_key:
            if key_col not in seen:
                raise CatalogError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )
        for index in self.indexes:
            if index.table != self.name:
                raise CatalogError(
                    f"index {index.name!r} belongs to {index.table!r}, not {self.name!r}"
                )
            for key_col in index.key:
                if key_col not in seen:
                    raise CatalogError(
                        f"index column {key_col!r} not in table {self.name!r}"
                    )

    def has_column(self, name: str) -> bool:
        return name in self._column_index

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._column_index[name]]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def column_position(self, name: str) -> int:
        try:
            return self._column_index[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)
