"""The catalog: named tables with schemas and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Index, TableSchema
from repro.catalog.statistics import TableStats
from repro.errors import CatalogError

__all__ = ["Catalog"]


@dataclass
class Catalog:
    """A collection of table schemas plus their optimizer statistics.

    The binder resolves names against it; the optimizer asks it for
    indexes and statistics.  Table names are case-insensitive, mirroring
    common SQL behaviour.
    """

    tables: dict[str, TableSchema] = field(default_factory=dict)
    stats: dict[str, TableStats] = field(default_factory=dict)

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def add_table(self, schema: TableSchema, stats: TableStats | None = None) -> None:
        key = self._key(schema.name)
        if key in self.tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self.tables[key] = schema
        self.stats[key] = stats if stats is not None else TableStats(row_count=0)

    def has_table(self, name: str) -> bool:
        return self._key(name) in self.tables

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[self._key(name)]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_stats(self, name: str) -> TableStats:
        try:
            return self.stats[self._key(name)]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def set_stats(self, name: str, stats: TableStats) -> None:
        key = self._key(name)
        if key not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        self.stats[key] = stats

    def indexes(self, name: str) -> tuple[Index, ...]:
        return self.table(name).indexes

    def table_names(self) -> list[str]:
        return [schema.name for schema in self.tables.values()]

    def __contains__(self, name: str) -> bool:  # pragma: no cover - convenience
        return self.has_table(name)
