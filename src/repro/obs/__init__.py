"""Unified observability: spans, metrics, EXPLAIN ANALYZE, and feedback.

Four pieces, one contract (see ``README.md`` in this package):

* :mod:`repro.obs.trace` — nested phase spans over one optimization
  (``optimize`` → ``parse``/``bind``/``setup``/``explore``/... on the
  exact path; ``space``/``sample``/``recombine``/``assemble`` on the
  sampled path; ``tier.*`` under the degradation ladder);
* :mod:`repro.obs.metrics` — a per-session registry of counters, gauges
  and summary histograms, fed from the resilience layer's existing
  ``BudgetScope.checkpoint`` sites;
* :mod:`repro.obs.analyze` — per-operator execution stats (rows in/out,
  wall time) and the estimated-vs-actual cardinality rendering behind
  ``Session.explain(sql, analyze=True)``;
* :mod:`repro.obs.feedback` — the cardinality ledger: observed actuals
  keyed by relation bitmask, accuracy reporting
  (``Session.estimation_report()`` / ``repro accuracy``), and
  feedback-driven re-costing (``Session.optimize(sql, feedback=...)``).

Everything is disabled by default: with no tracer active and no metrics
observer attached, instrumented code pays one module-global read per
*phase* (never per expression) and the hot loops are untouched.
"""

from repro.obs.analyze import ExecutionStats, OperatorStats, render_analyze
from repro.obs.feedback import (
    AccuracyReport,
    CardinalityLedger,
    FeedbackReport,
    LedgerEntry,
    accuracy_report,
    plan_cost_under_ledger,
    true_cardinality_ledger,
)
from repro.obs.metrics import Metrics
from repro.obs.trace import (
    PhaseTimer,
    Span,
    Tracer,
    active_tracer,
    phase,
    tracing,
)

__all__ = [
    "AccuracyReport",
    "CardinalityLedger",
    "ExecutionStats",
    "FeedbackReport",
    "LedgerEntry",
    "Metrics",
    "OperatorStats",
    "PhaseTimer",
    "Span",
    "Tracer",
    "accuracy_report",
    "active_tracer",
    "phase",
    "plan_cost_under_ledger",
    "render_analyze",
    "tracing",
    "true_cardinality_ledger",
]
