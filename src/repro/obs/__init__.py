"""Unified observability: phase spans, metrics, and EXPLAIN ANALYZE.

Three pieces, one contract (see ``README.md`` in this package):

* :mod:`repro.obs.trace` — nested phase spans over one optimization
  (``optimize`` → ``parse``/``bind``/``setup``/``explore``/... on the
  exact path; ``space``/``sample``/``recombine``/``assemble`` on the
  sampled path; ``tier.*`` under the degradation ladder);
* :mod:`repro.obs.metrics` — a per-session registry of counters, gauges
  and summary histograms, fed from the resilience layer's existing
  ``BudgetScope.checkpoint`` sites;
* :mod:`repro.obs.analyze` — per-operator execution stats (rows in/out,
  wall time) and the estimated-vs-actual cardinality rendering behind
  ``Session.explain(sql, analyze=True)``.

Everything is disabled by default: with no tracer active and no metrics
observer attached, instrumented code pays one module-global read per
*phase* (never per expression) and the hot loops are untouched.
"""

from repro.obs.analyze import ExecutionStats, OperatorStats, render_analyze
from repro.obs.metrics import Metrics
from repro.obs.trace import (
    PhaseTimer,
    Span,
    Tracer,
    active_tracer,
    phase,
    tracing,
)

__all__ = [
    "ExecutionStats",
    "Metrics",
    "OperatorStats",
    "PhaseTimer",
    "Span",
    "Tracer",
    "active_tracer",
    "phase",
    "render_analyze",
    "tracing",
]
