"""EXPLAIN ANALYZE: estimated vs actual cardinality per plan node.

The executor (``collect_stats=True``) records one :class:`OperatorStats`
per plan node — rows out, inclusive wall time, and the optimizer's row
estimate carried on the :class:`~repro.optimizer.plan.PlanNode` — in a
tree mirroring the executed plan.  :func:`render_analyze` lays the two
side by side with the q-error (``max(est/actual, actual/est)``), the
standard figure of merit for cardinality estimates; ``actual`` columns
are the raw material for the ROADMAP's execution-feedback loop (true
per-group cardinalities keyed by the plan's memo groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExecutionStats", "OperatorStats", "render_analyze"]


@dataclass
class OperatorStats:
    """Measured execution of one plan operator (inclusive of children)."""

    op: str  # operator name, e.g. "HashJoin"
    detail: str  # full op.render() text
    group_id: int  # memo group (the feedback loop's cardinality key)
    est_rows: float  # optimizer estimate for the node's group
    actual_rows: int = 0
    wall_s: float = 0.0  # inclusive: children counted in
    children: list["OperatorStats"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Wall time net of children (never negative)."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    @property
    def rows_in(self) -> int:
        """Rows consumed from plan children (0 for leaves)."""
        return sum(c.actual_rows for c in self.children)

    @property
    def q_error(self) -> float | None:
        """``max(est/actual, actual/est)``; ``None`` when either side is
        zero (no meaningful ratio)."""
        if self.est_rows <= 0 or self.actual_rows <= 0:
            return None
        ratio = self.est_rows / self.actual_rows
        return ratio if ratio >= 1.0 else 1.0 / ratio

    def iter_nodes(self):
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "detail": self.detail,
            "group_id": self.group_id,
            "est_rows": self.est_rows,
            "actual_rows": self.actual_rows,
            "rows_in": self.rows_in,
            "wall_s": self.wall_s,
            "q_error": self.q_error,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OperatorStats":
        return cls(
            op=data["op"],
            detail=data["detail"],
            group_id=data["group_id"],
            est_rows=data["est_rows"],
            actual_rows=data["actual_rows"],
            wall_s=data["wall_s"],
            children=[cls.from_dict(c) for c in data.get("children", ())],
        )


@dataclass
class ExecutionStats:
    """Everything one instrumented execution measured."""

    root: OperatorStats
    wall_s: float  # whole execution, including stats bookkeeping

    @property
    def operators(self) -> int:
        return sum(1 for _ in self.root.iter_nodes())

    def to_dict(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "operators": self.operators,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionStats":
        return cls(
            root=OperatorStats.from_dict(data["root"]),
            wall_s=data["wall_s"],
        )


def render_analyze(stats: ExecutionStats) -> str:
    """The EXPLAIN ANALYZE table: one row per operator, indented by
    depth — estimated rows, actual rows, q-error, wall milliseconds."""
    rows: list[tuple[str, float, int, float | None, float]] = []

    def collect(node: OperatorStats, depth: int) -> None:
        rows.append(
            (
                "  " * depth + node.detail,
                node.est_rows,
                node.actual_rows,
                node.q_error,
                node.wall_s,
            )
        )
        for child in node.children:
            collect(child, depth + 1)

    collect(stats.root, 0)
    label_width = max(len(label) for label, *_ in rows)
    header = (
        f"{'operator':<{label_width}}  {'est. rows':>12}  {'actual':>12}  "
        f"{'q-err':>8}  {'time ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for label, est, actual, q_error, wall_s in rows:
        q_text = f"{q_error:.2f}x" if q_error is not None else "-"
        lines.append(
            f"{label:<{label_width}}  {est:>12,.0f}  {actual:>12,}  "
            f"{q_text:>8}  {wall_s * 1000.0:>10,.2f}"
        )
    lines.append(
        f"{'TOTAL':<{label_width}}  {'':>12}  "
        f"{stats.root.actual_rows:>12,}  {'':>8}  "
        f"{stats.wall_s * 1000.0:>10,.2f}"
    )
    return "\n".join(lines)
