"""The execution-feedback loop's consuming half: the cardinality ledger.

PR 7 made the optimizer's estimates *visible* (``EXPLAIN ANALYZE``
records actual per-operator rows keyed by memo ``group_id``); this
module makes them *useful*.  A :class:`CardinalityLedger` accumulates
observed cardinalities under the same key the optimizer uses for
logical equivalence — the relation bitmask of a memo's ``("rels",
mask)`` groups, **not** the ``group_id`` ordinal (group ids are an
artifact of one memo's construction order; the mask names the logical
sub-goal itself and is identical across re-optimizations of the same
query).  Masks are interpreted under an explicit *universe* — the
query's sorted alias tuple (see
:class:`repro.optimizer.bitset.AliasUniverse`: bit ``i`` is the
``i``-th alias in sorted name order) — so one ledger can hold
observations for many queries without mask collisions.

Three consumers sit on top:

* **accuracy reporting** — :func:`accuracy_report` summarizes the
  q-error history per workload (count/median/p90/max, worst offenders
  by subplan), behind ``Session.estimation_report()`` and
  ``repro accuracy``;
* **feedback-driven re-costing** —
  :class:`~repro.optimizer.cardinality.CardinalityEstimator` accepts a
  ledger and substitutes the observed (EWMA) cardinality wherever an
  observation exists, leaving every unobserved estimate untouched;
  :class:`FeedbackReport` (``Session.optimize(sql, feedback=...)``)
  captures the chosen-plan delta;
* **benchmarking** — :func:`true_cardinality_ledger` is the oracle:
  a ledger populated with the *actual* cardinality of every join-level
  memo group (each group's best subplan is executed once), which
  defines the "optimum under true cardinalities" that
  ``benchmarks/bench_feedback.py`` scores chosen plans against.

Everything round-trips through JSON (:meth:`CardinalityLedger.save` /
:meth:`CardinalityLedger.load`), so a ledger outlives the session that
recorded it.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.analyze import ExecutionStats

__all__ = [
    "CardinalityLedger",
    "EPOCH_Q_THRESHOLD",
    "FeedbackReport",
    "LedgerBinding",
    "LedgerEntry",
    "accuracy_report",
    "plan_cost_under_ledger",
    "true_cardinality_ledger",
]

#: weight of the newest observation in the running EWMA.  High on
#: purpose: cardinalities are deterministic per database state, so the
#: only drift worth smoothing is data change between executions.
EWMA_ALPHA = 0.5

#: per-entry cap on retained q-error history (most recent last).
Q_ERROR_HISTORY = 64

#: q-error threshold past which an observation counts as a *bound-stats
#: change*: the ledger's ``stats_epoch`` is bumped when a new entry
#: arrives whose estimate was off by at least this factor, or when an
#: existing entry's EWMA substitute moves by at least this factor.
#: Plan caches key feedback-costed entries on the epoch, so crossing the
#: threshold invalidates cached plans (re-cost on next serve) while
#: steady-state re-observations — the EWMA converging — do not.
EPOCH_Q_THRESHOLD = 2.0


def _q_error(est_rows: float, actual_rows: float) -> float | None:
    """``max(est/actual, actual/est)``; ``None`` when either side is
    zero or negative (same contract as ``OperatorStats.q_error``)."""
    if est_rows <= 0 or actual_rows <= 0:
        return None
    ratio = est_rows / actual_rows
    return ratio if ratio >= 1.0 else 1.0 / ratio


@dataclass
class LedgerEntry:
    """Everything observed about one logical sub-goal (relation set)."""

    mask: int  # relation bitmask under the owning universe
    relations: tuple[str, ...]  # the mask, spelled out (sorted aliases)
    observed_rows: float  # most recent actual
    ewma_rows: float  # exponentially weighted actual (the substitute)
    hits: int  # number of observations folded in
    last_est_rows: float  # the estimate at the last observation
    q_errors: list[float] = field(default_factory=list)

    @property
    def last_q_error(self) -> float | None:
        return self.q_errors[-1] if self.q_errors else None

    def fold(self, actual_rows: float, est_rows: float) -> None:
        """Fold one new observation into the entry."""
        self.observed_rows = actual_rows
        self.ewma_rows = (
            EWMA_ALPHA * actual_rows + (1.0 - EWMA_ALPHA) * self.ewma_rows
        )
        self.hits += 1
        self.last_est_rows = est_rows
        q = _q_error(est_rows, actual_rows)
        if q is not None:
            self.q_errors.append(q)
            if len(self.q_errors) > Q_ERROR_HISTORY:
                del self.q_errors[: len(self.q_errors) - Q_ERROR_HISTORY]

    def to_dict(self) -> dict:
        return {
            "mask": self.mask,
            "relations": list(self.relations),
            "observed_rows": self.observed_rows,
            "ewma_rows": self.ewma_rows,
            "hits": self.hits,
            "last_est_rows": self.last_est_rows,
            "q_errors": list(self.q_errors),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerEntry":
        return cls(
            mask=data["mask"],
            relations=tuple(data["relations"]),
            observed_rows=data["observed_rows"],
            ewma_rows=data["ewma_rows"],
            hits=data["hits"],
            last_est_rows=data["last_est_rows"],
            q_errors=list(data.get("q_errors", ())),
        )


class LedgerBinding:
    """One universe's entries, bound for O(1) mask (or alias-set) lookup.

    The estimator holds one of these per optimization: ``rows_for_mask``
    is called once per join-level memo group, so the binding precomputes
    the alias→bit table instead of re-deriving it per lookup.
    """

    __slots__ = ("entries", "_bit_by_name")

    def __init__(self, entries: dict[int, LedgerEntry], universe: tuple[str, ...]):
        self.entries = entries
        self._bit_by_name = {name: 1 << i for i, name in enumerate(universe)}

    def rows_for_mask(self, mask: int) -> float | None:
        """The observed (EWMA) cardinality for ``mask``, or ``None``."""
        entry = self.entries.get(mask)
        if entry is None:
            return None
        return max(1.0, entry.ewma_rows)

    def rows_for(self, relations) -> float | None:
        """Alias-set lookup (for callers without a mask at hand)."""
        mask = 0
        bit_by_name = self._bit_by_name
        for alias in relations:
            bit = bit_by_name.get(alias)
            if bit is None:
                return None  # foreign universe: no observation applies
            mask |= bit
        return self.rows_for_mask(mask)

    def __len__(self) -> int:
        return len(self.entries)


class CardinalityLedger:
    """Observed cardinalities per ``(universe, relation mask)``.

    The ledger is the persistent store; per-query access goes through
    :meth:`binding`, which fixes the universe (the query's sorted alias
    tuple) once.  Feeding happens either through :meth:`observe` (one
    subplan at a time) or :meth:`record_execution` (every join-level
    operator of one instrumented execution).
    """

    def __init__(self):
        #: universe (sorted alias tuple) -> mask -> entry
        self._spaces: dict[tuple[str, ...], dict[int, LedgerEntry]] = {}
        #: monotone counter of *significant* observations (q-error or
        #: EWMA shift >= :data:`EPOCH_Q_THRESHOLD`); plan caches record
        #: the epoch a feedback-costed plan was produced under and
        #: invalidate when it moves (see :mod:`repro.serving.cache`)
        self.stats_epoch = 0

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def observe(
        self,
        universe: tuple[str, ...],
        mask: int,
        actual_rows: float,
        est_rows: float,
    ) -> LedgerEntry:
        """Fold one observation for ``mask`` under ``universe``.

        Bumps :attr:`stats_epoch` when the observation is *significant*
        — a first observation whose estimate was off by at least
        :data:`EPOCH_Q_THRESHOLD`, or a re-observation moving the EWMA
        substitute by at least that factor — so epoch-keyed plan caches
        drop entries whose bound stats drifted, while converged
        re-observations leave them valid.
        """
        universe = tuple(universe)
        space = self._spaces.setdefault(universe, {})
        entry = space.get(mask)
        ewma_before = None
        if entry is None:
            entry = LedgerEntry(
                mask=mask,
                relations=tuple(
                    name for i, name in enumerate(universe) if mask >> i & 1
                ),
                observed_rows=actual_rows,
                ewma_rows=actual_rows,
                hits=0,
                last_est_rows=est_rows,
            )
            space[mask] = entry
        else:
            ewma_before = entry.ewma_rows
        entry.fold(actual_rows, est_rows)
        if ewma_before is None:
            shift = entry.last_q_error
        else:
            shift = _q_error(ewma_before, entry.ewma_rows)
        if shift is not None and shift >= EPOCH_Q_THRESHOLD:
            self.stats_epoch += 1
        return entry

    def record_execution(
        self, stats: ExecutionStats, memo, universe: tuple[str, ...]
    ) -> int:
        """Feed every join-level operator of one instrumented execution.

        ``stats`` is the ``ExecutionStats`` tree an analyzing execution
        produced; ``memo`` maps each node's ``group_id`` back to its
        group key.  Only ``("rels", mask)`` groups are recorded — their
        masks are stable across re-optimizations, unlike the
        ``("select", gid)``-style unary keys, which embed memo-ordinal
        child ids.  Enforcers share their group with the operator they
        wrap, so each mask is recorded at most once per execution (the
        topmost node wins; all nodes of one group produce identical row
        counts).  Returns the number of observations folded in.
        """
        universe = tuple(universe)
        seen: set[int] = set()
        recorded = 0
        for node in stats.root.iter_nodes():
            group = memo.group(node.group_id)
            key = group.key
            if key[0] != "rels":
                continue
            mask = key[1]
            if mask in seen:
                continue
            seen.add(mask)
            self.observe(
                universe,
                mask,
                actual_rows=float(node.actual_rows),
                est_rows=float(node.est_rows),
            )
            recorded += 1
        return recorded

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def binding(self, universe: tuple[str, ...]) -> LedgerBinding:
        """A fixed-universe view (empty when nothing was observed)."""
        universe = tuple(universe)
        return LedgerBinding(self._spaces.get(universe, {}), universe)

    def universes(self) -> list[tuple[str, ...]]:
        return sorted(self._spaces)

    def entries(self):
        """Iterate ``(universe, entry)`` pairs in deterministic order."""
        for universe in sorted(self._spaces):
            space = self._spaces[universe]
            for mask in sorted(space):
                yield universe, space[mask]

    def __len__(self) -> int:
        return sum(len(space) for space in self._spaces.values())

    def __bool__(self) -> bool:
        return any(self._spaces.values())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": 1,
            "ewma_alpha": EWMA_ALPHA,
            "stats_epoch": self.stats_epoch,
            "spaces": [
                {
                    "universe": list(universe),
                    "entries": [
                        space[mask].to_dict() for mask in sorted(space)
                    ],
                }
                for universe, space in sorted(self._spaces.items())
                if space
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CardinalityLedger":
        version = data.get("version")
        if version != 1:
            raise ReproError(
                f"unsupported cardinality ledger version {version!r}"
            )
        ledger = cls()
        ledger.stats_epoch = int(data.get("stats_epoch", 0))
        for space in data.get("spaces", ()):
            universe = tuple(space["universe"])
            entries = ledger._spaces.setdefault(universe, {})
            for raw in space.get("entries", ()):
                entry = LedgerEntry.from_dict(raw)
                entries[entry.mask] = entry
        return ledger

    def save(self, path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n"
        )

    @classmethod
    def load(cls, path) -> "CardinalityLedger":
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except FileNotFoundError:
            raise ReproError(f"no cardinality ledger at {path!r}") from None
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"cardinality ledger {path!r} is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def render(self, limit: int = 20) -> str:
        """Human-readable entry table (largest q-error first)."""
        rows = sorted(
            self.entries(),
            key=lambda pair: -(pair[1].last_q_error or 0.0),
        )[:limit]
        if not rows:
            return "(empty ledger)"
        lines = [
            f"{'subplan':<40}  {'observed':>12}  {'last est':>12}  "
            f"{'q-err':>8}  {'hits':>5}"
        ]
        lines.append("-" * len(lines[0]))
        for _, entry in rows:
            label = "{" + ", ".join(entry.relations) + "}"
            q = entry.last_q_error
            lines.append(
                f"{label:<40}  {entry.ewma_rows:>12,.0f}  "
                f"{entry.last_est_rows:>12,.0f}  "
                f"{(f'{q:.2f}x' if q is not None else '-'):>8}  "
                f"{entry.hits:>5}"
            )
        total = len(self)
        if total > limit:
            lines.append(f"... ({total} subplans total)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# accuracy reporting
# ----------------------------------------------------------------------
def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a sorted copy (no numpy dependency)."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class AccuracyReport:
    """Per-workload estimation-accuracy summary over one ledger.

    ``summary`` aggregates the *latest* q-error of every observed
    subplan; ``worst`` lists the offenders (largest latest q-error
    first) with their relation sets spelled out.
    """

    observations: int  # total folds across all entries
    subplans: int  # distinct (universe, mask) entries
    summary: dict  # {count, median, p90, max} over latest q-errors
    worst: list[dict]  # top offenders, largest q-error first

    def to_dict(self) -> dict:
        return {
            "observations": self.observations,
            "subplans": self.subplans,
            "summary": dict(self.summary),
            "worst": [dict(w) for w in self.worst],
        }

    def render(self) -> str:
        lines = [
            f"observations: {self.observations} over {self.subplans} subplans"
        ]
        s = self.summary
        if s["count"]:
            lines.append(
                f"q-error: count={s['count']} median={s['median']:.2f}x "
                f"p90={s['p90']:.2f}x max={s['max']:.2f}x"
            )
        else:
            lines.append("q-error: (no measurable estimates yet)")
        if self.worst:
            lines.append("worst subplans:")
            for w in self.worst:
                label = "{" + ", ".join(w["relations"]) + "}"
                lines.append(
                    f"  {label:<40} q-err {w['q_error']:.2f}x  "
                    f"est {w['est_rows']:,.0f} -> actual {w['actual_rows']:,.0f}"
                    f"  (hits {w['hits']})"
                )
        return "\n".join(lines)


def accuracy_report(
    ledger: CardinalityLedger, worst_limit: int = 5
) -> AccuracyReport:
    """Summarize estimation accuracy across everything a ledger holds."""
    latest: list[float] = []
    offenders: list[dict] = []
    observations = 0
    subplans = 0
    for _, entry in ledger.entries():
        subplans += 1
        observations += entry.hits
        q = entry.last_q_error
        if q is None:
            continue
        latest.append(q)
        offenders.append(
            {
                "relations": list(entry.relations),
                "mask": entry.mask,
                "q_error": q,
                "est_rows": entry.last_est_rows,
                "actual_rows": entry.observed_rows,
                "hits": entry.hits,
            }
        )
    offenders.sort(key=lambda w: (-w["q_error"], w["mask"]))
    summary = (
        {
            "count": len(latest),
            "median": _percentile(latest, 0.5),
            "p90": _percentile(latest, 0.9),
            "max": max(latest),
        }
        if latest
        else {"count": 0, "median": None, "p90": None, "max": None}
    )
    return AccuracyReport(
        observations=observations,
        subplans=subplans,
        summary=summary,
        worst=offenders[:worst_limit],
    )


# ----------------------------------------------------------------------
# feedback-driven re-costing
# ----------------------------------------------------------------------
@dataclass
class FeedbackReport:
    """The chosen-plan delta of one feedback-driven optimization.

    Costs tagged ``_feedback`` are measured under the *observed*
    cardinality assignment (ledger EWMA where an observation exists, the
    static estimate elsewhere) — the closest available proxy for true
    cost.  ``improvement_factor >= 1`` always holds when the memo search
    is exact: the feedback plan minimizes exactly that assignment.
    """

    plan_changed: bool  # did feedback change the chosen plan?
    substituted: int  # join-level groups whose estimate was replaced
    baseline_cost: float  # estimate-chosen plan under static estimates
    baseline_cost_feedback: float  # estimate-chosen plan under observed cards
    feedback_cost: float  # feedback-chosen plan under observed cards
    improvement_factor: float  # baseline_cost_feedback / feedback_cost

    def to_dict(self) -> dict:
        return {
            "plan_changed": self.plan_changed,
            "substituted": self.substituted,
            "baseline_cost": self.baseline_cost,
            "baseline_cost_feedback": self.baseline_cost_feedback,
            "feedback_cost": self.feedback_cost,
            "improvement_factor": self.improvement_factor,
        }

    def describe(self) -> str:
        changed = "changed the plan" if self.plan_changed else "kept the plan"
        return (
            f"feedback: {self.substituted} subplan cardinalities observed, "
            f"{changed}; cost under observed cards "
            f"{self.baseline_cost_feedback:,.1f} -> {self.feedback_cost:,.1f} "
            f"({self.improvement_factor:.2f}x)"
        )


def plan_cost_under_ledger(
    plan, memo, binding: LedgerBinding, cost_model
) -> float:
    """Cost an assembled plan under the observed cardinality assignment.

    Every node whose memo group is join-level (``("rels", mask)``) and
    observed in ``binding`` is priced at the observed (EWMA) rows; every
    other node keeps the cardinality baked into the plan.  Because the
    assignment is a function of ``binding`` alone, two plans for the
    same query are directly comparable — this is the figure of merit the
    feedback benchmark calls "cost under true cardinalities" when the
    binding comes from :func:`true_cardinality_ledger`.
    """

    def rows(node) -> float:
        key = memo.group(node.group_id).key
        if key[0] == "rels":
            observed = binding.rows_for_mask(key[1])
            if observed is not None:
                return observed
        return node.cardinality

    total = 0.0
    stack = [plan]
    operator_cost = cost_model.operator_cost
    while stack:
        node = stack.pop()
        children = node.children
        total += operator_cost(
            node.op, rows(node), tuple(rows(child) for child in children)
        )
        stack.extend(children)
    return total


def true_cardinality_ledger(result, database) -> CardinalityLedger:
    """The feedback oracle: observe every join-level group's true rows.

    Executes the cheapest subplan of each ``("rels", mask)`` group once
    against ``database`` (any subplan of a group produces the same rows
    — that is what a memo group *means*), folding the actual row counts
    into a fresh ledger.  Exponential in the join-graph size like the
    memo itself; intended for benchmark/test workloads, not serving.
    """
    # Deferred: keep repro.obs import-light (the executor and best-plan
    # search pull in the whole physical layer).
    from repro.executor.executor import PlanExecutor
    from repro.optimizer.bestplan import BestPlanSearch

    ledger = CardinalityLedger()
    universe = result.graph.universe.order
    search = BestPlanSearch(result.memo, result.cost_model)
    executor = PlanExecutor(database)
    for group in result.memo.groups:
        if group.key[0] != "rels":
            continue
        best = search.best(group.gid, ())
        if best is None:  # pragma: no cover - groups are always implemented
            continue
        actual = len(executor.execute(best.plan).rows)
        ledger.observe(
            universe,
            group.key[1],
            actual_rows=float(actual),
            est_rows=float(group.cardinality or 0.0),
        )
    return ledger
