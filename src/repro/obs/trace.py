"""Phase spans: where one optimization's wall clock went.

A :class:`Span` is one timed phase — name, elapsed seconds, a small
counter dict, and nested children — and a :class:`Tracer` collects a
tree of them over one operation (``optimize`` → ``parse`` / ``bind`` /
``setup`` / ``explore`` / ...).  Tracers are *ambient*: activating one
(:func:`tracing`) installs it in a per-context slot (a
:class:`~contextvars.ContextVar`, so concurrent sessions on sibling
threads keep disjoint span trees), and instrumented code asks for it
through :func:`phase`, the same pattern :mod:`repro.resilience.faults`
uses for its injector.  With no tracer active, :func:`phase` returns a
:class:`PhaseTimer` — a slotted two-``perf_counter`` stopwatch, the same
cost the optimizer's historical ``timings`` dict already paid per phase
— so the disabled path adds one context-variable read per phase and
nothing per expression.

The span *durations* and the optimizer's ``timings`` dict come from the
same measurement (phases read ``elapsed_s`` off the span they just
closed), so traces and perf harnesses report identical numbers by
construction.

Determinism contract: for a fixed query and configuration the span tree
*shape* — names, counter keys and values, child order — is stable across
runs; only ``elapsed_s`` varies.  :meth:`Span.shape` is that invariant,
and :meth:`Span.to_dict` / :meth:`Span.from_dict` round-trip through
JSON losslessly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = [
    "PhaseTimer",
    "Span",
    "Tracer",
    "active_tracer",
    "phase",
    "tracing",
]


class Span:
    """One named, timed phase with counters and nested children."""

    __slots__ = ("name", "elapsed_s", "counters", "children", "_t0")

    def __init__(self, name: str):
        self.name = name
        self.elapsed_s = 0.0
        self.counters: dict[str, int | float] = {}
        self.children: list[Span] = []
        self._t0: float | None = None

    # ------------------------------------------------------------------
    def add(self, counter: str, value: int | float = 1) -> None:
        """Accumulate ``value`` onto a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, pre-order."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def phase_seconds(self) -> dict[str, float]:
        """``{child name: elapsed_s}`` over direct children — the span
        tree's equivalent of the optimizer's ``timings`` dict."""
        return {child.name: child.elapsed_s for child in self.children}

    # ------------------------------------------------------------------
    def shape(self) -> tuple:
        """The run-invariant part of the tree: names, counters (keys and
        values), and child order — everything except wall times."""
        return (
            self.name,
            tuple(sorted(self.counters.items())),
            tuple(child.shape() for child in self.children),
        )

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "elapsed_s": self.elapsed_s}
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"])
        span.elapsed_s = data.get("elapsed_s", 0.0)
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def to_chrome_trace(self, pid: int = 1, tid: int = 1) -> list[dict]:
        """The tree as Chrome "trace event format" complete events.

        Loadable in ``chrome://tracing`` / `ui.perfetto.dev`_: one
        ``"ph": "X"`` event per span, durations in microseconds,
        counters in ``args``.  Spans record durations only, so start
        timestamps are synthesized — a span starts where its previous
        sibling ended, the first child at its parent's start — which
        preserves nesting and relative widths but not the (unrecorded)
        gaps between siblings.

        .. _ui.perfetto.dev: https://ui.perfetto.dev
        """
        events: list[dict] = []

        def emit(span: "Span", start_us: float) -> None:
            event = {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(span.elapsed_s * 1e6, 3),
                "pid": pid,
                "tid": tid,
            }
            if span.counters:
                event["args"] = dict(span.counters)
            events.append(event)
            cursor = start_us
            for child in span.children:
                emit(child, cursor)
                cursor += child.elapsed_s * 1e6

        emit(self, 0.0)
        return events

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        counters = (
            "  " + " ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            if self.counters
            else ""
        )
        lines = [f"{pad}{self.name}: {self.elapsed_s * 1000.0:,.1f}ms{counters}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.elapsed_s:.4f}s, {len(self.children)} children)"


class PhaseTimer:
    """The disabled-path stand-in for a span: a stopwatch with the same
    ``elapsed_s``/``add`` surface, attached to nothing."""

    __slots__ = ("name", "elapsed_s", "_t0")

    def __init__(self, name: str):
        self.name = name
        self.elapsed_s = 0.0
        self._t0 = 0.0

    def add(self, counter: str, value: int | float = 1) -> None:
        pass

    def __enter__(self) -> "PhaseTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = time.perf_counter() - self._t0


class _SpanContext:
    """Context manager that opens/closes one live span on a tracer."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.span = Span(name)

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        self.span._t0 = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.elapsed_s = time.perf_counter() - self.span._t0
        self.tracer._pop(self.span)


class Tracer:
    """Collects one span tree.

    Live spans open with :meth:`span` (a ``with`` block; nesting follows
    the call structure).  Phases whose time is *accumulated* across an
    interleaved loop (the sampled optimizer's per-batch sample/recombine
    split) attach post-hoc with :meth:`record`, which takes an elapsed
    measurement instead of taking one.
    """

    def __init__(self):
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        assert self._stack and self._stack[-1] is span, "unbalanced span exit"
        self._stack.pop()

    # ------------------------------------------------------------------
    def span(self, name: str) -> _SpanContext:
        """Open a live child span under the current one."""
        return _SpanContext(self, name)

    def record(
        self,
        name: str,
        elapsed_s: float,
        counters: dict[str, int | float] | None = None,
    ) -> Span:
        """Attach an already-measured span under the current one."""
        span = Span(name)
        span.elapsed_s = elapsed_s
        if counters:
            span.counters.update(counters)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def root(self) -> Span | None:
        """The single root span (``None`` before any span closed)."""
        return self.roots[0] if self.roots else None


#: the ambient tracer; ``None`` (the default) keeps the fast path bare.
#: A :class:`~contextvars.ContextVar`, not a module global: concurrent
#: sessions on sibling threads (the plan-serving front end) each see
#: their own slot, so traced optimizations never interleave spans into
#: each other's trees.  Threads start from a fresh context, hence the
#: default applies per thread; the disabled path stays one
#: ``ContextVar.get`` per *phase*.
_ACTIVE: ContextVar[Tracer | None] = ContextVar("repro_active_tracer", default=None)


def active_tracer() -> Tracer | None:
    return _ACTIVE.get()


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the block.

    Nested activation (within one thread/context) is rejected: one
    operation owns one span tree (the resilient ladder and the sampled
    tier already nest *spans* within a single tracer).  Activations on
    different threads are independent — each context has its own slot.
    """
    if _ACTIVE.get() is not None:
        raise RuntimeError("a tracer is already active")
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def phase(name: str):
    """A phase context: a live span when a tracer is active, a bare
    :class:`PhaseTimer` otherwise.  Either way the object exposes
    ``elapsed_s`` (after exit) and ``add`` — instrumented code does not
    branch on whether tracing is on."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return PhaseTimer(name)
    return tracer.span(name)
