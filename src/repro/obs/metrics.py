"""A lightweight metrics registry: counters, gauges, histograms.

One :class:`Metrics` instance belongs to one :class:`~repro.api.Session`
(a fresh session starts from a clean registry; :meth:`Metrics.reset`
clears one in place).  It is fed from two directions:

* **hot-loop counters** arrive through the resilience layer's existing
  ``BudgetScope.checkpoint(site, units)`` calls — the same nine sites
  the fault-injection registry (:data:`repro.resilience.faults.FAULT_SITES`)
  names.  A metrics-observing scope turns each checkpoint into
  ``<site>.polls`` (+1) and ``<site>.units`` (+units) counters, so
  expression emission, batch counts and checkpoint cadence fall out of
  instrumentation the loops already carry, with zero new code in them;
* **phase-level facts** (memo group/expression gauges, sampler draws,
  degradation triggers, executor row counts) are set explicitly by the
  orchestration layers when observation is enabled.

Histograms are summary-only (count/sum/min/max) — enough to answer
"how big do batches run" without bucket configuration.

Everything here is plain dicts and floats; :meth:`snapshot` is
JSON-ready.
"""

from __future__ import annotations

__all__ = ["Metrics"]


class Metrics:
    """Counters, gauges and summary histograms under dotted names."""

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: int | float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: int | float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: int | float) -> None:
        summary = self._histograms.get(name)
        if summary is None:
            self._histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        summary["count"] += 1
        summary["sum"] += value
        if value < summary["min"]:
            summary["min"] = value
        if value > summary["max"]:
            summary["max"] = value

    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> dict[str, float] | None:
        summary = self._histograms.get(name)
        return dict(summary) if summary is not None else None

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------------
    def record_checkpoint(self, site: str, units: int = 0) -> None:
        """The ``BudgetScope`` observer hook: one checkpoint poll at
        ``site`` accounting ``units`` work items (the same unit the
        budget's expression ceiling counts)."""
        counters = self._counters
        counters["checkpoint.polls"] = counters.get("checkpoint.polls", 0) + 1
        key = site + ".polls"
        counters[key] = counters.get(key, 0) + 1
        if units:
            key = site + ".units"
            counters[key] = counters.get(key, 0) + units

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view: ``{"counters", "gauges", "histograms"}``."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: dict(v) for k, v in self._histograms.items()},
        }

    def reset(self) -> None:
        """Clear every series (sessions reuse one registry across calls;
        tests reset between cases)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition (format 0.0.4) of the registry.

        Dotted series names become underscore-separated metric names
        under ``prefix``; counters carry the conventional ``_total``
        suffix, histograms are exposed summary-style (``_count`` /
        ``_sum``, plus ``_min``/``_max`` gauges — the registry keeps no
        quantiles).  Deterministic: series are sorted by name.
        """

        def metric(name: str) -> str:
            return prefix + "_" + name.replace(".", "_").replace("-", "_")

        lines: list[str] = []
        for name in sorted(self._counters):
            m = metric(name) + "_total"
            lines.append(f"# TYPE {m} counter")
            lines.append(f"{m} {self._counters[name]:g}")
        for name in sorted(self._gauges):
            m = metric(name)
            lines.append(f"# TYPE {m} gauge")
            lines.append(f"{m} {self._gauges[name]:g}")
        for name in sorted(self._histograms):
            s = self._histograms[name]
            m = metric(name)
            lines.append(f"# TYPE {m} summary")
            lines.append(f"{m}_count {s['count']:g}")
            lines.append(f"{m}_sum {s['sum']:g}")
            for bound in ("min", "max"):
                lines.append(f"# TYPE {m}_{bound} gauge")
                lines.append(f"{m}_{bound} {s[bound]:g}")
        return "\n".join(lines) + "\n" if lines else ""

    def render(self) -> str:
        lines = []
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name} = {self._counters[name]:g}")
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                lines.append(f"  {name} = {self._gauges[name]:g}")
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                s = self._histograms[name]
                lines.append(
                    f"  {name}: count={s['count']:g} sum={s['sum']:g} "
                    f"min={s['min']:g} max={s['max']:g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
