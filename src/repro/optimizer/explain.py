"""EXPLAIN-style plan rendering with cardinalities and costs.

The plain :meth:`PlanNode.render` shows structure; this module adds the
numbers an engineer reads during cost-model debugging: estimated rows,
the operator's local cost, and the cumulative cost of its subtree.
"""

from __future__ import annotations

from repro.optimizer.cost import CostModel
from repro.optimizer.plan import PlanNode

__all__ = ["explain_plan"]


def explain_plan(plan: PlanNode, cost_model: CostModel) -> str:
    """A table-like EXPLAIN: one row per operator, indented by depth."""
    rows: list[tuple[str, float, float, float]] = []

    def collect(node: PlanNode, depth: int) -> float:
        child_rows = tuple(child.cardinality for child in node.children)
        local = cost_model.operator_cost(node.op, node.cardinality, child_rows)
        index = len(rows)
        rows.append(("  " * depth + node.op.render(), node.cardinality, local, 0.0))
        cumulative = local
        for child in node.children:
            cumulative += collect(child, depth + 1)
        label, cardinality, local_cost, _ = rows[index]
        rows[index] = (label, cardinality, local_cost, cumulative)
        return cumulative

    total = collect(plan, 0)

    label_width = max(len(label) for label, *_ in rows)
    lines = [
        f"{'operator':<{label_width}}  {'est. rows':>12}  {'cost':>14}  {'total':>14}",
        "-" * (label_width + 2 + 12 + 2 + 14 + 2 + 14),
    ]
    for label, cardinality, local, cumulative in rows:
        lines.append(
            f"{label:<{label_width}}  {cardinality:>12,.0f}  "
            f"{local:>14,.0f}  {cumulative:>14,.0f}"
        )
    lines.append(f"{'TOTAL':<{label_width}}  {'':>12}  {'':>14}  {total:>14,.0f}")
    return "\n".join(lines)
