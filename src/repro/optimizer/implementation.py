"""Materialize implementation rules: physical memo expressions.

The rule set itself — which physical operators a logical expression
yields, in which order, with which enforcer requirements — lives in the
side-effect-free :mod:`repro.optimizer.rules` module, shared with the
implicit plan-space engine (:mod:`repro.planspace.implicit`), which
applies the same rules analytically without creating expressions.  This
module is the *materializing* consumer: it walks the logical memo and
inserts one :class:`~repro.memo.group.GroupExpr` per generated operator,
then adds the ``Sort`` enforcers the physical operators (and ORDER BY)
require — exactly the shape of the paper's Figure 2, where Sort operators
appear inside scan groups.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnId
from repro.algebra.logical import LogicalGet, LogicalJoin
from repro.algebra.physical import HashJoin, MergeJoin, PhysicalOperator, Sort
from repro.catalog.catalog import Catalog
from repro.errors import PlanSpaceError
from repro.memo.columnar import (
    ColumnarPhysicalStore,
    ColumnarUnsupported,
    build_columnar_store,
)
from repro.memo.group import GroupExpr
from repro.memo.memo import Memo
from repro.optimizer.rules import (
    ImplementationConfig,
    extract_equi_keys,
    index_nl_join_implementations,
    nested_loop_join,
    scan_implementations,
    unary_implementations,
)
from repro.resilience.faults import fault_point

__all__ = [
    "ImplementationConfig",
    "ColumnarUnsupported",
    "implement_memo",
    "implement_memo_columnar",
    "extract_equi_keys",
]


def implement_memo_columnar(
    memo: Memo,
    graph,
    catalog: Catalog,
    config: ImplementationConfig | None = None,
    root_order: tuple[ColumnId, ...] = (),
    scope=None,
    edges=None,
) -> ColumnarPhysicalStore:
    """Batched implementation onto the struct-of-arrays physical store.

    The columnar twin of :func:`implement_memo`: same operators, same
    order, same enforcer requirements — but emitted as per-group array
    blocks (:func:`repro.memo.columnar.build_columnar_store`) instead of
    per-expression ``GroupExpr`` inserts.  Installs the lazy
    materialization hooks so the object ``Memo`` facade keeps working,
    and attaches the store as ``memo.columnar``.  Raises
    :class:`ColumnarUnsupported` (memo untouched) when the memo cannot
    take the columnar path; callers fall back to :func:`implement_memo`.
    """
    if config is None:
        config = ImplementationConfig()
    try:
        store = build_columnar_store(
            memo, graph, catalog, config, root_order, scope=scope, edges=edges
        )
    except PlanSpaceError as exc:
        # EdgeCatalog capacity limits (>24 relations, >254 distinct key
        # columns) can also trip mid-build while interning index / GROUP
        # BY / ORDER BY orders; the memo is untouched either way, so the
        # caller's object-path fallback is still clean.
        raise ColumnarUnsupported(str(exc)) from None
    store.attach()
    memo.columnar = store
    return store


def _implement_index_nl_join(
    expr: GroupExpr,
    memo: Memo,
    catalog: Catalog,
    left_keys: tuple[ColumnId, ...],
    right_keys: tuple[ColumnId, ...],
) -> int:
    """Insert index-lookup joins when the inner side is a single base
    table with a usable index (see
    :func:`repro.optimizer.rules.index_nl_join_implementations`)."""
    op = expr.op
    assert isinstance(op, LogicalJoin)
    right_group = memo.group(expr.children[1])
    if len(right_group.relations) != 1:
        return 0
    get = next(
        (e.op for e in right_group.logical_exprs() if isinstance(e.op, LogicalGet)),
        None,
    )
    if get is None:
        return 0
    group = memo.group(expr.group_id)
    inserted = 0
    for join in index_nl_join_implementations(
        get, catalog, op.predicate, left_keys, right_keys
    ):
        if memo.insert(join, (expr.children[0],), group) is not None:
            inserted += 1
    return inserted


def implement_memo(
    memo: Memo,
    catalog: Catalog,
    config: ImplementationConfig | None = None,
    root_order: tuple[ColumnId, ...] = (),
    scope=None,
) -> int:
    """Generate physical operators for every logical expression, then add
    the Sort enforcers the physical operators (and ORDER BY) require.

    Returns the number of physical expressions inserted.
    """
    if config is None:
        config = ImplementationConfig()
    inserted = 0
    groups = memo.groups
    insert = memo.insert
    enable_nlj = config.enable_nested_loop_join
    enable_hash = config.enable_hash_join
    enable_merge = config.enable_merge_join
    enable_index_nlj = config.enable_index_nl_join
    # Merge-join child-order requirements are collected inline while the
    # operators are built (their keys are at hand), sparing the enforcer
    # pass a virtual call per join child.
    collect_merge_reqs = enable_merge and config.enable_sort_enforcers
    sort_requirements: dict[tuple[int, tuple[ColumnId, ...]], None] = {}
    record_requirement = sort_requirements.setdefault
    # Snapshot: implementation adds physical exprs only, so iterating over
    # the logical expressions present now is exhaustive.  Joins — the bulk
    # of any explored memo — are handled inline with hoisted locals; the
    # operator construction itself is the shared rule module's.  The
    # inline structure mirrors rules.join_implementations (NLJ, Hash,
    # Merge, IndexNLJ order) without building an operator tuple per join.
    logical = [
        expr
        for group in memo.groups
        for expr in group.exprs
        if not expr.is_physical
    ]
    checkpoint = scope.checkpoint if scope is not None else None
    last_inserted = 0
    for expr in logical:
        fault_point("implement.object", memo)
        if checkpoint is not None:
            checkpoint("implement.object", inserted - last_inserted)
            last_inserted = inserted
        op = expr.op
        if type(op) is LogicalJoin:
            group = groups[expr.group_id]
            children = expr.children
            predicate = op.predicate
            left_keys, right_keys, residual = extract_equi_keys(
                predicate,
                groups[children[0]].relations,
                groups[children[1]].relations,
            )
            if enable_nlj:
                if insert(nested_loop_join(predicate), children, group) is not None:
                    inserted += 1
            if left_keys:
                if enable_hash:
                    hash_join = HashJoin(left_keys, right_keys, residual)
                    if insert(hash_join, children, group) is not None:
                        inserted += 1
                if enable_merge:
                    merge_join = MergeJoin(left_keys, right_keys, residual)
                    if insert(merge_join, children, group) is not None:
                        inserted += 1
                    if collect_merge_reqs:
                        record_requirement((children[0], left_keys))
                        record_requirement((children[1], right_keys))
                if enable_index_nlj:
                    inserted += _implement_index_nl_join(
                        expr, memo, catalog, left_keys, right_keys
                    )
        elif isinstance(op, LogicalGet):
            group = groups[expr.group_id]
            for scan in scan_implementations(op, catalog, config):
                if insert(scan, (), group) is not None:
                    inserted += 1
        else:
            group = groups[expr.group_id]
            for phys in unary_implementations(op, config):
                if insert(phys, expr.children, group) is not None:
                    inserted += 1

    if config.enable_sort_enforcers:
        inserted += _insert_enforcers(
            memo,
            root_order,
            required=sort_requirements,
            skip_merge_joins=collect_merge_reqs,
        )
    return inserted


_NO_CHILD_ORDER = PhysicalOperator.required_child_order


def _insert_enforcers(
    memo: Memo,
    root_order: tuple[ColumnId, ...],
    required: dict[tuple[int, tuple[ColumnId, ...]], None] | None = None,
    skip_merge_joins: bool = False,
) -> int:
    """Add ``Sort`` expressions for every required (group, order) pair.

    Requirements are deduplicated (in first-occurrence order, so memo
    layout matches the historical one-insert-per-occurrence loop) before
    touching the memo: a 12-way join yields tens of thousands of merge
    joins but only a handful of distinct (group, order) pairs.  Operators
    that inherit the base class's trivial ``required_child_order`` are
    skipped without calling it; merge joins are skipped entirely when the
    caller already collected their requirements into ``required``.
    """
    if required is None:
        required = {}
    for group in memo.groups:
        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            op_type = type(op)
            if op_type.required_child_order is _NO_CHILD_ORDER:
                continue
            if skip_merge_joins and op_type is MergeJoin:
                continue
            for child_pos, child_gid in enumerate(expr.children):
                order = op.required_child_order(child_pos)
                if order:
                    required.setdefault((child_gid, order))
    if root_order and memo.root_group_id is not None:
        required.setdefault((memo.root_group_id, root_order))

    inserted = 0
    for gid, order in required:
        group = memo.group(gid)
        if memo.insert(Sort(order), (gid,), group) is not None:
            inserted += 1
    return inserted
